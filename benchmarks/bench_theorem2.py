"""EXP-T2 bench: Theorem 2's resource competitiveness of Distribute.

Paper claim: splitting oversized batches into rate-limited subcolors and
running ΔLRU-EDF stays resource competitive on batched inputs, with the
mapped-back (outer) cost never exceeding the inner cost (Lemma 4.2).
"""


def bench_theorem2_distribute(run_and_report):
    report = run_and_report(
        "EXP-T2",
        seeds=(0, 1, 2),
        delta_values=(2, 4),
        horizon=64,
    )
    assert report.summary["max_ratio"] < 10
    assert report.summary["lemma_4_2_holds"]
    # Splitting must actually happen on these bursty inputs.
    assert any(row["subcolors"] > row["colors"] for row in report.rows)
