"""CI benchmark-regression guard.

``--suite engine`` (default) re-runs the EXP-S smoke grid (the quick
cells, a subset of the full grid) and compares each cell's rounds/sec
against the committed ``benchmarks/reports/BENCH_engine.json`` baseline,
row for row.  ``--suite offline`` re-runs the quick subset of the
offline-solver mini-grid (``bench_offline.py``) and compares node counts
and wall clock per cell against ``BENCH_offline.json``.  Either way the
guard exits non-zero if any matched cell regressed by more than the
tolerance (default 30%, overridable via ``--tolerance``), so a hot-loop
slowdown fails the PR instead of landing silently.

Noise note: CI machines are slower and noisier than the machine that
produced the baseline, which is why the tolerance is wide and the guard
compares cell-by-cell rather than against the summary geomeans.  The
baseline's machine context is printed on failure so a "regression" on a
much weaker runner is easy to diagnose.  Offline node counts are fully
deterministic — a node regression is an algorithmic change, never noise.

Usage::

    PYTHONPATH=src python benchmarks/check_bench_regression.py
    PYTHONPATH=src python benchmarks/check_bench_regression.py --suite offline
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

BASELINE = Path(__file__).parent / "reports" / "BENCH_engine.json"
OFFLINE_BASELINE = Path(__file__).parent / "reports" / "BENCH_offline.json"


def _check_offline(baseline_path: Path, tolerance: float) -> int:
    import bench_offline

    from repro.runtime.telemetry import (
        OFFLINE_BENCH_SCHEMA,
        offline_regressions,
        read_bench_json,
    )

    if not baseline_path.exists():
        print(f"no baseline at {baseline_path}; nothing to compare — pass")
        return 0
    baseline = read_bench_json(baseline_path)
    if baseline.get("schema") != OFFLINE_BENCH_SCHEMA:
        print(
            f"baseline schema {baseline.get('schema')!r} != "
            f"{OFFLINE_BENCH_SCHEMA!r}; regenerate it with "
            "bench_offline_table — pass"
        )
        return 0

    fresh = bench_offline.measure_cells(
        bench_offline.SMOKE_SEEDS, bench_offline.SMOKE_HORIZONS
    )
    regressions = offline_regressions(
        baseline["rows"], fresh, tolerance=tolerance
    )
    print(
        f"offline smoke: {len(fresh)} cells measured, "
        f"tolerance {tolerance:.0%}"
    )
    if not regressions:
        print("no offline-solver regressions against the committed baseline")
        return 0

    print(f"\n{len(regressions)} cell(s) flagged:")
    for reg in regressions:
        key = reg["key"]
        if reg["kind"] == "missing_baseline":
            print(
                f"  {key}: no baseline measurement "
                f"(fresh {reg['fresh_nodes']} nodes) — regenerate the baseline"
            )
        elif reg["kind"] == "cost_mismatch":
            print(
                f"  {key}: COST MISMATCH — baseline {reg['baseline_cost']} "
                f"vs fresh {reg['fresh_cost']}; the solver is no longer exact"
            )
        else:
            print(
                f"  {key}: {reg['metric']} {reg['fresh']:.4g} vs "
                f"baseline {reg['baseline']:.4g} (x{reg['ratio']:.2f})"
            )
    print("\nbaseline machine context:")
    print(json.dumps(baseline.get("machine", {}), indent=2))
    print(
        "\nIf the slowdown is intentional, regenerate the baseline:\n"
        "  PYTHONPATH=src python -m pytest "
        "benchmarks/bench_offline.py::bench_offline_table -q"
    )
    return 1


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--suite",
        choices=("engine", "offline"),
        default="engine",
        help="which committed baseline to guard (default: engine)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.30,
        help="allowed fractional rounds/sec drop before failing (default 0.30)",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help="path to the committed baseline json (default: per suite)",
    )
    args = parser.parse_args(argv)

    from repro.experiments.registry import run_experiment
    from repro.runtime.telemetry import (
        BENCH_SCHEMA,
        read_bench_json,
        throughput_regressions,
    )

    if args.suite == "offline":
        return _check_offline(
            args.baseline or OFFLINE_BASELINE, args.tolerance
        )
    if args.baseline is None:
        args.baseline = BASELINE
    if not args.baseline.exists():
        print(f"no baseline at {args.baseline}; nothing to compare — pass")
        return 0
    baseline = read_bench_json(args.baseline)
    if baseline.get("schema") != BENCH_SCHEMA:
        print(
            f"baseline schema {baseline.get('schema')!r} != {BENCH_SCHEMA!r}; "
            "regenerate it with bench_scaling_table — pass"
        )
        return 0

    report = run_experiment("EXP-S", quick=True)
    regressions = throughput_regressions(
        baseline["rows"], report.rows, tolerance=args.tolerance
    )
    matched = [
        row
        for row in report.rows
        if "rounds_per_second" in row
    ]
    print(
        f"EXP-S quick: {len(matched)} cells measured, "
        f"tolerance {args.tolerance:.0%}"
    )
    if not regressions:
        print("no throughput regressions against the committed baseline")
        return 0

    print(f"\n{len(regressions)} cell(s) flagged:")
    for reg in regressions:
        key = reg["key"]
        if reg.get("kind") == "missing_baseline":
            print(
                f"  {key}: no baseline measurement for this cell "
                f"(fresh {reg['fresh_rounds_per_second']:.0f} rounds/s) — "
                "a new or corrupt cell; regenerate the baseline"
            )
            continue
        print(
            f"  {key}: {reg['fresh_rounds_per_second']:.0f} rounds/s vs "
            f"baseline {reg['baseline_rounds_per_second']:.0f} "
            f"(x{reg['ratio']:.2f})"
        )
    print("\nbaseline machine context:")
    print(json.dumps(baseline.get("machine", {}), indent=2))
    print(
        "\nIf the slowdown is intentional (or the baseline machine is simply "
        "faster), regenerate the baseline:\n"
        "  PYTHONPATH=src python -m pytest "
        "benchmarks/bench_engine_scaling.py::bench_scaling_table -q"
    )
    return 1


if __name__ == "__main__":
    sys.exit(main())
