"""EXP-ABL bench: ablations of the design choices DESIGN.md calls out.

* LRU/EDF capacity split (the paper's even split vs pure extremes);
* replication (two locations per color) vs distinct-only caching;
* resource augmentation sweep (Theorem 1 uses n = 8m);
* uni- vs double-speed execution.
"""


def bench_design_ablations(run_and_report):
    report = run_and_report(
        "EXP-ABL",
        seeds=(0, 1),
        horizon=64,
        fractions=(0.0, 0.25, 0.5, 0.75, 1.0),
        augmentations=(2, 4, 8, 16),
    )
    split = {
        row["value"]: row["geomean_ratio"]
        for row in report.rows
        if row.get("knob") == "lru_fraction"
    }
    # The combination must beat at least one pure extreme, and the pure
    # extremes must be visibly worse somewhere (they are not resource
    # competitive).
    assert split[0.5] <= max(split[0.0], split[1.0])
    aug = [
        row["geomean_ratio"]
        for row in report.rows
        if row.get("knob") == "augmentation"
    ]
    # More augmentation never makes the geomean ratio blow up.
    assert aug[-1] <= aug[0] * 1.5
