"""EXP-C bench (extension): the changeover-time crossover.

Shape claim: the chase/sticky gap is <= 0 at T = 0 and strictly positive
at large T — agility wins when switching is free, commitment wins when
switching burns capacity, with a crossover in between.
"""


def bench_changeover_crossover(run_and_report):
    report = run_and_report(
        "EXP-C", changeover_times=(0, 1, 2, 4, 8, 12), horizon=256
    )
    assert report.summary["crossover_exists"]
    assert report.summary["sticky_wins_at_max_T"]
