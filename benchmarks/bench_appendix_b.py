"""EXP-B bench: regenerate the Appendix B lower-bound table and series.

Paper claim: EDF's competitive ratio on the alternating-idleness
adversary is at least ``2^{k-j-1} / (n/2 + 1)`` — geometric in ``k - j``
— while ΔLRU-EDF stays constant on the same inputs.
"""


def bench_appendix_b_edf_blowup(run_and_report):
    report = run_and_report("EXP-B", gaps=(1, 2, 3, 4, 5))
    assert report.summary["monotone_growth"]
    # Geometric growth: each gap step should scale the measured ratio by
    # roughly 2x once the geometric term dominates.
    ratios = [row["edf_ratio"] for row in report.rows]
    assert ratios[-1] >= 1.5 * ratios[-2]
    assert report.summary["dlru_edf_ratio_max"] < 8
    for row in report.rows:
        assert row["edf_ratio"] >= row["predicted_ratio"] * 0.99
