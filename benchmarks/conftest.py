"""Shared benchmark plumbing.

Every experiment benchmark runs its experiment once (``benchmark.pedantic``
with a single round — the experiments are deterministic, so statistical
repetition buys nothing and costs minutes), asserts the headline claim,
prints the paper-style table, and writes the rendered report to
``benchmarks/reports/<id>.txt`` for EXPERIMENTS.md.
"""

from __future__ import annotations

from pathlib import Path

import pytest

REPORTS_DIR = Path(__file__).parent / "reports"


@pytest.fixture(scope="session")
def report_dir() -> Path:
    REPORTS_DIR.mkdir(exist_ok=True)
    return REPORTS_DIR


@pytest.fixture(scope="session")
def parallel_runner():
    """Session-wide :class:`ParallelRunner`, sized from ``REPRO_PARALLEL``.

    Defaults to the machine's core count; ``REPRO_PARALLEL=0`` forces the
    serial path (useful when comparing against parallel runs, which are
    bit-identical but scheduled differently by the OS).
    """
    from repro.runtime import ParallelRunner

    return ParallelRunner.from_env()


@pytest.fixture
def run_and_report(benchmark, report_dir):
    """Run an experiment under the benchmark clock and persist its report."""

    def runner(experiment_id: str, *, quick: bool = False, rounds: int = 1, **overrides):
        from repro.experiments.registry import run_experiment

        report = benchmark.pedantic(
            lambda: run_experiment(experiment_id, quick=quick, **overrides),
            rounds=rounds,
            iterations=1,
        )
        text = report.render()
        print()
        print(text)
        (report_dir / f"{experiment_id}.txt").write_text(text + "\n")
        return report

    return runner
