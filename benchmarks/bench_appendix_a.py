"""EXP-A bench: regenerate the Appendix A lower-bound table and series.

Paper claim: ΔLRU's competitive ratio on the short-term/long-term
adversary is ``(nΔ + 2^k) / (Δ + 2^{k-j-1} n Δ)`` — unbounded as the
exponents grow — while ΔLRU-EDF stays constant on the same inputs.
"""


def bench_appendix_a_dlru_blowup(run_and_report):
    report = run_and_report("EXP-A", j_values=(5, 6, 7, 8, 9))
    # Shape checks: monotone growth matching the closed form, and the
    # combined algorithm flat.
    assert report.summary["monotone_growth"]
    assert report.summary["dlru_ratio_last"] >= 3 * report.summary["dlru_ratio_first"]
    assert report.summary["dlru_edf_ratio_max"] < 8
    for row in report.rows:
        assert row["dlru_ratio"] >= row["predicted_ratio"] * 0.99
