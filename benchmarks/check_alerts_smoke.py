"""CI smoke for metric time-series + deterministic alerting, end to end.

A streaming session runs with a :class:`SeriesRecorder` and an injected
ingestion stall (the workload goes quiet for the middle third of the
run), while the ops service serves ``/series`` and ``/alerts`` live.
Four acceptance promises:

1. **Live scrapes survive the run.**  A background scraper hits
   ``/series`` and ``/alerts`` continuously; every response must be
   HTTP 200 with the right schema (``repro-series/v1`` /
   ``repro-alerts/v1``).
2. **The stall alert fires and resolves deterministically.**  The
   critical stall rule on ``stream.offered`` fires exactly once (inside
   the quiet window) and resolves exactly once (after traffic returns)
   — same workload, same rounds, every run.
3. **Health follows the alert.**  ``/health`` serves 503 while the
   critical rule is firing and 200 once it resolves; the final
   ``/series`` snapshot matches the local recorder byte for byte.
4. **Kill/resume is observability-transparent.**  A session killed at a
   mid-stall checkpoint and resumed in a fresh process state reproduces
   the uninterrupted session's series, alert events, and costs bit for
   bit (recorder + alert state ride inside the checkpoint).

Usage::

    PYTHONPATH=src python benchmarks/check_alerts_smoke.py
"""

from __future__ import annotations

import json
import sys
import tempfile
import threading
import urllib.error
import urllib.request
from pathlib import Path

#: Workload shape: small spec, fast rounds, deterministic splitmix draws.
COLORS, DELTA, LOAD, SEED = 4, 8, 0.6, 11
BOUNDS = (8, 16)
RESOURCES = 8

TOTAL_ROUNDS = 3_072
#: The source offers no jobs in [QUIET_START, QUIET_END) — the stall.
QUIET_START, QUIET_END = 1_024, 2_048
SEGMENT_ROUNDS = 64  # recorder samples at every segment end
CHUNK_ROUNDS = 256  # publish cadence of the driver loop
CAPACITY = 128
KILL_AT, CHECKPOINT_EVERY = 1_536, 512  # mid-stall, while firing


def _source():
    from repro.streaming import GeneratorSource
    from repro.workloads.streaming import rate_limited_stream

    stream = rate_limited_stream(
        COLORS, DELTA, seed=SEED, load=LOAD, bound_choices=BOUNDS
    )

    def counts(round_index: int):
        if QUIET_START <= round_index < QUIET_END:
            return ()
        return stream.batch_counts(round_index)

    return GeneratorSource(stream.spec, counts, name="stall-injected")


def _rules():
    from repro.obs import AlertRule

    return [
        AlertRule(
            name="ingest-stalled",
            series="stream.offered",
            kind="stall",
            window=4,
            resolve_window=2,
            severity="critical",
        ),
        AlertRule(
            name="rejection-rate-high",
            series="stream.rejection_rate",
            kind="threshold",
            op=">",
            value=0.9,
            window=3,
            severity="warning",
        ),
    ]


def _build():
    from repro.algorithms.dlru_edf import DeltaLRUEDF
    from repro.obs import MetricsRegistry, SeriesRecorder
    from repro.streaming import StreamSession

    registry = MetricsRegistry()
    recorder = SeriesRecorder(
        registry, capacity=CAPACITY, prefixes=("stream.",), rules=_rules()
    )
    session = StreamSession(
        _source(),
        DeltaLRUEDF(),
        RESOURCES,
        registry=registry,
        recorder=recorder,
        segment_rounds=SEGMENT_ROUNDS,
    )
    return session, recorder


def _fetch_json(url: str) -> tuple[int, dict]:
    try:
        with urllib.request.urlopen(url, timeout=10) as response:
            return response.status, json.loads(response.read().decode("utf-8"))
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read().decode("utf-8"))


def _check_live_surface() -> int:
    from repro.obs.service import OpsService, OpsState

    failures = 0
    session, recorder = _build()
    state = OpsState()
    scrape_errors: list[str] = []
    scrape_count = 0
    stop_scraping = threading.Event()

    with OpsService(state) as service:
        base = service.url

        def scrape_loop() -> None:
            nonlocal scrape_count
            while not stop_scraping.is_set():
                try:
                    status, series = _fetch_json(base + "/series")
                    if status != 200 or series.get("schema") != "repro-series/v1":
                        scrape_errors.append(f"/series HTTP {status} {series}")
                    status, alerts = _fetch_json(base + "/alerts")
                    if status != 200 or alerts.get("schema") != "repro-alerts/v1":
                        scrape_errors.append(f"/alerts HTTP {status} {alerts}")
                except Exception as error:  # noqa: BLE001 - report in main
                    scrape_errors.append(repr(error))
                scrape_count += 1
                stop_scraping.wait(0.02)

        scraper = threading.Thread(target=scrape_loop, daemon=True)
        scraper.start()
        degraded_polls = ok_polls = 0
        health_mismatches: list[str] = []
        try:
            for _ in range(0, TOTAL_ROUNDS, CHUNK_ROUNDS):
                session.run(CHUNK_ROUNDS)
                state.publish_series(recorder.snapshot())
                state.publish_alerts(recorder.alerts.payload())
                status, health = _fetch_json(base + "/health")
                expected = 503 if recorder.alerts.critical_firing else 200
                if status != expected:
                    health_mismatches.append(
                        f"round {session.round}: HTTP {status}, want {expected}"
                    )
                elif status == 503:
                    degraded_polls += 1
                    if "ingest-stalled" not in health.get("alerts_firing", []):
                        health_mismatches.append(
                            f"round {session.round}: 503 without the stall "
                            f"rule in alerts_firing: {health}"
                        )
                else:
                    ok_polls += 1
        finally:
            stop_scraping.set()
            scraper.join(timeout=10)

        if scrape_errors:
            failures += 1
            print(f"  FATAL: live scrapes failed: {scrape_errors[:5]}")
        else:
            print(
                f"  {scrape_count} live /series+/alerts scrapes during the "
                "stream, all clean"
            )

        if health_mismatches:
            failures += 1
            print(f"  FATAL: /health out of step: {health_mismatches[:5]}")
        elif degraded_polls == 0:
            failures += 1
            print("  FATAL: /health never went 503 while the stall fired")
        else:
            print(
                f"  /health tracked the alert: {degraded_polls} degraded / "
                f"{ok_polls} ok polls, 200 after resolution"
            )

        # Final /series must equal the local recorder through JSON.
        _, served = _fetch_json(base + "/series")
        local = json.loads(json.dumps(recorder.snapshot(), sort_keys=True))
        if served.get("snapshot") != local:
            failures += 1
            print("  FATAL: served /series snapshot != local recorder")
        else:
            print(
                f"  final /series matches the recorder exactly "
                f"({len(local['series'])} series, {local['samples']} samples)"
            )

    # The stall fired exactly once, inside the quiet window, and resolved
    # exactly once, after traffic returned.
    events = [
        event
        for event in recorder.alerts.events
        if event.rule == "ingest-stalled"
    ]
    shape = [(event.kind, event.round) for event in events]
    fired = [event for event in events if event.kind == "fired"]
    resolved = [event for event in events if event.kind == "resolved"]
    if (
        len(fired) != 1
        or len(resolved) != 1
        or not (QUIET_START < fired[0].round <= QUIET_END)
        or resolved[0].round <= QUIET_END
    ):
        failures += 1
        print(f"  FATAL: unexpected stall event sequence: {shape}")
    else:
        print(
            f"  stall fired once at round {fired[0].round} (quiet window "
            f"[{QUIET_START}, {QUIET_END})), resolved once at round "
            f"{resolved[0].round}"
        )
    if recorder.alerts.firing:
        failures += 1
        print(f"  FATAL: rules still firing at end: {recorder.alerts.firing}")
    return failures


def _check_kill_resume_transparent(tmp: Path) -> int:
    from repro.algorithms.dlru_edf import DeltaLRUEDF
    from repro.obs import MetricsRegistry, SeriesRecorder
    from repro.streaming import StreamSession

    failures = 0
    baseline_session, baseline = _build()
    baseline_result = baseline_session.run(
        TOTAL_ROUNDS, checkpoint_every=CHECKPOINT_EVERY
    )

    path = tmp / "ckpt.json"
    first, _ = _build()
    first.run(KILL_AT, checkpoint_every=CHECKPOINT_EVERY, checkpoint_path=path)
    del first  # forced kill: only the checkpoint file survives

    registry = MetricsRegistry()
    recorder = SeriesRecorder(
        registry, capacity=CAPACITY, prefixes=("stream.",), rules=_rules()
    )
    resumed = StreamSession.resume(
        _source(),
        DeltaLRUEDF(),
        str(path),
        registry=registry,
        recorder=recorder,
        segment_rounds=SEGMENT_ROUNDS,
    )
    result = resumed.run(
        TOTAL_ROUNDS - KILL_AT, checkpoint_every=CHECKPOINT_EVERY
    )

    if result.cost.to_dict() != baseline_result.cost.to_dict():
        failures += 1
        print(
            f"  FATAL: resumed cost {result.total_cost} != uninterrupted "
            f"{baseline_result.total_cost}"
        )
    canon = lambda payload: json.dumps(payload, sort_keys=True)  # noqa: E731
    if canon(recorder.snapshot()) != canon(baseline.snapshot()):
        failures += 1
        print("  FATAL: resumed series snapshot diverged from uninterrupted")
    if canon(recorder.alerts.payload()) != canon(baseline.alerts.payload()):
        failures += 1
        print("  FATAL: resumed alert payload diverged from uninterrupted")
    if not failures:
        events = [str(event) for event in recorder.alerts.events]
        print(
            f"  kill at round {KILL_AT:,} (mid-stall, alert firing) + resume "
            "reproduces series, alerts, and costs bit for bit"
        )
        for line in events:
            print(f"    {line}")
    return failures


def main() -> int:
    print("alerts smoke: live /series+/alerts, deterministic stall, resume")
    failures = 0
    failures += _check_live_surface()
    with tempfile.TemporaryDirectory() as tmp:
        failures += _check_kill_resume_transparent(Path(tmp))
    if failures:
        print(f"FAIL: {failures} alerts smoke check(s) failed")
        return 1
    print(
        "pass: scrapes clean, stall fired/resolved deterministically, "
        "health tracked it, kill/resume transparent"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
