"""EXP-T3 bench: Theorem 3's resource competitiveness of VarBatch.

Paper claim: the full online stack (half-block batching, then subcolor
rate limiting, then ΔLRU-EDF) is resource competitive on the main
problem — arbitrary arrival rounds, including the §5.3 extension to
non-power-of-two delay bounds.
"""


def bench_theorem3_varbatch_stack(run_and_report):
    report = run_and_report("EXP-T3", seeds=(0, 1), horizon=96)
    assert report.summary["max_ratio"] < 12
    assert report.summary["geomean_ratio"] < 5
    # The arbitrary-bound rows exercise the §5.3 path.
    arb = [row for row in report.rows if row["workload"].startswith("arbitrary")]
    assert arb and all(row["stages"][0] == "ArbitraryBounds" for row in arb)
