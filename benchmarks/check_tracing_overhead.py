"""CI gate for the trace bus's zero-overhead contract.

The engines promise that an attached-but-disabled tracer — a
:class:`~repro.obs.tracing.Tracer` over a
:class:`~repro.obs.tracing.NullSink` — costs the hot round loop nothing
beyond one ``is not None`` check per emission site (the tracer is
normalized to ``None`` at engine construction).  This script measures
that promise: it times the EXP-S quick cells untraced and with a
null-sink tracer attached, *interleaved and best-of-N* so the pairs see
the same thermal/cache conditions, and fails if the geomean slowdown
exceeds the threshold (default 3%).

Best-of-N is the right statistic here: both variants run identical code
(the null-sink branch is taken before the loop starts), so any observed
gap is scheduling noise, and the minimum is the noise-robust estimator.

Usage::

    PYTHONPATH=src python benchmarks/check_tracing_overhead.py
"""

from __future__ import annotations

import argparse
import math
import sys
import time

#: (colors, delta, horizon, resources) — mirrors the EXP-S quick cells.
CELLS = (
    (4, 2, 512, 8),
    (8, 4, 512, 16),
    (8, 4, 2048, 16),
)


def _run_cell(instance, resources, tracer):
    from repro.algorithms.dlru_edf import DeltaLRUEDF
    from repro.simulation.engine import simulate

    start = time.perf_counter()
    result = simulate(
        instance,
        DeltaLRUEDF(),
        resources,
        record="costs",
        tracer=tracer,
    )
    return time.perf_counter() - start, result.total_cost


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.03,
        help="allowed fractional null-sink slowdown (default 0.03)",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=7,
        help="paired repetitions per cell; best-of wins (default 7)",
    )
    args = parser.parse_args(argv)

    from repro.obs import NullSink, Tracer
    from repro.workloads.random_batched import random_rate_limited

    ratios = []
    print(f"tracing-overhead gate: {args.repeats} paired runs per cell")
    for colors, delta, horizon, resources in CELLS:
        instance = random_rate_limited(
            colors, delta, horizon, seed=0, load=0.6, bound_choices=(2, 4, 8)
        )
        best_plain = math.inf
        best_nulled = math.inf
        cost_plain = cost_nulled = None
        for _ in range(args.repeats):
            # Interleave the pair so both see the same machine state.
            seconds, cost_plain = _run_cell(instance, resources, None)
            best_plain = min(best_plain, seconds)
            seconds, cost_nulled = _run_cell(
                instance, resources, Tracer(NullSink())
            )
            best_nulled = min(best_nulled, seconds)
        if cost_plain != cost_nulled:
            print(
                f"  FATAL: cell {(colors, delta, horizon, resources)} "
                f"cost diverged: {cost_plain} untraced vs {cost_nulled} nulled"
            )
            return 1
        ratio = best_nulled / best_plain
        ratios.append(ratio)
        print(
            f"  colors={colors} horizon={horizon}: "
            f"{best_plain * 1e3:.1f}ms untraced, "
            f"{best_nulled * 1e3:.1f}ms null-sink (x{ratio:.3f})"
        )

    geomean = math.exp(sum(math.log(r) for r in ratios) / len(ratios))
    overhead = geomean - 1.0
    print(f"geomean null-sink overhead: {overhead:+.1%} (gate {args.threshold:.0%})")
    if overhead > args.threshold:
        print(
            "FAIL: a disabled tracer must be free — a hot-loop emission "
            "site is probably paying more than its `is not None` check"
        )
        return 1
    print("pass: disabled tracing is within the overhead budget")
    return 0


if __name__ == "__main__":
    sys.exit(main())
