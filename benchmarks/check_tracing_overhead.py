"""CI gate for the trace bus's zero-overhead contract and the metrics budget.

Two promises, measured on the EXP-S quick cells, *interleaved and
best-of-N* so each pair sees the same thermal/cache conditions:

1. **Disabled tracing is free.**  A tracer over a
   :class:`~repro.obs.tracing.NullSink` reports ``enabled = False`` and
   is normalized to ``None`` at engine construction, so the hot round
   loop pays exactly one ``is not None`` check per emission site.
   Gate: geomean slowdown <= ``--threshold`` (default 3%).

2. **Live metrics are cheap.**  An attached
   :class:`~repro.obs.metrics.MetricsRegistry` uses pre-resolved
   instrument handles and *buffered* histogram observes (appends in the
   loop, one aggregated ``observe(value, n)`` per distinct value at run
   end), so live collection costs a fraction of what per-round registry
   lookups did.  Gate: geomean slowdown <= ``--metrics-threshold``
   (default 15%; was ~45-50% before the batching).

Best-of-N is the right statistic: both variants of each pair run nearly
identical code, so any gap beyond the real overhead is scheduling noise,
and the minimum is the noise-robust estimator.  Both sections also
assert the instrumented run's cost is bit-identical to the plain one.

Usage::

    PYTHONPATH=src python benchmarks/check_tracing_overhead.py
"""

from __future__ import annotations

import argparse
import math
import sys
import time

#: (colors, delta, horizon, resources) — mirrors the EXP-S quick cells.
CELLS = (
    (4, 2, 512, 8),
    (8, 4, 512, 16),
    (8, 4, 2048, 16),
)


def _run_cell(instance, resources, tracer=None, registry=None):
    from repro.algorithms.dlru_edf import DeltaLRUEDF
    from repro.simulation.engine import simulate

    start = time.perf_counter()
    result = simulate(
        instance,
        DeltaLRUEDF(),
        resources,
        record="costs",
        tracer=tracer,
        registry=registry,
    )
    return time.perf_counter() - start, result.total_cost


def _gate(label, repeats, variant_factory, threshold) -> tuple[bool, list[float]]:
    """Run paired cells; variant_factory() -> kwargs for the variant run."""
    from repro.workloads.random_batched import random_rate_limited

    ratios = []
    print(f"{label}: {repeats} paired runs per cell")
    for colors, delta, horizon, resources in CELLS:
        instance = random_rate_limited(
            colors, delta, horizon, seed=0, load=0.6, bound_choices=(2, 4, 8)
        )
        best_plain = math.inf
        best_variant = math.inf
        cost_plain = cost_variant = None
        for _ in range(repeats):
            # Interleave the pair so both see the same machine state.
            seconds, cost_plain = _run_cell(instance, resources)
            best_plain = min(best_plain, seconds)
            seconds, cost_variant = _run_cell(
                instance, resources, **variant_factory()
            )
            best_variant = min(best_variant, seconds)
        if cost_plain != cost_variant:
            print(
                f"  FATAL: cell {(colors, delta, horizon, resources)} "
                f"cost diverged: {cost_plain} plain vs {cost_variant} "
                "instrumented"
            )
            return False, ratios
        ratio = best_variant / best_plain
        ratios.append(ratio)
        print(
            f"  colors={colors} horizon={horizon}: "
            f"{best_plain * 1e3:.1f}ms plain, "
            f"{best_variant * 1e3:.1f}ms instrumented (x{ratio:.3f})"
        )
    geomean = math.exp(sum(math.log(r) for r in ratios) / len(ratios))
    overhead = geomean - 1.0
    print(f"  geomean overhead: {overhead:+.1%} (gate {threshold:.0%})")
    return overhead <= threshold, ratios


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.03,
        help="allowed fractional null-sink slowdown (default 0.03)",
    )
    parser.add_argument(
        "--metrics-threshold",
        type=float,
        default=0.15,
        help="allowed fractional live-registry slowdown (default 0.15)",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=15,
        help="paired repetitions per cell; best-of wins (default 15)",
    )
    args = parser.parse_args(argv)

    from repro.obs import MetricsRegistry, NullSink, Tracer

    ok_null, _ = _gate(
        "null-sink tracing gate",
        args.repeats,
        lambda: {"tracer": Tracer(NullSink())},
        args.threshold,
    )
    if not ok_null:
        print(
            "FAIL: a disabled tracer must be free — a hot-loop emission "
            "site is probably paying more than its `is not None` check"
        )
        return 1

    ok_metrics, _ = _gate(
        "live metrics gate",
        args.repeats,
        lambda: {"registry": MetricsRegistry()},
        args.metrics_threshold,
    )
    if not ok_metrics:
        print(
            "FAIL: live metrics exceed the budget — check that histogram "
            "observes are buffered and instrument handles are pre-resolved "
            "(EngineInstruments.flush)"
        )
        return 1

    print("pass: tracing and metrics are within their overhead budgets")
    return 0


if __name__ == "__main__":
    sys.exit(main())
