"""CI gate for the trace bus's zero-overhead contract and the metrics budget.

Two promises, measured on the EXP-S quick cells, *interleaved and
best-of-N* so each pair sees the same thermal/cache conditions:

1. **Disabled tracing is free.**  A tracer over a
   :class:`~repro.obs.tracing.NullSink` reports ``enabled = False`` and
   is normalized to ``None`` at engine construction, so the hot round
   loop pays exactly one ``is not None`` check per emission site.
   Gate: geomean slowdown <= ``--threshold`` (default 3%).

2. **Live metrics are cheap.**  An attached
   :class:`~repro.obs.metrics.MetricsRegistry` uses pre-resolved
   instrument handles and *buffered* histogram observes (appends in the
   loop, one aggregated ``observe(value, n)`` per distinct value at run
   end), so live collection costs a fraction of what per-round registry
   lookups did.  Gate: geomean slowdown <= ``--metrics-threshold``
   (default 15%; was ~45-50% before the batching).

3. **Sampled tracing holds its budget.**  A
   :class:`~repro.obs.sampling.SamplingTracer` with the adaptive
   controller must keep the overhead it can actually control — the cost
   *above the floor* — under the target.  The floor is a sampling
   tracer at ``probability=0.0``: monitor events, run/phase spans, and
   the per-round keep decision are always-on guarantees (they dominate
   total overhead), so the gate measures
   ``(t_sampled - t_floor) / t_plain <= --sampling-threshold``
   (default 5%, matching the controller's default target).

4. **Series recording is cheap.**  A
   :class:`~repro.obs.timeseries.SeriesRecorder` (with the example alert
   rules attached) samples a streaming session once per segment — a
   bounded amount of work on a coarse clock — so attaching metric
   history + alerting to a stream must cost <= ``--series-threshold``
   (default 5%) over the same stream with a bare registry.

Best-of-N is the right statistic: both variants of each pair run nearly
identical code, so any gap beyond the real overhead is scheduling noise,
and the minimum is the noise-robust estimator.  All sections also
assert the instrumented run's cost is bit-identical to the plain one.

Usage::

    PYTHONPATH=src python benchmarks/check_tracing_overhead.py
"""

from __future__ import annotations

import argparse
import math
import sys
import time

#: (colors, delta, horizon, resources) — mirrors the EXP-S quick cells.
CELLS = (
    (4, 2, 512, 8),
    (8, 4, 512, 16),
    (8, 4, 2048, 16),
)


def _run_cell(instance, resources, tracer=None, registry=None):
    from repro.algorithms.dlru_edf import DeltaLRUEDF
    from repro.simulation.engine import simulate

    start = time.perf_counter()
    result = simulate(
        instance,
        DeltaLRUEDF(),
        resources,
        record="costs",
        tracer=tracer,
        registry=registry,
    )
    return time.perf_counter() - start, result.total_cost


def _gate(label, repeats, variant_factory, threshold) -> tuple[bool, list[float]]:
    """Run paired cells; variant_factory() -> kwargs for the variant run."""
    from repro.workloads.random_batched import random_rate_limited

    ratios = []
    print(f"{label}: {repeats} paired runs per cell")
    for colors, delta, horizon, resources in CELLS:
        instance = random_rate_limited(
            colors, delta, horizon, seed=0, load=0.6, bound_choices=(2, 4, 8)
        )
        best_plain = math.inf
        best_variant = math.inf
        cost_plain = cost_variant = None
        for _ in range(repeats):
            # Interleave the pair so both see the same machine state.
            seconds, cost_plain = _run_cell(instance, resources)
            best_plain = min(best_plain, seconds)
            seconds, cost_variant = _run_cell(
                instance, resources, **variant_factory()
            )
            best_variant = min(best_variant, seconds)
        if cost_plain != cost_variant:
            print(
                f"  FATAL: cell {(colors, delta, horizon, resources)} "
                f"cost diverged: {cost_plain} plain vs {cost_variant} "
                "instrumented"
            )
            return False, ratios
        ratio = best_variant / best_plain
        ratios.append(ratio)
        print(
            f"  colors={colors} horizon={horizon}: "
            f"{best_plain * 1e3:.1f}ms plain, "
            f"{best_variant * 1e3:.1f}ms instrumented (x{ratio:.3f})"
        )
    geomean = math.exp(sum(math.log(r) for r in ratios) / len(ratios))
    overhead = geomean - 1.0
    print(f"  geomean overhead: {overhead:+.1%} (gate {threshold:.0%})")
    return overhead <= threshold, ratios


def _sampling_gate(repeats: int, threshold: float) -> bool:
    """Adaptive sampling must hold its above-floor overhead budget.

    Interleaves plain / floor (``probability=0.0``) / adaptive runs so
    all three see the same machine state, takes best-of-N each, and
    gates the *time-weighted* above-floor overhead across cells:
    ``(sum(t_sampled) - sum(t_floor)) / sum(t_plain)``.  Per-cell ratios
    on the small cells are printed but not gated — a millisecond of
    scheduler noise is 20% of a 5ms run.  Timing runs with gc paused.
    Also requires all three costs bit-identical (sampling is strictly
    observational).
    """
    import gc

    from repro.obs.sampling import SamplingController, SamplingTracer
    from repro.obs.tracing import MemorySink
    from repro.workloads.random_batched import random_rate_limited

    def _floor():
        return SamplingTracer(
            MemorySink(), controller=SamplingController(probability=0.0, seed=0)
        )

    def _adaptive():
        return SamplingTracer(
            MemorySink(),
            controller=SamplingController(target_overhead=0.05, seed=0),
        )

    print(f"sampled tracing gate: {repeats} interleaved triples per cell")
    totals = {"plain": 0.0, "floor": 0.0, "sampled": 0.0}
    gc_was_enabled = gc.isenabled()
    try:
        for colors, delta, horizon, resources in CELLS:
            instance = random_rate_limited(
                colors, delta, horizon, seed=0, load=0.6, bound_choices=(2, 4, 8)
            )
            best = {"plain": math.inf, "floor": math.inf, "sampled": math.inf}
            costs = {}
            for _ in range(repeats):
                for key, kwargs in (
                    ("plain", {}),
                    ("floor", {"tracer": _floor()}),
                    ("sampled", {"tracer": _adaptive()}),
                ):
                    gc.collect()
                    gc.disable()
                    try:
                        seconds, costs[key] = _run_cell(
                            instance, resources, **kwargs
                        )
                    finally:
                        gc.enable()
                    best[key] = min(best[key], seconds)
            if len(set(costs.values())) != 1:
                print(
                    f"  FATAL: cell {(colors, delta, horizon, resources)} "
                    f"cost diverged under sampling: {costs}"
                )
                return False
            for key in totals:
                totals[key] += best[key]
            above_floor = (best["sampled"] - best["floor"]) / best["plain"]
            print(
                f"  colors={colors} horizon={horizon}: "
                f"{best['plain'] * 1e3:.1f}ms plain, "
                f"{best['floor'] * 1e3:.1f}ms floor, "
                f"{best['sampled'] * 1e3:.1f}ms adaptive "
                f"(above-floor {above_floor:+.1%})"
            )
    finally:
        if not gc_was_enabled:
            gc.disable()
    aggregate = (totals["sampled"] - totals["floor"]) / totals["plain"]
    print(
        f"  time-weighted above-floor overhead: {aggregate:+.1%} "
        f"(gate {threshold:.0%})"
    )
    return aggregate <= threshold


def _recorder_gate(repeats: int, threshold: float) -> bool:
    """A series recorder + alert rules must barely tax a stream.

    Streams the same rate-limited workload twice per repeat — bare
    registry vs. registry + :class:`SeriesRecorder` with the example
    alert rules — interleaved, best-of-N, and gates the slowdown.  The
    recorder samples once per segment (the deterministic round clock),
    so its cost is O(instruments) on a coarse clock, not per-round.
    Costs must stay bit-identical: recording is strictly observational.
    """
    import math as _math

    from repro.algorithms.dlru_edf import DeltaLRUEDF
    from repro.obs import MetricsRegistry, SeriesRecorder
    from repro.obs.alerts import example_rules
    from repro.streaming import StreamSession, rate_limited_source

    rounds, segment = 8192, 256

    def _run(with_recorder: bool):
        registry = MetricsRegistry()
        recorder = None
        if with_recorder:
            recorder = SeriesRecorder(registry, rules=example_rules())
        session = StreamSession(
            rate_limited_source(6, 8, seed=0, load=0.6, bound_choices=(8, 16)),
            DeltaLRUEDF(),
            8,
            registry=registry,
            recorder=recorder,
            segment_rounds=segment,
        )
        start = time.perf_counter()
        result = session.run(rounds)
        return time.perf_counter() - start, result.total_cost

    print(f"series-recorder gate: {repeats} paired {rounds}-round streams")
    best_plain = best_recorded = _math.inf
    cost_plain = cost_recorded = None
    for _ in range(repeats):
        seconds, cost_plain = _run(False)
        best_plain = min(best_plain, seconds)
        seconds, cost_recorded = _run(True)
        best_recorded = min(best_recorded, seconds)
    if cost_plain != cost_recorded:
        print(
            f"  FATAL: cost diverged: {cost_plain} bare vs "
            f"{cost_recorded} recorded"
        )
        return False
    ratio = best_recorded / best_plain
    print(
        f"  {best_plain * 1e3:.1f}ms bare registry, "
        f"{best_recorded * 1e3:.1f}ms with recorder+rules "
        f"(x{ratio:.3f}, gate {threshold:.0%})"
    )
    return ratio - 1.0 <= threshold


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.03,
        help="allowed fractional null-sink slowdown (default 0.03)",
    )
    parser.add_argument(
        "--metrics-threshold",
        type=float,
        default=0.15,
        help="allowed fractional live-registry slowdown (default 0.15)",
    )
    parser.add_argument(
        "--sampling-threshold",
        type=float,
        default=0.05,
        help="allowed above-floor adaptive-sampling slowdown (default 0.05)",
    )
    parser.add_argument(
        "--series-threshold",
        type=float,
        default=0.05,
        help="allowed fractional series-recorder slowdown (default 0.05)",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=15,
        help="paired repetitions per cell; best-of wins (default 15)",
    )
    args = parser.parse_args(argv)

    from repro.obs import MetricsRegistry, NullSink, Tracer

    ok_null, _ = _gate(
        "null-sink tracing gate",
        args.repeats,
        lambda: {"tracer": Tracer(NullSink())},
        args.threshold,
    )
    if not ok_null:
        print(
            "FAIL: a disabled tracer must be free — a hot-loop emission "
            "site is probably paying more than its `is not None` check"
        )
        return 1

    ok_metrics, _ = _gate(
        "live metrics gate",
        args.repeats,
        lambda: {"registry": MetricsRegistry()},
        args.metrics_threshold,
    )
    if not ok_metrics:
        print(
            "FAIL: live metrics exceed the budget — check that histogram "
            "observes are buffered and instrument handles are pre-resolved "
            "(EngineInstruments.flush)"
        )
        return 1

    if not _sampling_gate(args.repeats, args.sampling_threshold):
        print(
            "FAIL: adaptive sampling exceeds its above-floor budget — "
            "check that the controller starts at min_probability and that "
            "the engine's keep_round shortcut is wired (BatchedEngine."
            "_round_filter)"
        )
        return 1

    if not _recorder_gate(args.repeats, args.series_threshold):
        print(
            "FAIL: the series recorder exceeds its budget — sampling must "
            "stay once-per-segment and O(instruments) per sample (check "
            "SeriesRecorder.sample and Series._compact)"
        )
        return 1

    print("pass: tracing, metrics, sampling, and series recording are "
          "within their budgets")
    return 0


if __name__ == "__main__":
    sys.exit(main())
