"""CI smoke for streaming ingestion: bounded memory + exact resume.

Three acceptance promises, checked end to end:

1. **O(pending) memory.**  A million-round streaming session must not
   allocate proportionally to the rounds streamed: the tracemalloc peak
   of a 10x longer run must stay within a constant factor (plus slack)
   of the short run's peak, and under an absolute ceiling.  A
   materialized instance of the same workload would hold millions of
   job objects; the stream holds one segment's worth.
2. **A series recorder keeps it flat.**  The same million-round session
   with a metrics registry, a :class:`SeriesRecorder`, and the example
   alert rules attached must stay within a constant factor of the bare
   run's peak (ring buffers compact; history is O(capacity), not
   O(samples)) and must not change the cost by a single unit.
3. **Checkpoint -> restore is exact.**  A session checkpointed to a file
   mid-run and resumed in a fresh session must finish with a
   ``CostBreakdown`` equal (bit for bit, via ``to_dict``) to an
   uninterrupted session's — on every available engine backend.
4. **Admission caps hold.**  With a per-color cap, every admitted batch
   respects the cap and the ingest counters reconcile.

Usage::

    PYTHONPATH=src python benchmarks/check_stream_smoke.py
"""

from __future__ import annotations

import sys
import tempfile
import tracemalloc
from pathlib import Path

#: Workload shape: few boundaries per round keeps the smoke fast while
#: still pushing a seven-figure round count through the session.
COLORS, DELTA, LOAD, SEED = 6, 64, 0.3, 17
BOUNDS = (64, 128)
RESOURCES = 8

SHORT_ROUNDS = 100_000
LONG_ROUNDS = 1_000_000

#: The long run may allocate this much more than the short run before we
#: call it unbounded: generous slack for allocator noise, nowhere near
#: the 10x a rounds-proportional structure would show.
GROWTH_FACTOR = 1.5
GROWTH_SLACK_BYTES = 4 << 20
ABSOLUTE_CEILING_BYTES = 96 << 20


def _source():
    from repro.streaming import rate_limited_source

    return rate_limited_source(
        COLORS, DELTA, seed=SEED, load=LOAD, bound_choices=BOUNDS
    )


def _session(**kwargs):
    from repro.algorithms.dlru_edf import DeltaLRUEDF
    from repro.streaming import StreamSession

    return StreamSession(_source(), DeltaLRUEDF(), RESOURCES, **kwargs)


def _peak_bytes(rounds: int, *, recorder: bool = False) -> tuple[int, int]:
    """(tracemalloc peak, total cost) of streaming ``rounds`` rounds."""
    kwargs = {}
    if recorder:
        from repro.obs import MetricsRegistry, SeriesRecorder
        from repro.obs.alerts import example_rules

        registry = MetricsRegistry()
        kwargs = {
            "registry": registry,
            "recorder": SeriesRecorder(registry, rules=example_rules()),
        }
    tracemalloc.start()
    try:
        result = _session(**kwargs).run(rounds)
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return peak, result.total_cost


def _check_memory_bound() -> tuple[int, int, int]:
    """Returns (failures, bare long-run peak, bare long-run cost)."""
    failures = 0
    short_peak, _ = _peak_bytes(SHORT_ROUNDS)
    long_peak, total_cost = _peak_bytes(LONG_ROUNDS)
    budget = int(short_peak * GROWTH_FACTOR) + GROWTH_SLACK_BYTES
    print(
        f"  peak memory: {SHORT_ROUNDS:,} rounds -> {short_peak / 2**20:.1f} "
        f"MiB, {LONG_ROUNDS:,} rounds -> {long_peak / 2**20:.1f} MiB "
        f"(budget {budget / 2**20:.1f} MiB)"
    )
    if long_peak > budget:
        failures += 1
        print(
            "  FATAL: 10x more rounds grew the peak past the constant-"
            "factor budget — memory is not O(pending)"
        )
    if long_peak > ABSOLUTE_CEILING_BYTES:
        failures += 1
        print(
            f"  FATAL: peak {long_peak / 2**20:.1f} MiB exceeds the "
            f"{ABSOLUTE_CEILING_BYTES / 2**20:.0f} MiB ceiling"
        )
    if not failures:
        print(
            f"  {LONG_ROUNDS:,} rounds streamed, total cost {total_cost:,}; "
            "peak memory flat across a 10x round increase"
        )
    return failures, long_peak, total_cost


#: Metric history + alert evaluation may cost this much extra peak over
#: the bare session: ring buffers cap at ``capacity`` points per series,
#: so the overlay is a small constant, not a function of rounds.
RECORDER_FACTOR = 1.5


def _check_recorder_overlay(bare_peak: int, bare_cost: int) -> int:
    failures = 0
    peak, cost = _peak_bytes(LONG_ROUNDS, recorder=True)
    budget = int(bare_peak * RECORDER_FACTOR) + GROWTH_SLACK_BYTES
    print(
        f"  recorder attached: {LONG_ROUNDS:,} rounds -> "
        f"{peak / 2**20:.1f} MiB peak (budget {budget / 2**20:.1f} MiB)"
    )
    if cost != bare_cost:
        failures += 1
        print(
            f"  FATAL: recording changed the cost: {cost:,} vs {bare_cost:,} "
            "bare — observation must be strictly read-only"
        )
    if peak > budget:
        failures += 1
        print(
            "  FATAL: series history grew the peak past the constant "
            "overlay budget — ring compaction is not bounding memory"
        )
    if not failures:
        print(
            "  recorder + alert rules: cost bit-identical, history memory "
            "O(capacity) across a million rounds"
        )
    return failures


def _available_engines() -> list[str]:
    engines = ["sparse", "dense"]
    try:
        import numpy  # noqa: F401

        engines.append("vectorized")
    except ImportError:
        print("  (numpy absent: vectorized backend skipped)")
    return engines


def _check_resume_exact(tmp: Path) -> int:
    from repro.streaming import StreamSession

    failures = 0
    rounds, cut = 24_000, 10_100  # cut mid-epoch, not on a bound multiple
    for engine in _available_engines():
        baseline = _session(engine=engine).run(rounds)
        path = tmp / f"ckpt-{engine}.json"
        first = _session(engine=engine)
        first.run(cut, checkpoint_every=cut, checkpoint_path=path)
        del first  # forced kill: only the file survives
        from repro.algorithms.dlru_edf import DeltaLRUEDF

        resumed = StreamSession.resume(_source(), DeltaLRUEDF(), str(path))
        result = resumed.run(rounds - cut)
        if result.cost.to_dict() != baseline.cost.to_dict():
            failures += 1
            print(
                f"  FATAL: {engine}: resumed cost {result.total_cost} != "
                f"uninterrupted {baseline.total_cost}"
            )
        else:
            print(
                f"  {engine}: kill at round {cut:,} + resume reproduces "
                f"cost {baseline.total_cost:,} bit for bit"
            )
    return failures


def _check_admission_caps() -> int:
    from repro.streaming import AdmissionPolicy

    failures = 0
    cap = 4
    session = _session(policy=AdmissionPolicy(queue_cap=cap))
    result = session.run(30_000)
    ingest = session.ingest
    if result.offered != result.admitted + result.rejected:
        failures += 1
        print("  FATAL: ingest counters do not reconcile")
    elif result.rejected == 0:
        failures += 1
        print("  FATAL: cap never rejected anything at this load")
    else:
        print(
            f"  cap {cap}/color: offered {result.offered:,}, admitted "
            f"{result.admitted:,}, rejected {result.rejected:,} "
            f"(rate {result.rejection_rate:.3f})"
        )
    if sum(ingest.rejected_by_color.values()) != result.rejected:
        failures += 1
        print("  FATAL: per-color rejection counters do not sum to total")
    return failures


def main() -> int:
    print("stream smoke: bounded memory, exact resume, admission caps")
    memory_failures, bare_peak, bare_cost = _check_memory_bound()
    failures = memory_failures
    failures += _check_recorder_overlay(bare_peak, bare_cost)
    with tempfile.TemporaryDirectory() as tmp:
        failures += _check_resume_exact(Path(tmp))
    failures += _check_admission_caps()
    if failures:
        print(f"FAIL: {failures} stream smoke check(s) failed")
        return 1
    print(
        "pass: memory flat (with and without recorder), resume exact, "
        "caps enforced"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
