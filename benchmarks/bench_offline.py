"""Offline-optimum solver bench: the ISSUE-7 horizon-reach acceptance.

The grid is the EXP-P mini-grid family — ``random_general(3, 2, horizon,
seed=seed, rate=0.4, bound_choices=(2, 4))`` solved with ``m=2``
resources — measured for both the RDS solver and the legacy iterative
branch-and-bound across seeds x horizons.  The headline metric is
**horizon reach**: for each seed and base horizon, the node budget is
what the legacy solver spends at the base, and the reach is the longest
horizon in the ladder the RDS solver finishes *exactly* within that
budget.  The acceptance floor asserts the per-base geomean of
reach/base is >= 2x (the bound stack must double the solvable horizon,
not just shave nodes), with costs cross-checked against
``optimal_offline_exhaustive`` on every small cell.

``bench_offline_table`` regenerates the committed
``benchmarks/reports/BENCH_offline.json`` (schema
:data:`repro.runtime.telemetry.OFFLINE_BENCH_SCHEMA`); the CI smoke
re-measures a quick subset and diffs it against that baseline via
``check_bench_regression.py --suite offline``.
"""

from __future__ import annotations

import math
import time

from repro.offline.optimal import optimal_offline, optimal_offline_exhaustive
from repro.runtime.telemetry import OFFLINE_BENCH_SCHEMA, write_bench_json
from repro.workloads.random_batched import random_general

#: The EXP-P mini-grid cell family (colors, resources, rate, bounds).
COLORS = 3
RESOURCES = 2
RATE = 0.4
BOUND_CHOICES = (2, 4)

#: Full grid: the ladder the reach metric climbs, and the bases whose
#: legacy node spend defines each budget.
SEEDS = (0, 1, 2, 3)
HORIZONS = (48, 64, 96, 128, 160, 192)
BASES = (48, 64, 96)

#: Horizons small enough for the exhaustive cross-check to be cheap.
CROSSCHECK_HORIZON = 64

#: Quick subset for the CI smoke / regression guard.
SMOKE_SEEDS = (0, 1)
SMOKE_HORIZONS = (48, 64, 96)

MAX_STATES = 4_000_000


def make_cell(seed: int, horizon: int):
    """One EXP-P mini-grid instance."""
    return random_general(
        COLORS,
        RESOURCES,
        horizon,
        seed=seed,
        rate=RATE,
        bound_choices=BOUND_CHOICES,
    )


def measure_cells(
    seeds=SEEDS,
    horizons=HORIZONS,
    *,
    max_states: int = MAX_STATES,
    crosscheck: bool = True,
) -> list[dict]:
    """Solve every cell with both solvers; return one row per (cell, method).

    Every cell asserts rds cost == legacy cost; cells at or below
    :data:`CROSSCHECK_HORIZON` additionally assert against the
    exhaustive solver, so a bound-stack soundness bug fails the bench
    before any perf number is reported.
    """
    rows: list[dict] = []
    for seed in seeds:
        for horizon in horizons:
            instance = make_cell(seed, horizon)
            per_method: dict[str, dict] = {}
            for method in ("rds", "legacy"):
                started = time.perf_counter()
                result = optimal_offline(
                    instance, RESOURCES, method=method, max_states=max_states
                )
                per_method[method] = {
                    "kind": "offline_cell",
                    "seed": seed,
                    "horizon": horizon,
                    "method": method,
                    "cost": result.cost,
                    "nodes": result.nodes_expanded,
                    "seconds": round(time.perf_counter() - started, 4),
                }
            assert per_method["rds"]["cost"] == per_method["legacy"]["cost"], (
                f"seed {seed} horizon {horizon}: rds/legacy cost mismatch"
            )
            checked = False
            if crosscheck and horizon <= CROSSCHECK_HORIZON:
                exact = optimal_offline_exhaustive(instance, RESOURCES)
                assert exact.cost == per_method["rds"]["cost"], (
                    f"seed {seed} horizon {horizon}: exhaustive disagrees"
                )
                checked = True
            for row in per_method.values():
                row["exhaustive_checked"] = checked
                rows.append(row)
    return rows


def horizon_reach(rows: list[dict], bases=BASES) -> dict:
    """Per-base horizon-reach ratios and their geomeans.

    For each seed, the budget is the legacy solver's node count at the
    base horizon; the reach is the longest measured horizon whose RDS
    node count stays within that budget (at least the base itself —
    every base cell is verified to fit its own budget).
    """
    nodes: dict[tuple[str, int, int], int] = {}
    horizons: set[int] = set()
    seeds: set[int] = set()
    for row in rows:
        nodes[(row["method"], row["seed"], row["horizon"])] = row["nodes"]
        horizons.add(row["horizon"])
        seeds.add(row["seed"])
    ladder = sorted(horizons)
    summary: dict = {}
    for base in bases:
        ratios: dict[int, float] = {}
        for seed in sorted(seeds):
            budget = nodes[("legacy", seed, base)]
            assert nodes[("rds", seed, base)] <= budget, (
                f"seed {seed}: rds outspends legacy at its own base {base}"
            )
            reach = max(
                h for h in ladder if nodes[("rds", seed, h)] <= budget
            )
            ratios[seed] = reach / base
        geomean = math.exp(
            sum(math.log(r) for r in ratios.values()) / len(ratios)
        )
        summary[base] = {
            "geomean_reach": round(geomean, 3),
            "ratios": {f"seed{s}": round(r, 3) for s, r in ratios.items()},
        }
    return summary


def bench_offline_table(report_dir):
    """Full grid -> BENCH_offline.json, asserting the >=2x reach floor."""
    rows = measure_cells()
    reach = horizon_reach(rows)
    for base, cell in reach.items():
        # The ISSUE-7 acceptance floor: within the node budget the legacy
        # branch-and-bound spends at each base horizon, the RDS solver
        # must reach horizons >= 2x longer (geomean across seeds).
        assert cell["geomean_reach"] >= 2.0, (
            f"base {base}: reach geomean {cell['geomean_reach']} < 2.0"
        )
    node_ratios = []
    for seed in SEEDS:
        for horizon in HORIZONS:
            cell = {
                row["method"]: row["nodes"]
                for row in rows
                if row["seed"] == seed and row["horizon"] == horizon
            }
            node_ratios.append(cell["legacy"] / cell["rds"])
    summary = {
        "horizon_reach": reach,
        "equal_horizon_node_ratio_geomean": round(
            math.exp(sum(map(math.log, node_ratios)) / len(node_ratios)), 3
        ),
        "grid": {
            "colors": COLORS,
            "resources": RESOURCES,
            "rate": RATE,
            "bound_choices": list(BOUND_CHOICES),
            "seeds": list(SEEDS),
            "horizons": list(HORIZONS),
            "bases": list(BASES),
            "max_states": MAX_STATES,
        },
    }
    path = report_dir / "BENCH_offline.json"
    payload = write_bench_json(
        path, rows, summary=summary, schema=OFFLINE_BENCH_SCHEMA
    )
    assert payload["schema"] == OFFLINE_BENCH_SCHEMA
    print(
        "\nhorizon reach geomeans: "
        + "  ".join(
            f"base {b}: {c['geomean_reach']}x" for b, c in reach.items()
        )
    )


def bench_offline_smoke():
    """CI-size subset: exactness plus the node win, no baseline rewrite."""
    rows = measure_cells(SMOKE_SEEDS, SMOKE_HORIZONS)
    by_cell: dict[tuple[int, int], dict[str, int]] = {}
    for row in rows:
        by_cell.setdefault((row["seed"], row["horizon"]), {})[
            row["method"]
        ] = row["nodes"]
    for (seed, horizon), cell in by_cell.items():
        assert cell["rds"] < cell["legacy"], (
            f"seed {seed} horizon {horizon}: rds expanded {cell['rds']} "
            f">= legacy {cell['legacy']}"
        )
    checked = [row for row in rows if row["exhaustive_checked"]]
    assert checked, "no cell was cross-checked against the exhaustive solver"
