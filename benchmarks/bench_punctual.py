"""EXP-P bench: Lemma 5.3's punctualization constants, measured.

Shape claims: the reconfiguration factor stays well below the proof's
~12x credit budget; every punctualized schedule transfers feasibly to
the VarBatch-batched instance (the step Theorem 3 depends on).
"""


def bench_punctualization_factors(run_and_report):
    report = run_and_report("EXP-P", seeds=(0, 1, 2, 3, 4, 5), horizon=20)
    assert report.summary["max_factor"] <= 12
    assert report.summary["all_transfer"]
    # Optimal schedules really do use non-punctual executions (what the
    # VarBatch delay sacrifices).
    assert any(
        row["early_share"] + row["late_share"] > 0 for row in report.rows
    )
