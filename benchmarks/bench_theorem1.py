"""EXP-T1 bench: Theorem 1's resource competitiveness of ΔLRU-EDF.

Paper claim: with ``n = 8m`` resources, ΔLRU-EDF's cost on any
rate-limited batched input is within a constant factor of OFF's with
``m``.  The bench sweeps random/bursty/adversarial workloads and checks
the max measured ratio (vs exact optimum where feasible, certified lower
bound otherwise) stays below a fixed constant.
"""


def bench_theorem1_resource_competitive(run_and_report):
    report = run_and_report(
        "EXP-T1",
        seeds=(0, 1, 2),
        delta_values=(2, 4),
        horizon=64,
    )
    assert report.summary["max_ratio"] < 10
    assert report.summary["geomean_ratio"] < 4
    # The combined algorithm should never lose badly to the pure schemes.
    for row in report.rows:
        assert row["dlru_edf_cost"] <= 2 * min(row["dlru_cost"], row["edf_cost"]) + 1
