"""EXP-S bench plus micro-benchmarks of the hot paths.

The experiment-level bench regenerates the throughput table — both
record modes, dispatched through the session :class:`ParallelRunner` —
and persists the measured rows as ``benchmarks/reports/BENCH_engine.json``
(schema :data:`repro.runtime.telemetry.BENCH_SCHEMA`) so throughput and
fast-path speedup are tracked as machine-readable history, not just
prose.  The micro benches time the individual hot paths (engine round
loop full and fast, Par-EDF, exact offline search, capacity lower bound)
under pytest-benchmark's statistical clock so regressions show up in
``--benchmark-compare``.
"""

import pytest

from repro.algorithms.dlru_edf import DeltaLRUEDF
from repro.algorithms.par_edf import run_par_edf
from repro.offline.lower_bounds import capacity_lower_bound
from repro.offline.optimal import optimal_offline
from repro.runtime.telemetry import read_bench_json, write_bench_json
from repro.simulation.engine import simulate
from repro.workloads.random_batched import random_rate_limited


def bench_scaling_table(run_and_report, parallel_runner, report_dir):
    report = run_and_report("EXP-S", runner=parallel_runner)
    assert report.summary["min_rounds_per_second"] > 100
    assert report.summary["fast_path_speedup_geomean"] > 1.0
    path = report_dir / "BENCH_engine.json"
    write_bench_json(path, report.rows, summary=report.summary)
    payload = read_bench_json(path)
    assert len(payload["rows"]) == len(report.rows)


def bench_scaling_smoke(parallel_runner):
    """Tiny grid for CI: EXP-S end to end in a few seconds, no clock stats."""
    from repro.experiments.registry import run_experiment

    report = run_experiment("EXP-S", quick=True, runner=parallel_runner)
    assert report.summary["min_rounds_per_second"] > 100
    records = {row["record"] for row in report.rows}
    assert records == {"full", "costs"}


@pytest.fixture(scope="module")
def medium_instance():
    return random_rate_limited(
        8, 4, 512, seed=0, load=0.6, bound_choices=(2, 4, 8, 16)
    )


def bench_engine_round_loop(benchmark, medium_instance):
    result = benchmark(lambda: simulate(medium_instance, DeltaLRUEDF(), 16))
    assert result.verify().ok


def bench_engine_fast_path(benchmark, medium_instance):
    result = benchmark(
        lambda: simulate(medium_instance, DeltaLRUEDF(), 16, record="costs")
    )
    full = simulate(medium_instance, DeltaLRUEDF(), 16)
    assert result.cost.summary() == full.cost.summary()


def bench_par_edf(benchmark, medium_instance):
    result = benchmark(lambda: run_par_edf(medium_instance, 4))
    assert result.num_executions > 0


def bench_capacity_lower_bound(benchmark, medium_instance):
    value = benchmark(lambda: capacity_lower_bound(medium_instance, 2))
    assert value >= 0


def bench_exact_offline_search(benchmark):
    instance = random_rate_limited(
        3, 2, 16, seed=0, load=0.7, bound_choices=(2, 4)
    )
    result = benchmark.pedantic(
        lambda: optimal_offline(instance, 2, max_states=600_000),
        rounds=3,
        iterations=1,
    )
    assert result.cost >= 0
