"""EXP-S bench plus micro-benchmarks of the hot paths.

The experiment-level bench regenerates the throughput table — both
record modes and both engine cores, dispatched through the session
:class:`ParallelRunner` — plus an offline branch-and-bound pruning row
and an adversary score-cache row, and persists everything as
``benchmarks/reports/BENCH_engine.json`` (schema
:data:`repro.runtime.telemetry.BENCH_SCHEMA`) so throughput, fast-path
speedup, sparse-core speedup, states-explored reduction, and cache hit
rate are tracked as machine-readable history, not just prose.  The micro
benches time the individual hot paths (engine round loop full and fast,
Par-EDF, exact offline search, capacity lower bound) under
pytest-benchmark's statistical clock so regressions show up in
``--benchmark-compare``.
"""

import pytest

from repro.algorithms.dlru_edf import DeltaLRUEDF
from repro.algorithms.par_edf import run_par_edf
from repro.analysis.adversary_search import SearchConfig, search_adversary
from repro.offline.lower_bounds import capacity_lower_bound
from repro.offline.optimal import optimal_offline, optimal_offline_exhaustive
from repro.runtime.telemetry import read_bench_json, write_bench_json
from repro.simulation.engine import simulate
from repro.workloads.random_batched import random_rate_limited


def _offline_search_row():
    """Branch-and-bound vs exhaustive states on a fixed pruning-friendly cell."""
    instance = random_rate_limited(
        3, 2, 32, seed=0, load=0.7, bound_choices=(2, 4)
    )
    bnb = optimal_offline(instance, 2)
    ref = optimal_offline_exhaustive(instance, 2)
    assert bnb.cost == ref.cost
    return {
        "kind": "offline_search",
        "colors": 3,
        "horizon": 32,
        "resources": 2,
        "optimal_cost": bnb.cost,
        "states_explored_bnb": bnb.states_explored,
        "states_explored_exhaustive": ref.states_explored,
        "states_reduction": ref.states_explored / max(1, bnb.states_explored),
    }


def _adversary_cache_row():
    """Score-cache hit rate of a small deterministic adversary search."""
    config = SearchConfig(
        num_colors=3, horizon=32, iterations=40, restarts=2, seed=0
    )
    result = search_adversary(DeltaLRUEDF, config)
    return {
        "kind": "adversary_cache",
        "evaluations": result.evaluations,
        "score_cache_hits": result.score_cache_hits,
        "score_cache_misses": result.score_cache_misses,
        "score_cache_hit_rate": result.score_cache_hit_rate,
    }


def _instrumented_metrics_snapshot():
    """Engine metrics from one instrumented mid-size cell (schema v3).

    A single EXP-S-representative run with a
    :class:`~repro.obs.metrics.MetricsRegistry` attached — the snapshot
    rides along in ``BENCH_engine.json`` so counter/histogram drift
    (drops, cache hits, backlog-age shape) is reviewable next to the
    throughput numbers it may explain.
    """
    from repro.obs import MetricsRegistry

    registry = MetricsRegistry()
    instance = random_rate_limited(
        8, 4, 512, seed=0, load=0.6, bound_choices=(2, 4, 8, 16)
    )
    simulate(instance, DeltaLRUEDF(), 16, record="costs", registry=registry)
    return registry.snapshot()


def bench_scaling_table(run_and_report, parallel_runner, report_dir):
    report = run_and_report("EXP-S", runner=parallel_runner)
    assert report.summary["min_rounds_per_second"] > 100
    assert report.summary["fast_path_speedup_geomean"] > 1.0
    assert report.summary["sparse_core_speedup_geomean"] > 1.0
    # The general engine's sparse core must pay for itself decisively on
    # its sparse-friendly cells (the ISSUE-4 acceptance floor).
    assert report.summary["general_sparse_speedup_geomean"] >= 2.0
    # The vectorized core must clear 10x over the dense core on the dense
    # EXP-S cells (the ISSUE-6 acceptance floor).
    assert report.summary["vectorized_speedup_geomean"] >= 10.0
    rows = list(report.rows)
    summary = dict(report.summary)

    offline_row = _offline_search_row()
    assert offline_row["states_reduction"] > 1.0
    rows.append(offline_row)
    summary["offline_states_reduction"] = round(
        offline_row["states_reduction"], 3
    )

    cache_row = _adversary_cache_row()
    assert cache_row["score_cache_hit_rate"] > 0.0
    rows.append(cache_row)
    summary["adversary_cache_hit_rate"] = round(
        cache_row["score_cache_hit_rate"], 3
    )

    metrics = _instrumented_metrics_snapshot()
    assert metrics["counters"]["engine.rounds_executed"] > 0

    path = report_dir / "BENCH_engine.json"
    write_bench_json(path, rows, summary=summary, metrics=metrics)
    payload = read_bench_json(path)
    assert len(payload["rows"]) == len(rows)
    assert "metrics" in payload


def bench_scaling_smoke(parallel_runner):
    """Tiny grid for CI: EXP-S end to end in a few seconds, no clock stats."""
    from repro.experiments.registry import run_experiment

    report = run_experiment("EXP-S", quick=True, runner=parallel_runner)
    assert report.summary["min_rounds_per_second"] > 100
    assert report.summary["sparse_core_speedup_geomean"] > 1.0
    assert report.summary["general_sparse_speedup_geomean"] > 1.0
    # ISSUE-6 floor: ≥10x over the dense core even on the tiny CI cells.
    assert report.summary["vectorized_speedup_geomean"] >= 10.0
    records = {row["record"] for row in report.rows}
    assert records == {"full", "costs"}
    engines = {row["engine"] for row in report.rows}
    assert engines == {
        "dense",
        "sparse",
        "vectorized",
        "general-dense",
        "general-sparse",
    }


@pytest.fixture(scope="module")
def medium_instance():
    return random_rate_limited(
        8, 4, 512, seed=0, load=0.6, bound_choices=(2, 4, 8, 16)
    )


def bench_engine_round_loop(benchmark, medium_instance):
    result = benchmark(lambda: simulate(medium_instance, DeltaLRUEDF(), 16))
    assert result.verify().ok


def bench_engine_fast_path(benchmark, medium_instance):
    result = benchmark(
        lambda: simulate(medium_instance, DeltaLRUEDF(), 16, record="costs")
    )
    full = simulate(medium_instance, DeltaLRUEDF(), 16)
    assert result.cost.summary() == full.cost.summary()


def bench_engine_vectorized(benchmark, medium_instance):
    result = benchmark(
        lambda: simulate(
            medium_instance,
            DeltaLRUEDF(),
            16,
            record="costs",
            engine="vectorized",
        )
    )
    reference = simulate(medium_instance, DeltaLRUEDF(), 16, record="costs")
    assert result.cost.summary() == reference.cost.summary()


def bench_par_edf(benchmark, medium_instance):
    result = benchmark(lambda: run_par_edf(medium_instance, 4))
    assert result.num_executions > 0


def bench_capacity_lower_bound(benchmark, medium_instance):
    value = benchmark(lambda: capacity_lower_bound(medium_instance, 2))
    assert value >= 0


def bench_exact_offline_search(benchmark):
    instance = random_rate_limited(
        3, 2, 16, seed=0, load=0.7, bound_choices=(2, 4)
    )
    result = benchmark.pedantic(
        lambda: optimal_offline(instance, 2, max_states=600_000),
        rounds=3,
        iterations=1,
    )
    assert result.cost >= 0
