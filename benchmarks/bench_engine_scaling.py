"""EXP-S bench plus micro-benchmarks of the hot paths.

The experiment-level bench regenerates the throughput table; the micro
benches time the individual hot paths (engine round loop, Par-EDF,
exact offline search, capacity lower bound) under pytest-benchmark's
statistical clock so regressions show up in ``--benchmark-compare``.
"""

import pytest

from repro.algorithms.dlru_edf import DeltaLRUEDF
from repro.algorithms.par_edf import run_par_edf
from repro.offline.lower_bounds import capacity_lower_bound
from repro.offline.optimal import optimal_offline
from repro.simulation.engine import simulate
from repro.workloads.random_batched import random_rate_limited


def bench_scaling_table(run_and_report):
    report = run_and_report("EXP-S")
    assert report.summary["min_rounds_per_second"] > 100


@pytest.fixture(scope="module")
def medium_instance():
    return random_rate_limited(
        8, 4, 512, seed=0, load=0.6, bound_choices=(2, 4, 8, 16)
    )


def bench_engine_round_loop(benchmark, medium_instance):
    result = benchmark(lambda: simulate(medium_instance, DeltaLRUEDF(), 16))
    assert result.verify().ok


def bench_par_edf(benchmark, medium_instance):
    result = benchmark(lambda: run_par_edf(medium_instance, 4))
    assert result.num_executions > 0


def bench_capacity_lower_bound(benchmark, medium_instance):
    value = benchmark(lambda: capacity_lower_bound(medium_instance, 2))
    assert value >= 0


def bench_exact_offline_search(benchmark):
    instance = random_rate_limited(
        3, 2, 16, seed=0, load=0.7, bound_choices=(2, 4)
    )
    result = benchmark.pedantic(
        lambda: optimal_offline(instance, 2, max_states=600_000),
        rounds=3,
        iterations=1,
    )
    assert result.cost >= 0
