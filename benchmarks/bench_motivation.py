"""EXP-M bench: the introduction's thrashing/underutilization dilemma.

Paper claim (Section 1): strategies that only chase backlog thrash;
strategies that never adapt underutilize; the EDF+LRU combination avoids
both failure modes on the background/short-term scenario.
"""


def bench_motivation_scenario(run_and_report):
    report = run_and_report("EXP-M", horizon=1024)
    rows = {row["policy"]: row for row in report.rows}
    combined = rows["dLRU-EDF"]["total"]
    never = rows["never-reconfigure"]["total"]
    # Underutilization extreme is catastrophic.
    assert combined * 3 < never
    # The combined policy is within a small factor of the best policy.
    best = min(row["total"] for row in report.rows)
    assert combined <= 3 * best
