"""CI smoke for the live ops surface: serve + scrape during a parallel matrix.

Boots the ops service on an ephemeral port, runs a small EXP-S matrix on
parallel workers with per-cell metrics publishing and run recording, and
checks the acceptance promises end to end:

1. **Live scrapes survive a run.**  A background scraper hits
   ``/metrics`` and ``/health`` continuously while the matrix executes;
   every response must be HTTP 200 and parse as valid Prometheus text
   exposition.
2. **Exposition is exact.**  After the run, the served ``/metrics``
   histogram ``_sum``/``_count`` series (and everything else under the
   ``repro_`` prefix) must match a local fold of the same per-cell
   snapshots through ``MetricsRegistry.merge_snapshot`` — byte for byte.
3. **Health is green.**  ``/health`` reports ``status: ok`` with the
   expected snapshot/run counts.
4. **The registry serves.**  ``/runs`` returns one record per matrix
   cell, and each record round-trips through the crash-safe store.

Usage::

    PYTHONPATH=src python benchmarks/check_ops_smoke.py
"""

from __future__ import annotations

import json
import re
import sys
import tempfile
import threading
import urllib.request
from pathlib import Path

#: Small matrix: 2 instances x 2 schemes, enough for parallel workers to
#: publish distinct snapshots while staying under a few seconds.
COLORS, DELTA, HORIZON, RESOURCES = 6, 4, 256, 8
SEEDS = (0, 1)

_SAMPLE_LINE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*"  # metric name
    r"(\{[a-zA-Z0-9_]+=\"(?:[^\"\\]|\\.)*\"(,[a-zA-Z0-9_]+=\"(?:[^\"\\]|\\.)*\")*\})?"
    r" (-?\d+(\.\d+)?([eE][+-]?\d+)?|[+-]Inf|NaN)$"
)


def _fetch(url: str) -> tuple[int, str]:
    with urllib.request.urlopen(url, timeout=10) as response:
        return response.status, response.read().decode("utf-8")


def _validate_exposition(text: str) -> list[str]:
    """Return a list of malformed lines ('' means valid exposition)."""
    bad = []
    if text and not text.endswith("\n"):
        bad.append("<missing trailing newline>")
    for line in text.splitlines():
        if not line or line.startswith("# HELP ") or line.startswith("# TYPE "):
            continue
        if not _SAMPLE_LINE.match(line):
            bad.append(line)
    return bad


def _check_serve_during_matrix(tmp: Path) -> int:
    from repro.algorithms import DeltaLRU, DeltaLRUEDF
    from repro.experiments.sweeps import run_matrix
    from repro.obs import MetricsRegistry, prometheus_text
    from repro.obs.registry import RegistrySink, RunRegistry
    from repro.obs.service import OpsService, OpsState
    from repro.runtime import ParallelRunner
    from repro.workloads.random_batched import random_batched

    failures = 0
    run_registry = RunRegistry(tmp / "runs")
    state = OpsState(run_registry=run_registry)
    recorder = RegistrySink(run_registry)
    snapshots: list[dict] = []

    def publish(snapshot: dict) -> None:
        snapshots.append(snapshot)
        state.publish_snapshot(snapshot)

    scrape_errors: list[str] = []
    scrape_count = 0
    stop_scraping = threading.Event()

    with OpsService(state) as service:
        base = service.url

        def scrape_loop() -> None:
            nonlocal scrape_count
            while not stop_scraping.is_set():
                try:
                    status, body = _fetch(base + "/metrics")
                    if status != 200:
                        scrape_errors.append(f"/metrics HTTP {status}")
                    else:
                        bad = _validate_exposition(body)
                        if bad:
                            scrape_errors.append(f"malformed: {bad[:3]}")
                    _fetch(base + "/health")
                    scrape_count += 1
                except Exception as error:  # noqa: BLE001 - report in main
                    scrape_errors.append(repr(error))
                stop_scraping.wait(0.02)

        scraper = threading.Thread(target=scrape_loop, daemon=True)
        scraper.start()
        try:
            instances = [
                random_batched(
                    COLORS, DELTA, HORIZON, seed=seed, load=0.5,
                    name=f"smoke-seed{seed}",
                )
                for seed in SEEDS
            ]
            sweep = run_matrix(
                instances,
                [DeltaLRUEDF, DeltaLRU],
                RESOURCES,
                record="costs",
                runner=ParallelRunner(max_workers=2),
                recorder=recorder,
                publish=publish,
            )
            state.note_run_recorded(recorder.recorded)
        finally:
            stop_scraping.set()
            scraper.join(timeout=10)

        cells = len(instances) * 2
        if scrape_errors:
            failures += 1
            print(f"  FATAL: live scrapes failed: {scrape_errors[:5]}")
        else:
            print(f"  {scrape_count} live scrapes during the matrix, all clean")

        # Exactness: fold the published snapshots locally and demand the
        # served repro_* section (histogram _sum/_count included) match
        # byte for byte.
        merged = MetricsRegistry()
        for snapshot in snapshots:
            merged.merge_snapshot(snapshot)
        expected = prometheus_text(merged)
        status, served = _fetch(base + "/metrics")
        if status != 200:
            failures += 1
            print(f"  FATAL: final /metrics HTTP {status}")
        elif not served.startswith(expected):
            failures += 1
            print("  FATAL: served repro_* exposition != merged local registry")
        else:
            sums = [l for l in expected.splitlines() if "_sum" in l]
            counts = [l for l in expected.splitlines() if "_count" in l]
            print(
                f"  served exposition matches merged registry exactly "
                f"({len(sums)} _sum / {len(counts)} _count series)"
            )
        bad = _validate_exposition(served)
        if bad:
            failures += 1
            print(f"  FATAL: final exposition malformed: {bad[:3]}")

        status, body = _fetch(base + "/health")
        health = json.loads(body)
        if status != 200 or health.get("status") != "ok":
            failures += 1
            print(f"  FATAL: /health not green: HTTP {status} {health}")
        elif health.get("snapshots_merged") != cells:
            failures += 1
            print(
                f"  FATAL: expected {cells} merged snapshots, "
                f"health says {health.get('snapshots_merged')}"
            )
        else:
            print(
                f"  /health green: {health['snapshots_merged']} snapshots, "
                f"{health.get('runs_recorded')} runs recorded"
            )

        status, body = _fetch(base + "/runs")
        runs = json.loads(body)["runs"]
        if status != 200 or len(runs) != cells:
            failures += 1
            print(f"  FATAL: /runs returned {len(runs)} records, want {cells}")
        else:
            print(f"  /runs serves {len(runs)} records")

    run_registry.close()

    # Round-trip: a fresh handle on the directory sees every record.
    reread = RunRegistry(tmp / "runs").records()
    if len(reread) != cells:
        failures += 1
        print(f"  FATAL: registry reread found {len(reread)} records")
    if sorted(r.total_cost for r in reread if r.total_cost is not None) != sorted(
        int(cost) for row in sweep.total_costs for cost in row
    ):
        failures += 1
        print("  FATAL: recorded costs do not match the sweep matrix")
    else:
        print("  registry round-trip matches the sweep's cost matrix")
    return failures


def main() -> int:
    print("ops smoke: serve + scrape during a parallel matrix")
    with tempfile.TemporaryDirectory() as tmp:
        failures = _check_serve_during_matrix(Path(tmp))
    if failures:
        print(f"FAIL: {failures} ops smoke check(s) failed")
        return 1
    print(
        "pass: live scrapes clean, exposition exact, health green, "
        "registry serves"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
