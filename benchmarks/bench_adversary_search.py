"""EXP-ADV bench: automated adversary hunting.

Shape claims:
* cold random search finds no blowup for any scheme — the pure schemes'
  failure modes are knife-edge structures, not generic behavior;
* warm-started from the Appendix A adversary, ΔLRU holds a large ratio
  while ΔLRU-EDF on the same start stays small (the Theorem 1
  separation, visible to local search).
"""


def bench_adversary_search(run_and_report):
    report = run_and_report(
        "EXP-ADV",
        iterations=240,
        restarts=3,
        horizon=48,
        num_colors=4,
        seeds=(0, 1),
    )
    assert report.summary["combination_at_most_pure"]
    assert report.summary["dlru_edf_worst_cold"] < 6
    assert report.summary["warm_separation"]
    assert report.summary["warm_dlru_edf_ratio"] < 3
