"""EXP-L bench: the Section 3.2 lemma inequalities audited on real runs.

Paper claims (each printed with both sides):
* Lemma 3.1: on sparse inputs ΔLRU-EDF costs no more than OFF.
* Lemma 3.3: reconfiguration cost <= 4 * numEpochs * Δ.
* Lemma 3.4: ineligible drop cost <= numEpochs * Δ.
* Lemma 3.10 / Corollary 3.1: the eligible-drop containment chain.
"""


def bench_lemma_inequalities(run_and_report):
    report = run_and_report("EXP-L", seeds=(0, 1, 2, 3), horizon=64)
    assert report.summary["all_inequalities_hold"]
