"""EXP-U bench (extension): the [14] track — uniform delay bounds with
variable drop costs, built on the file-caching substrate.

Claims checked:
* LRU's miss ratio on the Sleator–Tarjan cyclic adversary grows with the
  cache size k (the classic ratio-k lower bound in [15]);
* on a decoy flood, the cost-aware greedy beats the cost-blind one;
* on a rotating mix, adaptive policies beat the static partition.
"""


def bench_uniform_delay_extension(run_and_report):
    report = run_and_report(
        "EXP-U",
        cache_sizes=(2, 4, 8),
        cyclic_rounds=200,
        horizon=256,
        seeds=(0, 1),
    )
    assert report.summary["lru_ratio_grows"]
    assert report.summary["weighted_beats_unweighted_on_decoy"]
    assert report.summary["adaptive_beats_static_on_rotation"]
    caching = [r for r in report.rows if r["study"] == "caching"]
    # LRU misses everything on the cyclic adversary.
    assert all(r["lru_misses"] == 200 for r in caching)
