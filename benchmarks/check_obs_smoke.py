"""CI smoke for the observability stack: monitors, bit-identity, diff.

Three promises, each checked end to end on a small EXP-S cell:

1. **Monitors hold.**  A seeded ``random_rate_limited`` run with every
   invariant monitor attached (epoch structure, credit budgets, drop
   containment, competitive ratio) finishes with zero violations — the
   online reconstructions agree with the paper's lemmas on a real run.
2. **Monitors are invisible.**  The monitored run's CostBreakdown is
   bit-identical to an unobserved run of the same instance, on both the
   sparse and dense batched cores.
3. **Diffing works.**  ``repro obs monitor --out`` twice with the same
   seed then ``repro obs diff`` reports *identical* (exit 0); perturbing
   Δ yields a divergence with a non-empty cost attribution (exit 1).

Usage::

    PYTHONPATH=src python benchmarks/check_obs_smoke.py
"""

from __future__ import annotations

import contextlib
import io
import sys
import tempfile
from pathlib import Path

#: Small EXP-S-style cell: big enough to exercise wraps, drops, and
#: several super-epochs; small enough to stay under a second.
COLORS, DELTA, HORIZON, RESOURCES, SEED, LOAD = 4, 2, 256, 8, 0, 0.6


def _fingerprint(result):
    cost = result.cost
    return (
        tuple(sorted(cost.summary().items())),
        tuple(sorted(cost.reconfigs_by_color.items())),
        tuple(sorted(cost.executions_by_color.items())),
        tuple(sorted(cost.drops_by_color.items())),
    )


def _check_monitors() -> int:
    from repro.algorithms.dlru_edf import DeltaLRUEDF
    from repro.obs import MetricsRegistry, TeeSink, Tracer, standard_monitors
    from repro.simulation.engine import simulate
    from repro.workloads.random_batched import random_rate_limited

    instance = random_rate_limited(
        COLORS, DELTA, HORIZON, seed=SEED, load=LOAD, bound_choices=(2, 4, 8)
    )
    failures = 0
    for sparse in (True, False):
        label = "sparse" if sparse else "dense"
        baseline = simulate(
            instance, DeltaLRUEDF(), RESOURCES, record="costs", sparse=sparse
        )
        registry = MetricsRegistry()
        monitors = standard_monitors(
            instance, policy="collect", registry=registry
        )
        tracer = Tracer(TeeSink(*monitors))
        monitored = simulate(
            instance,
            DeltaLRUEDF(),
            RESOURCES,
            record="costs",
            sparse=sparse,
            tracer=tracer,
            registry=registry,
        )
        tracer.close()
        for monitor in monitors:
            for violation in monitor.violations:
                failures += 1
                print(f"  VIOLATION [{label}] {violation}")
        if _fingerprint(baseline) != _fingerprint(monitored):
            failures += 1
            print(
                f"  FATAL [{label}]: monitored cost "
                f"{_fingerprint(monitored)} != baseline "
                f"{_fingerprint(baseline)}"
            )
        else:
            print(
                f"  {label}: {len(monitors)} monitors clean, cost "
                f"{monitored.total_cost} bit-identical"
            )
    return failures


def _cli(argv: list[str]) -> tuple[int, str]:
    from repro.cli import main

    out = io.StringIO()
    with contextlib.redirect_stdout(out):
        code = main(argv)
    return code, out.getvalue()


def _check_diff(tmp: Path) -> int:
    base = [
        "obs",
        "monitor",
        "--colors",
        str(COLORS),
        "--horizon",
        str(HORIZON),
        "--resources",
        str(RESOURCES),
        "--seed",
        str(SEED),
        "--load",
        str(LOAD),
    ]
    failures = 0
    a, b, c = (str(tmp / name) for name in ("a.jsonl", "b.jsonl", "c.jsonl"))
    for out, delta in ((a, DELTA), (b, DELTA), (c, 2 * DELTA)):
        code, _ = _cli(base + ["--delta", str(delta), "--out", out])
        if code != 0:
            failures += 1
            print(f"  FATAL: obs monitor (delta={delta}) exited {code}")

    code, text = _cli(["obs", "diff", a, b])
    if code != 0 or "identical" not in text:
        failures += 1
        print(f"  FATAL: same-seed diff not identical (exit {code}):\n{text}")
    else:
        print(f"  same-seed diff: {text.strip().splitlines()[0]}")

    code, text = _cli(["obs", "diff", a, c])
    if code != 1 or "attribution" not in text:
        failures += 1
        print(
            "  FATAL: perturbed-delta diff should diverge with a cost "
            f"attribution (exit {code}):\n{text}"
        )
    else:
        print("  perturbed diff: divergence + attribution reported")
    return failures


def main() -> int:
    print("obs smoke: monitors + bit-identity")
    failures = _check_monitors()
    print("obs smoke: trace diff round trip")
    with tempfile.TemporaryDirectory() as tmp:
        failures += _check_diff(Path(tmp))
    if failures:
        print(f"FAIL: {failures} observability smoke check(s) failed")
        return 1
    print("pass: monitors clean, costs bit-identical, diff attribution works")
    return 0


if __name__ == "__main__":
    sys.exit(main())
