"""EXP-SEN bench: the Δ × load sensitivity grid.

Shape claim (Theorem 1): the measured ratio is bounded by a constant
independent of Δ and load; the grid should be flat to within the
lower-bound estimator's slack.
"""


def bench_sensitivity_grid(run_and_report):
    report = run_and_report(
        "EXP-SEN",
        delta_values=(1, 2, 4, 8),
        loads=(0.2, 0.4, 0.6, 0.8, 1.0),
        seeds=(0, 1, 2),
        horizon=96,
    )
    assert report.summary["max_cell"] < 10
    # Heavier load tightens the drop-side lower bound, so ratios should
    # not explode toward load 1.0.
    heavy = [r["geomean_ratio"] for r in report.rows if r["load"] >= 0.8]
    assert max(heavy) < 6
