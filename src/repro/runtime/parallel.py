"""Process-pool execution of independent simulation tasks.

The experiment layer is embarrassingly parallel — a sweep is a grid of
independent ``(instance, scheme)`` cells, an adversary search is a set of
independent restarts — but the seed ran every cell serially.
:class:`ParallelRunner` dispatches such task lists over a
``concurrent.futures.ProcessPoolExecutor`` with three properties the
callers rely on:

* **Determinism.**  Results are returned in task order, tasks never share
  random state (see :mod:`repro.runtime.seeding`), and the task functions
  are required to be pure, so parallel output is identical to a serial
  run of the same list.
* **Chunked dispatch.**  Tasks are submitted in contiguous chunks to
  amortize pickling/IPC overhead over many small cells (one future per
  cell would drown a 5 ms simulation in transport costs).
* **Serial fallback.**  On a single-core box, for tiny task lists, under
  ``force_serial``, or when the platform refuses to spawn processes
  (sandboxes, daemonic workers), the runner degrades to an in-process
  loop — same results, no hard dependency on multiprocessing working.
"""

from __future__ import annotations

import os
import pickle
from concurrent.futures import ProcessPoolExecutor, as_completed
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Any, Callable, Sequence, TypeVar

T = TypeVar("T")
R = TypeVar("R")

#: Below this many tasks the pool startup cost dominates; run serially.
_MIN_TASKS_FOR_POOL = 2


def _run_chunk(fn: Callable[[Any], Any], chunk: list[Any]) -> list[Any]:
    """Worker-side loop: apply ``fn`` to one contiguous chunk of tasks."""
    return [fn(task) for task in chunk]


@dataclass(frozen=True)
class ParallelRunner:
    """Deterministic map over independent tasks, process-parallel when it helps.

    Parameters
    ----------
    max_workers:
        Worker process count; ``None`` uses ``os.cpu_count()``.  A value
        of 1 (or a 1-core machine with ``max_workers=None``) short-circuits
        to the serial path.
    chunk_size:
        Tasks per submitted future; ``None`` picks roughly four chunks
        per worker so stragglers rebalance without per-task IPC.
    force_serial:
        Run everything in-process.  Useful for debugging and as the
        configuration-level kill switch (``REPRO_PARALLEL=0``).

    ``fn`` and the tasks must be picklable (module-level functions, plain
    data) and ``fn`` must be pure: the runner re-executes tasks serially
    if the pool dies, and results must not depend on worker identity.
    """

    max_workers: int | None = None
    chunk_size: int | None = None
    force_serial: bool = False

    @classmethod
    def from_env(cls, default_workers: int | None = None) -> "ParallelRunner":
        """Build a runner honoring the ``REPRO_PARALLEL`` environment knob.

        ``REPRO_PARALLEL=0`` forces serial; any other integer sets the
        worker count; unset falls back to ``default_workers``.
        """
        raw = os.environ.get("REPRO_PARALLEL", "").strip()
        if raw == "0":
            return cls(force_serial=True)
        if raw:
            try:
                workers = int(raw)
            except ValueError:
                raise ValueError(
                    f"REPRO_PARALLEL must be an integer, got {raw!r}"
                ) from None
            return cls(max_workers=max(1, workers))
        return cls(max_workers=default_workers)

    def resolved_workers(self) -> int:
        """Worker count after applying defaults and the serial switches."""
        if self.force_serial:
            return 1
        if self.max_workers is not None:
            return max(1, self.max_workers)
        return max(1, os.cpu_count() or 1)

    def _chunked(self, tasks: list[Any], workers: int) -> list[list[Any]]:
        if self.chunk_size is not None:
            size = max(1, self.chunk_size)
        else:
            size = max(1, len(tasks) // (workers * 4) or 1)
        return [tasks[i : i + size] for i in range(0, len(tasks), size)]

    def map(
        self,
        fn: Callable[[T], R],
        tasks: Sequence[T],
        *,
        progress: Callable[[Sequence[R]], None] | None = None,
    ) -> list[R]:
        """Apply ``fn`` to every task, returning results in task order.

        ``progress``, when given, is called in the parent process with
        each chunk's result list as that chunk *completes* (completion
        order, not task order) — the hook live telemetry consumers
        (``run_matrix``'s ``publish=``) use to surface partial results
        while the grid is still running.  Every result is reported to
        ``progress`` exactly once, including across the serial fallback.
        """
        task_list = list(tasks)
        workers = min(self.resolved_workers(), len(task_list))
        if workers <= 1 or len(task_list) < _MIN_TASKS_FOR_POOL:
            results: list[R] = []
            for task in task_list:
                result = fn(task)
                if progress is not None:
                    progress([result])
                results.append(result)
            return results
        chunks = self._chunked(task_list, workers)
        reported: set[int] = set()
        try:
            with ProcessPoolExecutor(max_workers=workers) as pool:
                futures = [pool.submit(_run_chunk, fn, chunk) for chunk in chunks]
                if progress is not None:
                    for future in as_completed(futures):
                        index = futures.index(future)
                        outputs = future.result()
                        # Mark before invoking: if ``progress`` itself
                        # raises (e.g. OSError from a telemetry socket)
                        # the fallback must not hand it the chunk again.
                        reported.add(index)
                        progress(outputs)
                results = []
                for future in futures:
                    results.extend(future.result())
                return results
        except (
            BrokenProcessPool,
            pickle.PicklingError,
            # Local functions fail pickling with AttributeError/TypeError
            # rather than PicklingError.
            AttributeError,
            TypeError,
            PermissionError,
            OSError,
        ):
            # Sandboxed/daemonic environments cannot always fork; tasks
            # are pure, so a full serial re-run is safe and identical (a
            # genuine task failure re-raises the same error serially).
            # Chunks whose completion already reached ``progress`` are
            # not re-reported — merge-style consumers must see each
            # result once.
            results = []
            for index, chunk in enumerate(chunks):
                outputs = [fn(task) for task in chunk]
                if progress is not None and index not in reported:
                    progress(outputs)
                results.extend(outputs)
            return results

    def map_traced(
        self,
        fn: Callable[[T], tuple[R, Sequence[Any]]],
        tasks: Sequence[T],
        *,
        tracer: Any = None,
        tags: Sequence[str] | None = None,
    ) -> list[R]:
        """:meth:`map` for task functions that also return trace records.

        ``fn`` must return ``(result, records)`` where ``records`` is a
        list of :class:`repro.obs.tracing.TraceRecord` collected in the
        worker (e.g. via a local ``MemorySink``).  Records are replayed
        into ``tracer`` in task order — so parallel and serial runs
        produce the same trace — tagged with ``tags[i]`` (default
        ``"task-{i}"``) identifying the worker task (seed/restart id)
        that produced them.  With ``tracer=None`` (or a disabled tracer)
        the records are discarded and only the results are returned.
        """
        outputs = self.map(fn, tasks)
        active = (
            tracer
            if tracer is not None and getattr(tracer, "enabled", True)
            else None
        )
        results: list[R] = []
        for index, (result, records) in enumerate(outputs):
            if active is not None and records:
                tag = tags[index] if tags is not None else f"task-{index}"
                active.replay(records, worker=tag)
            results.append(result)
        return results
