"""Runtime layer: parallel execution, seed derivation, perf telemetry.

Everything above the simulation engines — sweeps, adversary searches,
benchmark grids — is a list of independent deterministic tasks.  This
package owns how those lists run fast without changing what they
compute:

* :class:`~repro.runtime.parallel.ParallelRunner` — process-pool map
  with chunked dispatch and automatic serial fallback; parallel results
  are identical to serial ones by construction.
* :func:`~repro.runtime.seeding.derive_seed` — hash-based per-task seed
  derivation so workers never share random state.
* :mod:`~repro.runtime.telemetry` — machine-readable benchmark records
  (``BENCH_engine.json``) so the perf trajectory accumulates across PRs.

Future scaling work (sharding, async backends, distributed sweeps)
plugs in here rather than into the engines.
"""

from repro.runtime.parallel import ParallelRunner
from repro.runtime.seeding import derive_seed, spawn_seeds
from repro.runtime.telemetry import (
    BENCH_SCHEMA,
    bench_payload,
    machine_context,
    read_bench_json,
    throughput_regressions,
    write_bench_json,
)

__all__ = [
    "ParallelRunner",
    "derive_seed",
    "spawn_seeds",
    "BENCH_SCHEMA",
    "bench_payload",
    "machine_context",
    "read_bench_json",
    "throughput_regressions",
    "write_bench_json",
]
