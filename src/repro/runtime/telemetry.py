"""Performance telemetry: machine-readable benchmark records.

The EXP-S throughput experiment previously printed a table and forgot
the numbers; this module gives the perf trajectory a durable home.
:func:`write_bench_json` renders engine-scaling rows (wall-clock,
rounds/sec, record mode, engine core, active-round fraction) plus enough
machine context to interpret them into ``BENCH_engine.json``, which
benchmark runs commit so regressions are visible across PRs.
:func:`throughput_regressions` diffs a fresh run against that committed
baseline — the CI regression guard is built on it.
"""

from __future__ import annotations

import json
import os
import platform
import sys
from pathlib import Path
from typing import Any, Mapping, Sequence

#: Schema tag so future emitters can evolve the layout detectably.
#: v2 added the engine-core dimension ("engine", "active_round_fraction"
#: on throughput rows) plus offline-search and adversary-cache rows.
BENCH_SCHEMA = "repro-bench-engine/v2"

#: Fields identifying one throughput measurement across runs.
THROUGHPUT_KEY = ("resources", "colors", "horizon", "record", "engine")


def machine_context() -> dict[str, Any]:
    """Host facts needed to compare benchmark numbers across runs."""
    return {
        "python": sys.version.split()[0],
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "cpu_count": os.cpu_count() or 1,
    }


def bench_payload(
    rows: Sequence[Mapping[str, Any]],
    *,
    summary: Mapping[str, Any] | None = None,
    context: Mapping[str, Any] | None = None,
) -> dict[str, Any]:
    """Assemble the BENCH json document from benchmark rows."""
    return {
        "schema": BENCH_SCHEMA,
        "machine": dict(context) if context is not None else machine_context(),
        "summary": dict(summary or {}),
        "rows": [dict(row) for row in rows],
    }


def write_bench_json(
    path: str | Path,
    rows: Sequence[Mapping[str, Any]],
    *,
    summary: Mapping[str, Any] | None = None,
    context: Mapping[str, Any] | None = None,
) -> dict[str, Any]:
    """Write the benchmark document to ``path`` and return it."""
    payload = bench_payload(rows, summary=summary, context=context)
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return payload


def read_bench_json(path: str | Path) -> dict[str, Any]:
    """Load a previously written benchmark document."""
    return json.loads(Path(path).read_text())


def _throughput_index(
    rows: Sequence[Mapping[str, Any]],
) -> dict[tuple, Mapping[str, Any]]:
    """Index throughput rows (those carrying rounds/sec) by identity key."""
    indexed: dict[tuple, Mapping[str, Any]] = {}
    for row in rows:
        if "rounds_per_second" not in row:
            continue
        key = tuple(row.get(field) for field in THROUGHPUT_KEY)
        indexed[key] = row
    return indexed


def throughput_regressions(
    baseline_rows: Sequence[Mapping[str, Any]],
    fresh_rows: Sequence[Mapping[str, Any]],
    *,
    tolerance: float = 0.30,
) -> list[dict[str, Any]]:
    """Rows whose fresh rounds/sec dropped more than ``tolerance``.

    Rows are matched by :data:`THROUGHPUT_KEY`; cells present on only
    one side are ignored (grids may grow or shrink between runs).  Each
    returned record carries the matching key, both throughputs, and the
    fresh/baseline ratio, so callers can render an actionable failure.
    """
    if not 0.0 <= tolerance < 1.0:
        raise ValueError("tolerance must lie in [0, 1)")
    baseline_index = _throughput_index(baseline_rows)
    regressions: list[dict[str, Any]] = []
    for key, fresh in _throughput_index(fresh_rows).items():
        baseline = baseline_index.get(key)
        if baseline is None:
            continue
        base_rps = float(baseline["rounds_per_second"])
        fresh_rps = float(fresh["rounds_per_second"])
        if base_rps <= 0:
            continue
        ratio = fresh_rps / base_rps
        if ratio < 1.0 - tolerance:
            regressions.append(
                {
                    "key": dict(zip(THROUGHPUT_KEY, key)),
                    "baseline_rounds_per_second": base_rps,
                    "fresh_rounds_per_second": fresh_rps,
                    "ratio": ratio,
                }
            )
    return regressions
