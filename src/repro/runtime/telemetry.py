"""Performance telemetry: machine-readable benchmark records.

The EXP-S throughput experiment previously printed a table and forgot
the numbers; this module gives the perf trajectory a durable home.
:func:`write_bench_json` renders engine-scaling rows (wall-clock,
rounds/sec, record mode, engine core, active-round fraction) plus enough
machine context to interpret them into ``BENCH_engine.json``, which
benchmark runs commit so regressions are visible across PRs.
:func:`throughput_regressions` diffs a fresh run against that committed
baseline — the CI regression guard is built on it.
"""

from __future__ import annotations

import json
import os
import platform
import sys
from pathlib import Path
from typing import Any, Mapping, Sequence

#: Schema tag so future emitters can evolve the layout detectably.
#: v2 added the engine-core dimension ("engine", "active_round_fraction"
#: on throughput rows) plus offline-search and adversary-cache rows.
#: v3 adds the optional top-level "metrics" block (a
#: :meth:`repro.obs.metrics.MetricsRegistry.snapshot` payload) and typed
#: diff entries from :func:`throughput_regressions` — each entry carries
#: a "kind" ("regression" or "missing_baseline") instead of silently
#: skipping baseline rows without a throughput figure.
BENCH_SCHEMA = "repro-bench-engine/v3"

#: Fields identifying one throughput measurement across runs.
THROUGHPUT_KEY = ("resources", "colors", "horizon", "record", "engine")


def machine_context() -> dict[str, Any]:
    """Host facts needed to compare benchmark numbers across runs."""
    return {
        "python": sys.version.split()[0],
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "cpu_count": os.cpu_count() or 1,
    }


def bench_payload(
    rows: Sequence[Mapping[str, Any]],
    *,
    summary: Mapping[str, Any] | None = None,
    context: Mapping[str, Any] | None = None,
    metrics: Mapping[str, Any] | None = None,
) -> dict[str, Any]:
    """Assemble the BENCH json document from benchmark rows.

    ``metrics`` (schema v3) is an optional
    :meth:`repro.obs.metrics.MetricsRegistry.snapshot` payload recorded
    alongside the rows — counters/histograms from the instrumented run
    that produced them.
    """
    payload = {
        "schema": BENCH_SCHEMA,
        "machine": dict(context) if context is not None else machine_context(),
        "summary": dict(summary or {}),
        "rows": [dict(row) for row in rows],
    }
    if metrics is not None:
        payload["metrics"] = dict(metrics)
    return payload


def write_bench_json(
    path: str | Path,
    rows: Sequence[Mapping[str, Any]],
    *,
    summary: Mapping[str, Any] | None = None,
    context: Mapping[str, Any] | None = None,
    metrics: Mapping[str, Any] | None = None,
) -> dict[str, Any]:
    """Write the benchmark document to ``path`` and return it."""
    payload = bench_payload(rows, summary=summary, context=context, metrics=metrics)
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return payload


def read_bench_json(path: str | Path) -> dict[str, Any]:
    """Load a previously written benchmark document."""
    return json.loads(Path(path).read_text())


def _throughput_index(
    rows: Sequence[Mapping[str, Any]],
    *,
    require_rps: bool = True,
    source: str = "rows",
) -> dict[tuple, Mapping[str, Any]]:
    """Index throughput rows by identity key.

    With ``require_rps`` (the default) only rows carrying a measured
    ``rounds_per_second`` qualify.  Baselines are indexed with
    ``require_rps=False`` so that throughput-shaped rows (all
    :data:`THROUGHPUT_KEY` fields present) missing the measurement are
    still matchable — and reportable as ``missing_baseline`` — instead
    of silently invisible.

    Two rows with the same identity key raise :class:`ValueError` rather
    than last-write-wins: a baseline file with duplicate cells (e.g. a
    bad merge of two regenerations) would otherwise silently guard
    against whichever copy happened to come last.
    """
    indexed: dict[tuple, Mapping[str, Any]] = {}
    for row in rows:
        if "rounds_per_second" not in row and (
            require_rps or not all(field in row for field in THROUGHPUT_KEY)
        ):
            continue
        key = tuple(row.get(field) for field in THROUGHPUT_KEY)
        if key in indexed:
            raise ValueError(
                f"duplicate throughput cell in {source}: "
                f"{dict(zip(THROUGHPUT_KEY, key))}"
            )
        indexed[key] = row
    return indexed


def throughput_regressions(
    baseline_rows: Sequence[Mapping[str, Any]],
    fresh_rows: Sequence[Mapping[str, Any]],
    *,
    tolerance: float = 0.30,
) -> list[dict[str, Any]]:
    """Rows whose fresh rounds/sec dropped more than ``tolerance``.

    Rows are matched by :data:`THROUGHPUT_KEY`; baseline cells with no
    fresh counterpart are ignored (grids may shrink between runs).  Each
    returned record carries ``kind="regression"``, the matching key,
    both throughputs, and the fresh/baseline ratio, so callers can
    render an actionable failure.

    A fresh cell with no usable baseline measurement — either the
    matching baseline row lacks ``rounds_per_second`` (a truncated or
    hand-edited baseline) or no baseline row exists at all (a grid that
    just grew) — produces a ``kind="missing_baseline"`` entry instead of
    being silently skipped: a corrupt baseline must not read as "no
    regressions", and new cells should visibly enter the baseline via a
    regeneration rather than float unguarded.  One entry is emitted per
    unmatched fresh cell — when a whole dimension grows (e.g. a new
    engine backend joins the grid), every new cell is listed, not just
    the first one encountered.

    Duplicate identity keys on either side raise :class:`ValueError`
    (see :func:`_throughput_index`).
    """
    if not 0.0 <= tolerance < 1.0:
        raise ValueError("tolerance must lie in [0, 1)")
    baseline_index = _throughput_index(
        baseline_rows, require_rps=False, source="baseline rows"
    )
    regressions: list[dict[str, Any]] = []
    for key, fresh in _throughput_index(
        fresh_rows, source="fresh rows"
    ).items():
        baseline = baseline_index.get(key)
        fresh_rps = float(fresh["rounds_per_second"])
        if baseline is None or "rounds_per_second" not in baseline:
            regressions.append(
                {
                    "kind": "missing_baseline",
                    "key": dict(zip(THROUGHPUT_KEY, key)),
                    "fresh_rounds_per_second": fresh_rps,
                }
            )
            continue
        base_rps = float(baseline["rounds_per_second"])
        if base_rps <= 0:
            continue
        ratio = fresh_rps / base_rps
        if ratio < 1.0 - tolerance:
            regressions.append(
                {
                    "kind": "regression",
                    "key": dict(zip(THROUGHPUT_KEY, key)),
                    "baseline_rounds_per_second": base_rps,
                    "fresh_rounds_per_second": fresh_rps,
                    "ratio": ratio,
                }
            )
    return regressions
