"""Performance telemetry: machine-readable benchmark records.

The EXP-S throughput experiment previously printed a table and forgot
the numbers; this module gives the perf trajectory a durable home.
:func:`write_bench_json` renders engine-scaling rows (wall-clock,
rounds/sec, record mode, engine core, active-round fraction) plus enough
machine context to interpret them into ``BENCH_engine.json``, which
benchmark runs commit so regressions are visible across PRs.
:func:`throughput_regressions` diffs a fresh run against that committed
baseline — the CI regression guard is built on it.
"""

from __future__ import annotations

import json
import os
import platform
import sys
from pathlib import Path
from typing import Any, Mapping, Sequence

#: Schema tag so future emitters can evolve the layout detectably.
#: v2 added the engine-core dimension ("engine", "active_round_fraction"
#: on throughput rows) plus offline-search and adversary-cache rows.
#: v3 adds the optional top-level "metrics" block (a
#: :meth:`repro.obs.metrics.MetricsRegistry.snapshot` payload) and typed
#: diff entries from :func:`throughput_regressions` — each entry carries
#: a "kind" ("regression" or "missing_baseline") instead of silently
#: skipping baseline rows without a throughput figure.
BENCH_SCHEMA = "repro-bench-engine/v3"

#: Schema of ``BENCH_offline.json`` — offline-optimum solver cells
#: (seed x horizon x method -> nodes expanded, wall clock, cost) plus a
#: horizon-reach summary.  Separate from :data:`BENCH_SCHEMA` because
#: the rows carry solver identities, not engine throughput.
OFFLINE_BENCH_SCHEMA = "repro-bench-offline/v1"

#: Fields identifying one throughput measurement across runs.
THROUGHPUT_KEY = ("resources", "colors", "horizon", "record", "engine")

#: Fields identifying one offline-solver measurement across runs.
OFFLINE_KEY = ("seed", "horizon", "method")


def machine_context() -> dict[str, Any]:
    """Host facts needed to compare benchmark numbers across runs."""
    return {
        "python": sys.version.split()[0],
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "cpu_count": os.cpu_count() or 1,
    }


def bench_payload(
    rows: Sequence[Mapping[str, Any]],
    *,
    summary: Mapping[str, Any] | None = None,
    context: Mapping[str, Any] | None = None,
    metrics: Mapping[str, Any] | None = None,
    schema: str = BENCH_SCHEMA,
) -> dict[str, Any]:
    """Assemble the BENCH json document from benchmark rows.

    ``metrics`` (schema v3) is an optional
    :meth:`repro.obs.metrics.MetricsRegistry.snapshot` payload recorded
    alongside the rows — counters/histograms from the instrumented run
    that produced them.  ``schema`` selects the document family
    (:data:`BENCH_SCHEMA` for engine throughput,
    :data:`OFFLINE_BENCH_SCHEMA` for offline-solver cells).
    """
    payload = {
        "schema": schema,
        "machine": dict(context) if context is not None else machine_context(),
        "summary": dict(summary or {}),
        "rows": [dict(row) for row in rows],
    }
    if metrics is not None:
        payload["metrics"] = dict(metrics)
    return payload


def write_bench_json(
    path: str | Path,
    rows: Sequence[Mapping[str, Any]],
    *,
    summary: Mapping[str, Any] | None = None,
    context: Mapping[str, Any] | None = None,
    metrics: Mapping[str, Any] | None = None,
    schema: str = BENCH_SCHEMA,
) -> dict[str, Any]:
    """Write the benchmark document to ``path`` and return it."""
    payload = bench_payload(
        rows, summary=summary, context=context, metrics=metrics, schema=schema
    )
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return payload


def read_bench_json(path: str | Path) -> dict[str, Any]:
    """Load a previously written benchmark document."""
    return json.loads(Path(path).read_text())


def _throughput_index(
    rows: Sequence[Mapping[str, Any]],
    *,
    require_rps: bool = True,
    source: str = "rows",
) -> dict[tuple, Mapping[str, Any]]:
    """Index throughput rows by identity key.

    With ``require_rps`` (the default) only rows carrying a measured
    ``rounds_per_second`` qualify.  Baselines are indexed with
    ``require_rps=False`` so that throughput-shaped rows (all
    :data:`THROUGHPUT_KEY` fields present) missing the measurement are
    still matchable — and reportable as ``missing_baseline`` — instead
    of silently invisible.

    Two rows with the same identity key raise :class:`ValueError` rather
    than last-write-wins: a baseline file with duplicate cells (e.g. a
    bad merge of two regenerations) would otherwise silently guard
    against whichever copy happened to come last.
    """
    indexed: dict[tuple, Mapping[str, Any]] = {}
    for row in rows:
        if "rounds_per_second" not in row and (
            require_rps or not all(field in row for field in THROUGHPUT_KEY)
        ):
            continue
        key = tuple(row.get(field) for field in THROUGHPUT_KEY)
        if key in indexed:
            raise ValueError(
                f"duplicate throughput cell in {source}: "
                f"{dict(zip(THROUGHPUT_KEY, key))}"
            )
        indexed[key] = row
    return indexed


def throughput_regressions(
    baseline_rows: Sequence[Mapping[str, Any]],
    fresh_rows: Sequence[Mapping[str, Any]],
    *,
    tolerance: float = 0.30,
) -> list[dict[str, Any]]:
    """Rows whose fresh rounds/sec dropped more than ``tolerance``.

    Rows are matched by :data:`THROUGHPUT_KEY`; baseline cells with no
    fresh counterpart are ignored (grids may shrink between runs).  Each
    returned record carries ``kind="regression"``, the matching key,
    both throughputs, and the fresh/baseline ratio, so callers can
    render an actionable failure.

    A fresh cell with no usable baseline measurement — either the
    matching baseline row lacks ``rounds_per_second`` (a truncated or
    hand-edited baseline) or no baseline row exists at all (a grid that
    just grew) — produces a ``kind="missing_baseline"`` entry instead of
    being silently skipped: a corrupt baseline must not read as "no
    regressions", and new cells should visibly enter the baseline via a
    regeneration rather than float unguarded.  One entry is emitted per
    unmatched fresh cell — when a whole dimension grows (e.g. a new
    engine backend joins the grid), every new cell is listed, not just
    the first one encountered.

    Duplicate identity keys on either side raise :class:`ValueError`
    (see :func:`_throughput_index`).
    """
    if not 0.0 <= tolerance < 1.0:
        raise ValueError("tolerance must lie in [0, 1)")
    baseline_index = _throughput_index(
        baseline_rows, require_rps=False, source="baseline rows"
    )
    regressions: list[dict[str, Any]] = []
    for key, fresh in _throughput_index(
        fresh_rows, source="fresh rows"
    ).items():
        baseline = baseline_index.get(key)
        fresh_rps = float(fresh["rounds_per_second"])
        if baseline is None or "rounds_per_second" not in baseline:
            regressions.append(
                {
                    "kind": "missing_baseline",
                    "key": dict(zip(THROUGHPUT_KEY, key)),
                    "fresh_rounds_per_second": fresh_rps,
                }
            )
            continue
        base_rps = float(baseline["rounds_per_second"])
        if base_rps <= 0:
            continue
        ratio = fresh_rps / base_rps
        if ratio < 1.0 - tolerance:
            regressions.append(
                {
                    "kind": "regression",
                    "key": dict(zip(THROUGHPUT_KEY, key)),
                    "baseline_rounds_per_second": base_rps,
                    "fresh_rounds_per_second": fresh_rps,
                    "ratio": ratio,
                }
            )
    return regressions


def offline_regressions(
    baseline_rows: Sequence[Mapping[str, Any]],
    fresh_rows: Sequence[Mapping[str, Any]],
    *,
    tolerance: float = 0.30,
) -> list[dict[str, Any]]:
    """Offline-solver cells whose nodes or wall clock grew past tolerance.

    Rows are matched by :data:`OFFLINE_KEY`.  Two metrics are guarded per
    matched cell, each failing when the fresh value exceeds the baseline
    by more than ``tolerance``: ``nodes`` (deterministic — any growth is
    an algorithmic change, so this rarely fires spuriously) and
    ``seconds`` (wall clock; machine-sensitive, hence the wide default
    tolerance and the machine context printed by the CI guard).  Fresh
    cells without a baseline counterpart are reported as
    ``missing_baseline`` so grid growth enters the baseline visibly;
    baseline cells the fresh run skipped are ignored (smoke runs measure
    a subset).  A fresh/baseline cost mismatch on a matched cell is
    reported as ``kind="cost_mismatch"`` — both solvers are exact, so
    that is a correctness bug, not a perf regression.
    """
    if not 0.0 <= tolerance < 1.0:
        raise ValueError("tolerance must lie in [0, 1)")
    indexed: dict[tuple, Mapping[str, Any]] = {}
    for row in baseline_rows:
        if not all(field in row for field in OFFLINE_KEY):
            continue
        key = tuple(row[field] for field in OFFLINE_KEY)
        if key in indexed:
            raise ValueError(
                f"duplicate offline cell in baseline: "
                f"{dict(zip(OFFLINE_KEY, key))}"
            )
        indexed[key] = row
    regressions: list[dict[str, Any]] = []
    seen: set[tuple] = set()
    for fresh in fresh_rows:
        if not all(field in fresh for field in OFFLINE_KEY):
            continue
        key = tuple(fresh[field] for field in OFFLINE_KEY)
        if key in seen:
            raise ValueError(
                f"duplicate offline cell in fresh rows: "
                f"{dict(zip(OFFLINE_KEY, key))}"
            )
        seen.add(key)
        baseline = indexed.get(key)
        if baseline is None:
            regressions.append(
                {
                    "kind": "missing_baseline",
                    "key": dict(zip(OFFLINE_KEY, key)),
                    "fresh_nodes": fresh.get("nodes"),
                }
            )
            continue
        if "cost" in baseline and "cost" in fresh and baseline["cost"] != fresh["cost"]:
            regressions.append(
                {
                    "kind": "cost_mismatch",
                    "key": dict(zip(OFFLINE_KEY, key)),
                    "baseline_cost": baseline["cost"],
                    "fresh_cost": fresh["cost"],
                }
            )
            continue
        for metric in ("nodes", "seconds"):
            base_value = float(baseline.get(metric, 0) or 0)
            fresh_value = float(fresh.get(metric, 0) or 0)
            if base_value <= 0:
                continue
            ratio = fresh_value / base_value
            if ratio > 1.0 + tolerance:
                regressions.append(
                    {
                        "kind": "regression",
                        "key": dict(zip(OFFLINE_KEY, key)),
                        "metric": metric,
                        "baseline": base_value,
                        "fresh": fresh_value,
                        "ratio": ratio,
                    }
                )
    return regressions
