"""Performance telemetry: machine-readable benchmark records.

The EXP-S throughput experiment previously printed a table and forgot
the numbers; this module gives the perf trajectory a durable home.
:func:`write_bench_json` renders engine-scaling rows (wall-clock,
rounds/sec, record mode) plus enough machine context to interpret them
into ``BENCH_engine.json``, which benchmark runs commit so regressions
are visible across PRs.
"""

from __future__ import annotations

import json
import os
import platform
import sys
from pathlib import Path
from typing import Any, Mapping, Sequence

#: Schema tag so future emitters can evolve the layout detectably.
BENCH_SCHEMA = "repro-bench-engine/v1"


def machine_context() -> dict[str, Any]:
    """Host facts needed to compare benchmark numbers across runs."""
    return {
        "python": sys.version.split()[0],
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "cpu_count": os.cpu_count() or 1,
    }


def bench_payload(
    rows: Sequence[Mapping[str, Any]],
    *,
    summary: Mapping[str, Any] | None = None,
    context: Mapping[str, Any] | None = None,
) -> dict[str, Any]:
    """Assemble the BENCH json document from benchmark rows."""
    return {
        "schema": BENCH_SCHEMA,
        "machine": dict(context) if context is not None else machine_context(),
        "summary": dict(summary or {}),
        "rows": [dict(row) for row in rows],
    }


def write_bench_json(
    path: str | Path,
    rows: Sequence[Mapping[str, Any]],
    *,
    summary: Mapping[str, Any] | None = None,
    context: Mapping[str, Any] | None = None,
) -> dict[str, Any]:
    """Write the benchmark document to ``path`` and return it."""
    payload = bench_payload(rows, summary=summary, context=context)
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return payload


def read_bench_json(path: str | Path) -> dict[str, Any]:
    """Load a previously written benchmark document."""
    return json.loads(Path(path).read_text())
