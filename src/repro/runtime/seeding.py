"""Deterministic seed derivation for parallel task fan-out.

Parallel sweeps must not share a ``numpy.random.Generator`` across
workers (the draw order would depend on scheduling), so every task gets
its own root seed derived from ``(root_seed, task key)`` by hashing.
SHA-256 is used instead of ``hash()`` because the latter is salted per
process (``PYTHONHASHSEED``) and would break cross-process determinism —
the exact failure mode the runner exists to avoid.
"""

from __future__ import annotations

import hashlib

#: numpy's ``default_rng`` accepts any nonnegative int; 63 bits keeps the
#: derived seed inside int64 range for logging/serialization friendliness.
_SEED_BITS = 63


def derive_seed(root_seed: int, *key: object) -> int:
    """Derive a stable per-task seed from a root seed and a task key.

    The key components are rendered with ``repr`` and separated by an
    unambiguous delimiter, so ``derive_seed(0, 1, 23)`` and
    ``derive_seed(0, 12, 3)`` differ.  The result is deterministic across
    processes, platforms, and Python invocations.
    """
    material = repr(int(root_seed)) + "".join(f"|{component!r}" for component in key)
    digest = hashlib.sha256(material.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") >> (64 - _SEED_BITS)


def spawn_seeds(root_seed: int, count: int, *key: object) -> list[int]:
    """``count`` distinct derived seeds under one root/key prefix."""
    if count < 0:
        raise ValueError("count must be nonnegative")
    return [derive_seed(root_seed, *key, index) for index in range(count)]
