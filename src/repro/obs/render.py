"""Render JSONL traces as round timelines and summary statistics.

Backs the ``repro trace`` and ``repro stats`` subcommands: both consume
the records of one engine run (written by
:class:`~repro.obs.tracing.JsonlSink`, read back with
:func:`~repro.obs.tracing.read_jsonl_trace`) and produce fixed-width
text — no plotting dependencies, diffable in a terminal.

The timeline renders one line per simulated round, leaf events inlined
in emission order, fast-forwarded stretches as explicit skip markers,
and after-the-fact ``epoch`` / ``super_epoch`` annotations attached to
the rounds they anchor on.

Also here: :func:`sparkline` / :func:`render_series`, the terminal view
of :mod:`repro.obs.timeseries` ring buffers — one unicode block-glyph
line per recorded metric series.
"""

from __future__ import annotations

import math
from typing import Iterable, Mapping, Sequence

from repro.obs.tracing import TraceRecord

#: Compact event glyphs for the timeline, keyed by record name.
_EVENT_LABELS = {
    "drop": lambda d: f"drop c{d.get('color')}x{d.get('count')}",
    "arrival": lambda d: f"arr c{d.get('color')}x{d.get('count')}",
    "wrap": lambda d: f"wrap c{d.get('color')}"
    + (f"x{d['count']}" if d.get("count", 1) != 1 else ""),
    "eligible": lambda d: f"+elig c{d.get('color')}",
    "ineligible": lambda d: f"-elig c{d.get('color')}",
    "reconfig": lambda d: f"reconfig c{d.get('color')}(+{d.get('resources')})",
    "cache_in": lambda d: f"in c{d.get('color')}",
    "cache_out": lambda d: f"out c{d.get('color')}",
    "execute": lambda d: f"exec c{d.get('color')}x{d.get('count')}",
    "cache_hit": lambda d: f"hit:{d.get('target', 'cache')}",
    "fast_forward": lambda d: (
        f">> fast-forward to {d.get('to_round')} ({d.get('rounds')} rounds)"
    ),
    "epoch": lambda d: (
        f"[epoch c{d.get('color')}#{d.get('index')} from {d.get('start')}"
        + ("" if d.get("complete") else " open")
        + "]"
    ),
    "super_epoch": lambda d: (
        f"[super-epoch #{d.get('index')} from {d.get('start')}"
        + ("" if d.get("complete") else " open")
        + "]"
    ),
}


def _label(record: TraceRecord) -> str | None:
    formatter = _EVENT_LABELS.get(record.name)
    if formatter is None:
        return None
    return formatter(record.data)


def render_trace_timeline(
    records: Sequence[TraceRecord], *, max_rounds: int | None = None
) -> str:
    """One line per simulated round, events inlined in emission order."""
    header: TraceRecord | None = None
    footer: TraceRecord | None = None
    # round index -> labels, in first-touch order (annotations land on
    # the round they anchor to even though they are emitted at the end).
    by_round: dict[int, list[str]] = {}
    simulated: list[int] = []
    for record in records:
        if record.name == "run":
            if record.kind == "span_start":
                header = record
            else:
                footer = record
            continue
        if record.name == "round":
            if record.kind == "span_start" and record.round_index is not None:
                simulated.append(record.round_index)
                by_round.setdefault(record.round_index, [])
            continue
        if record.name == "phase":
            continue
        label = _label(record)
        if label is None or record.round_index is None:
            continue
        by_round.setdefault(record.round_index, []).append(label)

    lines: list[str] = []
    if header is not None:
        d = header.data
        lines.append(
            f"run {d.get('algorithm')}  n={d.get('resources')} "
            f"speed={d.get('speed')} record={d.get('record')} "
            f"engine={d.get('engine')} horizon={d.get('horizon')}"
        )
    width = len(str(max(by_round, default=0)))
    shown = 0
    idle_streak = 0

    def flush_idle() -> None:
        nonlocal idle_streak
        if idle_streak:
            lines.append(f"{'':>{width + 6}}  ({idle_streak} idle rounds)")
            idle_streak = 0

    for round_index in sorted(by_round):
        labels = by_round[round_index]
        if not labels:
            idle_streak += 1
            continue
        flush_idle()
        if max_rounds is not None and shown >= max_rounds:
            remaining = sum(
                1 for k in by_round if k > round_index and by_round[k]
            )
            lines.append(f"... ({remaining + 1} more rounds with events)")
            break
        lines.append(f"round {round_index:>{width}}  " + " · ".join(labels))
        shown += 1
    else:
        flush_idle()
    if footer is not None:
        d = footer.data
        lines.append(
            f"total cost {d.get('total_cost')} "
            f"(reconfig {d.get('reconfig_cost')}, drops {d.get('drop_cost')}) "
            f"over {d.get('rounds_executed')} simulated rounds"
        )
    return "\n".join(lines) if lines else "(empty trace)"


def summarize_trace(records: Iterable[TraceRecord]) -> dict:
    """Aggregate counts from one run's records (``repro stats``)."""
    totals: dict[str, int] = {}
    drops_by_color: dict[int, int] = {}
    execs_by_color: dict[int, int] = {}
    workers: set[str] = set()
    rounds_simulated = 0
    rounds_fast_forwarded = 0
    run_info: dict = {}
    offline_info: dict = {}
    rds_pass_info: dict = {}
    for record in records:
        if record.worker is not None:
            workers.add(record.worker)
        if record.name == "run":
            run_info.update(record.data)
            continue
        if record.name == "offline_solve":
            offline_info.update(record.data)
            continue
        if record.name == "rds_pass":
            rds_pass_info.update(record.data)
            continue
        if record.name == "round":
            if record.kind == "span_start":
                rounds_simulated += 1
            continue
        if record.name == "phase":
            continue
        totals[record.name] = totals.get(record.name, 0) + 1
        data = record.data
        if record.name == "fast_forward":
            rounds_fast_forwarded += int(data.get("rounds", 0))
        elif record.name == "drop":
            color = data.get("color")
            if color is not None:
                drops_by_color[color] = drops_by_color.get(color, 0) + int(
                    data.get("count", 1)
                )
        elif record.name == "execute":
            color = data.get("color")
            if color is not None:
                execs_by_color[color] = execs_by_color.get(color, 0) + int(
                    data.get("count", 1)
                )
    return {
        "run": run_info,
        "rounds_simulated": rounds_simulated,
        "rounds_fast_forwarded": rounds_fast_forwarded,
        "events": totals,
        "drops_by_color": drops_by_color,
        "executions_by_color": execs_by_color,
        "workers": sorted(workers),
        "offline_solve": offline_info,
        "rds_pass": rds_pass_info,
    }


#: Eight-level block glyphs, lowest to highest.
_SPARK_GLYPHS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float], *, width: int = 48) -> str:
    """Render values as a unicode sparkline, at most ``width`` glyphs.

    Longer inputs are downsampled by chunk means (deterministic); a flat
    or single-point series renders at the lowest level.  Non-finite
    values clamp to the nearest level instead of raising.
    """
    if width < 1:
        raise ValueError("sparkline width must be at least 1")
    data = [float(value) for value in values]
    if not data:
        return ""
    if len(data) > width:
        chunks: list[float] = []
        for index in range(width):
            lo = index * len(data) // width
            hi = max(lo + 1, (index + 1) * len(data) // width)
            window = data[lo:hi]
            chunks.append(sum(window) / len(window))
        data = chunks
    finite = [value for value in data if math.isfinite(value)]
    low = min(finite) if finite else 0.0
    high = max(finite) if finite else 0.0
    span = high - low
    if span <= 0:
        return _SPARK_GLYPHS[0] * len(data)
    top = len(_SPARK_GLYPHS) - 1
    glyphs = []
    for value in data:
        if not math.isfinite(value):
            level = top if value > 0 else 0
        else:
            level = int((value - low) / span * top)
        glyphs.append(_SPARK_GLYPHS[max(0, min(top, level))])
    return "".join(glyphs)


def render_series(source, *, names: Sequence[str] | None = None, width: int = 48) -> str:
    """Fixed-width sparkline table of recorded metric series.

    ``source`` is a :class:`~repro.obs.timeseries.SeriesRecorder`, a
    recorder/JSONL snapshot dict (``{"schema": "repro-series/v1", ...}``),
    or a plain ``{name: Series}`` mapping.  ``names`` restricts (and
    orders) the rendered series; default is all, sorted.
    """
    from repro.obs.timeseries import (
        Series,
        SeriesRecorder,
        series_from_snapshot,
    )

    if isinstance(source, SeriesRecorder):
        table: dict[str, Series] = dict(source.series)
    elif isinstance(source, Mapping) and "series" in source:
        table = series_from_snapshot(source)
    elif isinstance(source, Mapping):
        table = {
            name: data if isinstance(data, Series) else Series.from_dict(data)
            for name, data in source.items()
        }
    else:
        raise TypeError(
            "render_series takes a SeriesRecorder, a series snapshot "
            f"dict, or a name->Series mapping, not {type(source).__name__}"
        )
    selected = list(names) if names is not None else sorted(table)
    missing = [name for name in selected if name not in table]
    if missing:
        raise KeyError(f"unknown series: {', '.join(missing)}")
    if not selected:
        return "(no series recorded)"
    pad = max(len(name) for name in selected)
    lines = []
    for name in selected:
        series = table[name]
        if not series.points:
            lines.append(f"{name.ljust(pad)}  (empty)")
            continue
        latest = series.points[-1]
        spark = sparkline(series.values(), width=width)
        span = f"[{series.points[0].start}..{latest.end}]"
        note = (
            f"  ({series.compactions} compactions)"
            if series.compactions
            else ""
        )
        lines.append(
            f"{name.ljust(pad)}  {spark}  last={latest.last:g} "
            f"{span}{note}"
        )
    return "\n".join(lines)


def render_trace_stats(records: Sequence[TraceRecord]) -> str:
    """Fixed-width statistics summary of one run's records."""
    if not records:
        return "(empty trace)"
    summary = summarize_trace(records)
    lines: list[str] = []
    run = summary["run"]
    if run:
        lines.append(
            f"run {run.get('algorithm')}  n={run.get('resources')} "
            f"speed={run.get('speed')} record={run.get('record')} "
            f"engine={run.get('engine')} horizon={run.get('horizon')}"
        )
        if "total_cost" in run:
            lines.append(
                f"cost {run['total_cost']} (reconfig {run.get('reconfig_cost')}, "
                f"drops {run.get('drop_cost')})"
            )
    lines.append(
        f"rounds: {summary['rounds_simulated']} simulated, "
        f"{summary['rounds_fast_forwarded']} fast-forwarded"
    )
    events = summary["events"]
    if events:
        lines.append("events")
        pad = max(len(name) for name in events)
        for name in sorted(events):
            lines.append(f"  {name.ljust(pad)}  {events[name]}")
    for title, key in (
        ("drops by color", "drops_by_color"),
        ("executions by color", "executions_by_color"),
    ):
        per_color = summary[key]
        if per_color:
            parts = [f"c{color}: {per_color[color]}" for color in sorted(per_color)]
            lines.append(f"{title}: " + "  ".join(parts))
    offline = summary["offline_solve"]
    if offline:
        lines.append(
            f"offline solve ({offline.get('method', '?')}): "
            f"cost {offline.get('cost')}  "
            f"nodes {offline.get('states_explored')}  "
            f"pruned {offline.get('candidates_pruned')}"
            + (
                f"  warm start {offline['warm_start_cost']}"
                if offline.get("warm_start_cost") is not None
                else ""
            )
        )
        sources = offline.get("bound_sources") or {}
        if sources:
            parts = [
                f"{name}: {sources[name]}"
                for name in sorted(sources, key=sources.get, reverse=True)
            ]
            lines.append("  bound sources: " + "  ".join(parts))
        rds = summary["rds_pass"]
        if rds:
            lines.append(
                f"  rds pass: {rds.get('suffixes_solved', 0)}"
                f"/{rds.get('suffixes', '?')} suffixes solved"
                f"  budget {rds.get('budget')}"
                + ("  (truncated)" if rds.get("truncated") else "")
            )
    if summary["workers"]:
        lines.append("workers: " + ", ".join(summary["workers"]))
    return "\n".join(lines) if lines else "(empty trace)"
