"""Metric time-series: ring-buffered history of a metrics registry.

The registry (:mod:`repro.obs.metrics`) answers "how much so far"; this
module answers "how did it get there".  A :class:`SeriesRecorder`
periodically *samples* a :class:`~repro.obs.metrics.MetricsRegistry` on
a deterministic, caller-supplied round clock (segment ends for a
streaming session, cell indices for a sweep, restart indices for the
adversary search) and appends one point per metric to a fixed-capacity
:class:`Series` ring.  On top of the raw values it derives, per counter:

* ``<name>.delta`` — increase since the previous sample;
* ``<name>.rate`` — delta divided by the rounds elapsed;
* ``<name>.ewma`` — exponentially weighted moving average of the rate,

and per gauge an ``.ewma`` of the value; histograms contribute
``<name>.count`` and ``<name>.mean`` series.  Everything is a pure
function of the (round, snapshot) sample sequence — no wall clock, no
randomness — so serial, parallel, and killed-and-resumed producers build
identical series, which is what makes alerting on them
(:mod:`repro.obs.alerts`) deterministic.

Memory stays O(capacity) forever: when a series ring is full, adjacent
points are *compacted* (merged pairwise, keeping first/last rounds and
min/max/sum/count aggregates), halving the point count and doubling the
effective sample stride.  A million-round stream sampled every segment
therefore keeps a bounded, progressively coarser history instead of
growing without bound or silently dropping the past.

Persistence is schema-tagged JSONL (``repro-series/v1``): one header
line with the recorder configuration, then one line per series — written
with :func:`write_series_jsonl`, read back with
:func:`read_series_jsonl`, evaluated post hoc with ``repro alerts
check``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterable, Mapping

SERIES_SCHEMA = "repro-series/v1"

#: Default ring capacity per series; at one sample per 4096-round
#: segment this holds ~1M rounds before the first compaction.
DEFAULT_CAPACITY = 256

#: Default EWMA smoothing factor (weight of the newest sample).
DEFAULT_EWMA_ALPHA = 0.25


@dataclass(frozen=True)
class SeriesPoint:
    """One (possibly compacted) observation of a series.

    An uncompacted sample has ``start == end`` and ``count == 1``; a
    compacted point covers the round window ``[start, end]`` and carries
    the aggregates of everything merged into it.  ``last`` is the value
    at ``end`` — the one alert evaluation reads.
    """

    start: int
    end: int
    count: int
    last: float
    min: float
    max: float
    total: float

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    @classmethod
    def sample(cls, round_index: int, value: float) -> "SeriesPoint":
        return cls(
            start=round_index,
            end=round_index,
            count=1,
            last=value,
            min=value,
            max=value,
            total=value,
        )

    def merge(self, other: "SeriesPoint") -> "SeriesPoint":
        """Combine with the chronologically *later* point ``other``."""
        return SeriesPoint(
            start=self.start,
            end=other.end,
            count=self.count + other.count,
            last=other.last,
            min=min(self.min, other.min),
            max=max(self.max, other.max),
            total=self.total + other.total,
        )

    def to_list(self) -> list:
        return [
            self.start,
            self.end,
            self.count,
            self.last,
            self.min,
            self.max,
            self.total,
        ]

    @classmethod
    def from_list(cls, data: Iterable) -> "SeriesPoint":
        start, end, count, last, low, high, total = data
        return cls(
            start=int(start),
            end=int(end),
            count=int(count),
            last=float(last),
            min=float(low),
            max=float(high),
            total=float(total),
        )


class Series:
    """Fixed-capacity, compacting time series of one metric.

    Appends are strictly round-ordered (a stale append raises — the
    round clock is the determinism anchor).  When the ring reaches
    ``capacity``, adjacent points merge pairwise, so memory is
    O(capacity) regardless of how many samples arrive.
    """

    __slots__ = ("name", "capacity", "points", "compactions")

    def __init__(self, name: str, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < 2:
            raise ValueError("series capacity must be at least 2")
        self.name = name
        self.capacity = capacity
        self.points: list[SeriesPoint] = []
        self.compactions = 0

    def __len__(self) -> int:
        return len(self.points)

    def append(self, round_index: int, value: float) -> None:
        if self.points and round_index <= self.points[-1].end:
            raise ValueError(
                f"series {self.name!r}: sample round {round_index} is not "
                f"after the last recorded round {self.points[-1].end}"
            )
        if len(self.points) >= self.capacity:
            self._compact()
        self.points.append(SeriesPoint.sample(round_index, float(value)))

    def _compact(self) -> None:
        """Merge adjacent points pairwise (oldest first, deterministic)."""
        merged: list[SeriesPoint] = []
        points = self.points
        for index in range(0, len(points) - 1, 2):
            merged.append(points[index].merge(points[index + 1]))
        if len(points) % 2:
            merged.append(points[-1])
        self.points = merged
        self.compactions += 1

    # ------------------------------------------------------------- views

    def rounds(self) -> list[int]:
        """The round each point represents (its window end)."""
        return [point.end for point in self.points]

    def values(self) -> list[float]:
        """The ``last`` value of each point — the alert-visible signal."""
        return [point.last for point in self.points]

    @property
    def latest(self) -> SeriesPoint | None:
        return self.points[-1] if self.points else None

    # --------------------------------------------------------- serialize

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "capacity": self.capacity,
            "compactions": self.compactions,
            "points": [point.to_list() for point in self.points],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Series":
        series = cls(data["name"], int(data["capacity"]))
        series.compactions = int(data.get("compactions", 0))
        series.points = [
            SeriesPoint.from_list(point) for point in data["points"]
        ]
        return series


class SeriesRecorder:
    """Sample a metrics registry into per-metric ring-buffered series.

    ``sample(round_index)`` freezes the registry and appends one point
    per metric (plus the derived delta/rate/EWMA series) at that round.
    The caller supplies the clock; rounds must be strictly increasing.

    ``prefixes`` restricts recording to metrics whose dotted name starts
    with one of the given prefixes (``None`` records everything) —
    attach ``prefixes=("stream.",)`` to a million-round session to keep
    only the ingestion history.

    ``rules`` attaches a :class:`~repro.obs.alerts.AlertEngine`
    (available as :attr:`alerts`): every sample is pushed through the
    rules right after recording, so firing/resolving is part of the same
    deterministic clock.

    The recorder is checkpointable: :meth:`state_dict` /
    :meth:`load_state` round-trip every series, the derivation state
    (previous counter values, EWMA accumulators), and the alert-engine
    state, so a resumed streaming session continues the exact series an
    uninterrupted one would have built.
    """

    def __init__(
        self,
        registry,
        *,
        capacity: int = DEFAULT_CAPACITY,
        prefixes: Iterable[str] | None = None,
        ewma_alpha: float = DEFAULT_EWMA_ALPHA,
        derive: bool = True,
        rules: Iterable | None = None,
    ) -> None:
        if not 0.0 < ewma_alpha <= 1.0:
            raise ValueError("ewma_alpha must be in (0, 1]")
        self.registry = registry
        self.capacity = capacity
        self.prefixes = tuple(prefixes) if prefixes is not None else None
        self.ewma_alpha = ewma_alpha
        self.derive = derive
        self.series: dict[str, Series] = {}
        self.samples = 0
        self._last_round: int | None = None
        self._last_counters: dict[str, float] = {}
        self._ewma: dict[str, float] = {}
        self.alerts = None
        if rules is not None:
            from repro.obs.alerts import AlertEngine

            self.alerts = AlertEngine(rules)

    # ------------------------------------------------------------ sample

    def _wanted(self, name: str) -> bool:
        if self.prefixes is None:
            return True
        return any(name.startswith(prefix) for prefix in self.prefixes)

    def _record(self, name: str, round_index: int, value: float) -> float:
        series = self.series.get(name)
        if series is None:
            series = self.series[name] = Series(name, self.capacity)
        series.append(round_index, value)
        return value

    def _ewma_update(self, name: str, value: float) -> float:
        previous = self._ewma.get(name)
        if previous is None:
            smoothed = float(value)
        else:
            alpha = self.ewma_alpha
            smoothed = alpha * float(value) + (1.0 - alpha) * previous
        self._ewma[name] = smoothed
        return smoothed

    def sample(self, round_index: int) -> dict[str, float]:
        """Record one sample of every (wanted) metric at ``round_index``.

        Returns the flat ``{series name: value}`` mapping of everything
        recorded — the same mapping the attached alert engine (if any)
        is fed.
        """
        if self._last_round is not None and round_index <= self._last_round:
            raise ValueError(
                f"sample round {round_index} is not after the previous "
                f"sample round {self._last_round}"
            )
        snapshot = self.registry.snapshot()
        elapsed = (
            round_index - self._last_round
            if self._last_round is not None
            else None
        )
        values: dict[str, float] = {}
        for name, value in snapshot.get("counters", {}).items():
            if not self._wanted(name):
                continue
            values[name] = self._record(name, round_index, float(value))
            if not self.derive:
                continue
            previous = self._last_counters.get(name, 0.0)
            delta = float(value) - previous
            self._last_counters[name] = float(value)
            values[f"{name}.delta"] = self._record(
                f"{name}.delta", round_index, delta
            )
            rate = delta / elapsed if elapsed else 0.0
            values[f"{name}.rate"] = self._record(
                f"{name}.rate", round_index, rate
            )
            values[f"{name}.ewma"] = self._record(
                f"{name}.ewma", round_index, self._ewma_update(name, rate)
            )
        for name, value in snapshot.get("gauges", {}).items():
            if not self._wanted(name):
                continue
            values[name] = self._record(name, round_index, float(value))
            if self.derive:
                values[f"{name}.ewma"] = self._record(
                    f"{name}.ewma",
                    round_index,
                    self._ewma_update(name, float(value)),
                )
        for name, data in snapshot.get("histograms", {}).items():
            if not self._wanted(name):
                continue
            count = float(data.get("count", 0))
            values[f"{name}.count"] = self._record(
                f"{name}.count", round_index, count
            )
            mean = float(data.get("mean", 0.0)) if count else 0.0
            values[f"{name}.mean"] = self._record(
                f"{name}.mean", round_index, mean
            )
        self._last_round = round_index
        self.samples += 1
        if self.alerts is not None:
            self.alerts.observe(round_index, values)
        return values

    # ------------------------------------------------------------- views

    def names(self) -> list[str]:
        return sorted(self.series)

    def snapshot(self) -> dict[str, Any]:
        """JSON-ready view of every series (the ``/series`` payload)."""
        return {
            "schema": SERIES_SCHEMA,
            "capacity": self.capacity,
            "samples": self.samples,
            "series": {
                name: self.series[name].to_dict()
                for name in sorted(self.series)
            },
        }

    # ------------------------------------------- checkpoint/restore

    def state_dict(self) -> dict[str, Any]:
        state: dict[str, Any] = {
            "samples": self.samples,
            "last_round": self._last_round,
            "last_counters": dict(self._last_counters),
            "ewma": dict(self._ewma),
            "series": {
                name: self.series[name].to_dict()
                for name in sorted(self.series)
            },
        }
        if self.alerts is not None:
            state["alerts"] = self.alerts.state_dict()
        return state

    def load_state(self, state: Mapping[str, Any]) -> None:
        self.samples = int(state["samples"])
        last_round = state["last_round"]
        self._last_round = None if last_round is None else int(last_round)
        self._last_counters = {
            name: float(value)
            for name, value in state["last_counters"].items()
        }
        self._ewma = {
            name: float(value) for name, value in state["ewma"].items()
        }
        self.series = {
            name: Series.from_dict(data)
            for name, data in state["series"].items()
        }
        if self.alerts is not None and "alerts" in state:
            self.alerts.load_state(state["alerts"])


# ------------------------------------------------------------ persistence


def write_series_jsonl(
    source: SeriesRecorder | Mapping[str, Any], path: str | Path
) -> Path:
    """Write a recorder (or its :meth:`~SeriesRecorder.snapshot`) as
    schema-tagged JSONL: one header line, then one line per series."""
    snapshot = (
        source.snapshot() if isinstance(source, SeriesRecorder) else source
    )
    if snapshot.get("schema") != SERIES_SCHEMA:
        raise ValueError(
            f"expected a {SERIES_SCHEMA} snapshot, got "
            f"{snapshot.get('schema')!r}"
        )
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as handle:
        header = {
            "schema": SERIES_SCHEMA,
            "capacity": snapshot.get("capacity"),
            "samples": snapshot.get("samples", 0),
        }
        handle.write(json.dumps(header, sort_keys=True) + "\n")
        for name in sorted(snapshot.get("series", {})):
            handle.write(
                json.dumps(snapshot["series"][name], sort_keys=True) + "\n"
            )
    return path


def read_series_jsonl(path: str | Path) -> dict[str, Any]:
    """Read a :func:`write_series_jsonl` file back into a snapshot dict.

    Raises ``ValueError`` on a missing/foreign schema header or a
    corrupt line, naming the line number.
    """
    path = Path(path)
    lines = path.read_text(encoding="utf-8").splitlines()
    if not lines:
        raise ValueError(f"series file {path} is empty")
    try:
        header = json.loads(lines[0])
    except json.JSONDecodeError as error:
        raise ValueError(
            f"series file {path} line 1 is not JSON: {error}"
        ) from error
    if header.get("schema") != SERIES_SCHEMA:
        raise ValueError(
            f"series file {path} has schema {header.get('schema')!r}; "
            f"expected {SERIES_SCHEMA}"
        )
    series: dict[str, Any] = {}
    for number, line in enumerate(lines[1:], start=2):
        if not line.strip():
            continue
        try:
            data = json.loads(line)
        except json.JSONDecodeError as error:
            raise ValueError(
                f"series file {path} line {number} is corrupt: {error}"
            ) from error
        series[data["name"]] = data
    return {
        "schema": SERIES_SCHEMA,
        "capacity": header.get("capacity"),
        "samples": header.get("samples", 0),
        "series": series,
    }


def series_from_snapshot(snapshot: Mapping[str, Any]) -> dict[str, Series]:
    """Materialize :class:`Series` objects from a snapshot/JSONL dict."""
    return {
        name: Series.from_dict(data)
        for name, data in snapshot.get("series", {}).items()
    }
