"""Structured trace bus: typed span/event records over pluggable sinks.

The paper's analysis machinery is intrinsically event-shaped — per-round
drop/arrival/reconfiguration/execution phases, epochs ending, counters
wrapping — but until this module the only visibility into a run was the
final :class:`~repro.core.cost.CostBreakdown`.  The trace bus gives the
engines (and the layers above them: adversary search, offline solver,
parallel runtime) a uniform way to narrate what they are doing:

* a :class:`TraceRecord` is one typed record — a span boundary
  (``span_start`` / ``span_end``), a leaf ``event``, or an
  ``annotation`` written after the fact by an analysis pass;
* a :class:`Tracer` stamps records with a monotone sequence number and
  an optional worker tag and hands them to a :class:`Sink`;
* sinks are pluggable: :class:`MemorySink` (bounded ring buffer),
  :class:`JsonlSink` (one JSON object per line, durable), and
  :class:`NullSink` (tracing off).

The record hierarchy is ``run → round → phase``: engines open a ``run``
span, a ``round`` span per simulated round, emit ``phase`` markers for
the drop/arrival/reconfigure/execute phases, and leaf events
(``drop``, ``arrival``, ``reconfig``, ``execute``, ``wrap``,
``eligible``/``ineligible``, ``fast_forward``, ``cache_hit``) inside
them.  See ``docs/observability.md`` for the full record schema.

Zero-overhead contract
----------------------
A tracer built over a :class:`NullSink` reports ``enabled = False`` and
the engines normalize disabled tracers to ``None`` at construction, so
the hot round loop pays exactly one ``is not None`` check per emission
site — measured under 3% on the EXP-S quick cells and gated in CI by
``benchmarks/check_tracing_overhead.py``.  Tracing is strictly
observational: no sink ever mutates simulation state, and the property
suite asserts traced and untraced runs produce bit-identical
``CostBreakdown``s.

This module is dependency-free (stdlib only) so every layer can import
it without cost.
"""

from __future__ import annotations

import json
from collections import deque
from pathlib import Path
from typing import Any, Iterable, Iterator, Mapping


class TraceRecord:
    """One typed record on the trace bus.

    ``kind`` is one of ``"span_start"``, ``"span_end"``, ``"event"``, or
    ``"annotation"``; ``name`` identifies the record type (``"run"``,
    ``"round"``, ``"phase"``, ``"drop"``, ...); ``round_index`` is the
    simulation round the record belongs to (``None`` for run-level
    records); ``data`` carries the record's typed payload; ``worker``
    tags records that flowed back from a parallel worker; ``seq`` is the
    emitting tracer's monotone sequence number.
    """

    __slots__ = ("seq", "kind", "name", "round_index", "data", "worker")

    def __init__(
        self,
        seq: int,
        kind: str,
        name: str,
        round_index: int | None = None,
        data: Mapping[str, Any] | None = None,
        worker: str | None = None,
    ) -> None:
        self.seq = seq
        self.kind = kind
        self.name = name
        self.round_index = round_index
        self.data = dict(data) if data else {}
        self.worker = worker

    def to_dict(self) -> dict[str, Any]:
        """Flat JSON-ready representation (used by the JSONL sink)."""
        out: dict[str, Any] = {"seq": self.seq, "kind": self.kind, "name": self.name}
        if self.round_index is not None:
            out["round"] = self.round_index
        if self.worker is not None:
            out["worker"] = self.worker
        out.update(self.data)
        return out

    @classmethod
    def from_dict(cls, raw: Mapping[str, Any]) -> "TraceRecord":
        """Inverse of :meth:`to_dict` (used by the trace readers)."""
        data = {
            key: value
            for key, value in raw.items()
            if key not in ("seq", "kind", "name", "round", "worker")
        }
        return cls(
            seq=int(raw.get("seq", 0)),
            kind=str(raw.get("kind", "event")),
            name=str(raw.get("name", "")),
            round_index=raw.get("round"),
            data=data,
            worker=raw.get("worker"),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        where = f" round={self.round_index}" if self.round_index is not None else ""
        return f"<TraceRecord #{self.seq} {self.kind}:{self.name}{where} {self.data}>"


class Sink:
    """Destination for trace records.  Subclasses override :meth:`emit`."""

    #: Null sinks advertise themselves so tracers can disable emission
    #: entirely instead of paying per-record formatting costs.
    is_null: bool = False

    def emit(self, record: TraceRecord) -> None:
        raise NotImplementedError

    def close(self) -> None:
        """Flush and release resources (default: no-op)."""


class NullSink(Sink):
    """Tracing off: a tracer over this sink is ``enabled = False``."""

    is_null = True

    def emit(self, record: TraceRecord) -> None:  # pragma: no cover - never called
        pass


class TeeSink(Sink):
    """Fan one record stream out to several sinks, in order.

    The composition point for the live monitors
    (:mod:`repro.obs.monitor`): ``Tracer(TeeSink(JsonlSink(path),
    monitor))`` writes a durable trace *and* streams every record through
    the monitor, with zero engine changes — the engine still sees one
    ``tracer=``.  A tee of only null sinks is itself null, so a tracer
    over it stays disabled.

    ``close()`` closes the children in order and raises the *first*
    child error after every child has been given its chance to close
    (monitors raise their integrity findings from ``close``).
    """

    def __init__(self, *sinks: Sink) -> None:
        self.sinks: tuple[Sink, ...] = tuple(sinks)
        self.is_null = all(sink.is_null for sink in self.sinks)

    def emit(self, record: TraceRecord) -> None:
        for sink in self.sinks:
            sink.emit(record)

    def close(self) -> None:
        first_error: Exception | None = None
        for sink in self.sinks:
            try:
                sink.close()
            except Exception as error:  # noqa: BLE001 - re-raised below
                if first_error is None:
                    first_error = error
        if first_error is not None:
            raise first_error


class MemorySink(Sink):
    """Bounded in-memory ring buffer of the most recent records.

    When the ring is full the *oldest* record is discarded per new
    emission; :attr:`dropped` counts those discards so a truncated
    capture is never mistaken for a complete one (``repr`` shows the
    count, and callers of :attr:`records` can check it).

    The sink also tracks the span balance of the stream it actually
    received (``span_start`` minus ``span_end``, over all emissions —
    not just those still in the ring).  :meth:`close` raises
    :class:`TraceIntegrityError` when the producer left spans open or
    closed more than it opened, which catches crashed runs and
    mis-nested instrumentation at the point the trace is sealed.
    """

    def __init__(self, capacity: int | None = 65536) -> None:
        if capacity is not None and capacity <= 0:
            raise ValueError("ring buffer capacity must be positive")
        self._records: deque[TraceRecord] = deque(maxlen=capacity)
        self.capacity = capacity
        self.dropped = 0
        self.span_depth = 0

    def emit(self, record: TraceRecord) -> None:
        records = self._records
        if records.maxlen is not None and len(records) == records.maxlen:
            self.dropped += 1
        records.append(record)
        if record.kind == "span_start":
            self.span_depth += 1
        elif record.kind == "span_end":
            self.span_depth -= 1

    @property
    def records(self) -> list[TraceRecord]:
        return list(self._records)

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self._records)

    def __repr__(self) -> str:
        dropped = f" dropped={self.dropped}" if self.dropped else ""
        return (
            f"<MemorySink {len(self._records)} records"
            f" capacity={self.capacity}{dropped}>"
        )

    def close(self) -> None:
        if self.span_depth != 0:
            side = "unclosed" if self.span_depth > 0 else "over-closed"
            raise TraceIntegrityError(
                f"trace stream sealed with {abs(self.span_depth)} "
                f"{side} span(s)"
            )


class TraceIntegrityError(RuntimeError):
    """A sealed trace stream failed a structural integrity check."""


class JsonlSink(Sink):
    """Durable sink: one JSON object per line, append-only.

    Keys are emitted in a stable order (``seq``, ``kind``, ``name``,
    ``round``, ``worker``, then payload keys sorted) so traces diff
    cleanly across runs.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._handle = self.path.open("w", encoding="utf-8")

    def emit(self, record: TraceRecord) -> None:
        flat = record.to_dict()
        head = {
            key: flat.pop(key)
            for key in ("seq", "kind", "name", "round", "worker")
            if key in flat
        }
        head.update((key, flat[key]) for key in sorted(flat))
        self._handle.write(json.dumps(head) + "\n")

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.flush()
            self._handle.close()

    def __enter__(self) -> "JsonlSink":  # pragma: no cover - convenience
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def read_jsonl_trace(
    path: str | Path, *, strict: bool = True
) -> list[TraceRecord]:
    """Load the records of a JSONL trace written by :class:`JsonlSink`.

    ``strict=False`` tolerates exactly one *torn trailing line* — the
    partial final record a crash (kill -9, full disk) leaves behind an
    append-only JSONL file — by dropping it.  Corruption anywhere before
    the final line still raises: a torn tail is the one shape crash
    semantics can produce, anything else is real damage and silently
    skipping it would hide records from analysis.
    """
    lines: list[tuple[int, str]] = []
    with Path(path).open("r", encoding="utf-8") as handle:
        for number, line in enumerate(handle, start=1):
            line = line.strip()
            if line:
                lines.append((number, line))
    records: list[TraceRecord] = []
    for index, (number, line) in enumerate(lines):
        try:
            records.append(TraceRecord.from_dict(json.loads(line)))
        except (json.JSONDecodeError, KeyError, TypeError) as error:
            if not strict and index == len(lines) - 1:
                break  # torn trailing line: crash debris, drop it
            raise ValueError(
                f"{path}: invalid trace record on line {number}: {error}"
            ) from error
    return records


class Tracer:
    """Front end of the trace bus: stamps records and hands them to a sink.

    A tracer over a :class:`NullSink` is *disabled* (``enabled`` is
    False); emission methods on a disabled tracer are no-ops, and the
    engines additionally normalize disabled tracers to ``None`` so their
    hot loops pay only a ``None`` check.
    """

    __slots__ = ("sink", "enabled", "worker", "_seq")

    def __init__(self, sink: Sink | None = None, *, worker: str | None = None) -> None:
        self.sink = sink if sink is not None else MemorySink()
        self.enabled = not self.sink.is_null
        self.worker = worker
        self._seq = 0

    def _emit(self, kind: str, name: str, round_index: int | None, data) -> None:
        if not self.enabled:
            return
        record = TraceRecord(self._seq, kind, name, round_index, data, self.worker)
        self._seq += 1
        self.sink.emit(record)

    def event(self, name: str, round_index: int | None = None, **data: Any) -> None:
        """Emit a leaf event record."""
        self._emit("event", name, round_index, data)

    def begin(self, name: str, round_index: int | None = None, **data: Any) -> None:
        """Open a span (``run``, ``round``, ...)."""
        self._emit("span_start", name, round_index, data)

    def end(self, name: str, round_index: int | None = None, **data: Any) -> None:
        """Close the innermost span of ``name``."""
        self._emit("span_end", name, round_index, data)

    def annotation(self, name: str, round_index: int | None = None, **data: Any) -> None:
        """Emit an after-the-fact annotation (analysis passes, epochs)."""
        self._emit("annotation", name, round_index, data)

    def replay(
        self, records: Iterable[TraceRecord], *, worker: str | None = None
    ) -> int:
        """Re-emit ``records`` (e.g. collected in a parallel worker).

        Each record is re-stamped with this tracer's sequence counter;
        ``worker`` overrides the record's worker tag so orchestrators can
        attribute records to the worker seed/id that produced them.
        Returns the number of records replayed.
        """
        count = 0
        for record in records:
            if not self.enabled:
                break
            stamped = TraceRecord(
                self._seq,
                record.kind,
                record.name,
                record.round_index,
                record.data,
                worker if worker is not None else record.worker,
            )
            self._seq += 1
            self.sink.emit(stamped)
            count += 1
        return count

    def close(self) -> None:
        """Close the underlying sink."""
        self.sink.close()
