"""Persistent run registry: crash-safe history of every invocation.

Until this module, a run's outcome — which instance, which engine and
scheme, what it cost, how long it took, whether the monitors objected —
evaporated when the process exited.  The registry gives the repo the
queryable history a long-running service assumes:

* a :class:`RunRecord` is one frozen summary of a simulate / search /
  offline / experiment invocation (instance digest, engine, scheme,
  seed, cost breakdown, wall clock, monitor verdict counts, optional
  metrics snapshot);
* a :class:`RunRegistry` is an append-only store of such records under
  one directory: each *writer* owns its own JSONL segment file, so
  concurrent appends from :class:`~repro.runtime.parallel.ParallelRunner`
  worker processes never interleave bytes, and a reader merges all
  segments ordered by record timestamp;
* a :class:`RegistrySink` is the recorder hook the pipelines accept
  (``recorder=``): it knows how to turn a
  :class:`~repro.simulation.engine.RunResult`, a
  :class:`~repro.analysis.adversary_search.SearchResult`, or an
  :class:`~repro.offline.optimal.OptimalResult` into a record.

Crash safety
------------
Appends are single ``write()`` calls of one newline-terminated line,
flushed immediately (``fsync=True`` additionally forces the page cache
out per append).  A crash — including ``kill -9`` — can therefore tear
at most the *trailing* line of the crashed writer's segment; readers
skip such torn tails by default (``strict=False``) and report them via
:attr:`RunRegistry.skipped_lines`, so every fully written record
survives.  Torn or corrupt lines *before* the tail indicate real
corruption and raise :class:`RegistryError` even in lax mode.

This module is stdlib-only and imports nothing from the simulation
layers (records are built by duck-typing), so every layer can depend on
it without cycles.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
import uuid
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Iterator, Mapping

#: Schema tag stamped into every record line.
RUN_SCHEMA = "repro-run/v1"

#: Recognized invocation kinds (free-form kinds are allowed but these
#: are what the built-in recorders emit).
RUN_KINDS = ("simulate", "matrix", "search", "offline", "experiment")


class RegistryError(RuntimeError):
    """A registry segment failed a structural integrity check."""


def instance_digest(instance: Any) -> str:
    """Stable SHA-256 content address of an :class:`~repro.core.instance.Instance`.

    Two instances digest equal iff they describe the same problem: the
    same job multiset (arrival, color, delay bound), delay-bound
    declarations, cost model, batch mode, and horizon.  The display
    ``name`` is deliberately excluded — renaming a workload does not
    change what was run.
    """
    spec = instance.spec
    payload = {
        "jobs": sorted(
            (job.arrival, job.color, job.delay_bound)
            for job in instance.sequence
        ),
        "bounds": sorted(spec.delay_bounds.items()),
        "cost": (spec.cost.reconfig_cost, spec.cost.drop_cost),
        "mode": getattr(spec.batch_mode, "name", str(spec.batch_mode)),
        "horizon": instance.horizon,
    }
    blob = json.dumps(payload, separators=(",", ":"), sort_keys=True)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]


def cost_summary(cost: Any) -> dict[str, int]:
    """JSON-ready summary of a :class:`~repro.core.cost.CostBreakdown`."""
    return {
        "total": cost.total,
        "reconfig_cost": cost.reconfig_cost,
        "drop_cost": cost.drop_cost,
        "num_reconfigs": cost.num_reconfigs,
        "num_drops": cost.num_drops,
        "num_eligible_drops": cost.num_eligible_drops,
        "num_ineligible_drops": cost.num_ineligible_drops,
    }


def _new_run_id() -> str:
    return uuid.uuid4().hex[:12]


@dataclass
class RunRecord:
    """One recorded invocation.  All fields are JSON-ready scalars/dicts."""

    kind: str
    run_id: str = field(default_factory=_new_run_id)
    created: float = field(default_factory=time.time)
    #: Workload identity.
    instance_name: str = ""
    instance_digest: str = ""
    horizon: int | None = None
    num_jobs: int | None = None
    num_colors: int | None = None
    #: Configuration.
    engine: str | None = None
    scheme: str | None = None
    seed: int | None = None
    num_resources: int | None = None
    speed: int | None = None
    record_mode: str | None = None
    #: Outcome.
    cost: dict[str, int] = field(default_factory=dict)
    wall_seconds: float = 0.0
    rounds_executed: int | None = None
    monitor_violations: int = 0
    monitors: dict[str, int] = field(default_factory=dict)
    metrics: dict[str, Any] | None = None
    extra: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {"schema": RUN_SCHEMA, "run_id": self.run_id}
        for key in (
            "kind",
            "created",
            "instance_name",
            "instance_digest",
            "horizon",
            "num_jobs",
            "num_colors",
            "engine",
            "scheme",
            "seed",
            "num_resources",
            "speed",
            "record_mode",
            "cost",
            "wall_seconds",
            "rounds_executed",
            "monitor_violations",
            "monitors",
            "metrics",
            "extra",
        ):
            value = getattr(self, key)
            if value not in (None, {}, ""):
                out[key] = value
            elif key in ("kind", "created", "cost", "wall_seconds"):
                out[key] = value
        return out

    @classmethod
    def from_dict(cls, raw: Mapping[str, Any]) -> "RunRecord":
        schema = raw.get("schema")
        if schema != RUN_SCHEMA:
            raise RegistryError(
                f"unsupported run-record schema {schema!r} "
                f"(expected {RUN_SCHEMA!r})"
            )
        kwargs: dict[str, Any] = {}
        for key in (
            "kind",
            "run_id",
            "created",
            "instance_name",
            "instance_digest",
            "horizon",
            "num_jobs",
            "num_colors",
            "engine",
            "scheme",
            "seed",
            "num_resources",
            "speed",
            "record_mode",
            "cost",
            "wall_seconds",
            "rounds_executed",
            "monitor_violations",
            "monitors",
            "metrics",
            "extra",
        ):
            if key in raw:
                kwargs[key] = raw[key]
        if "kind" not in kwargs:
            raise RegistryError("run record is missing its kind")
        return cls(**kwargs)

    @property
    def total_cost(self) -> int | None:
        return self.cost.get("total")

    def describe(self) -> str:
        """One human line (used by ``repro runs list``)."""
        when = time.strftime("%Y-%m-%d %H:%M:%S", time.localtime(self.created))
        cost = self.cost.get("total")
        bits = [
            self.run_id,
            when,
            f"{self.kind:<10}",
            f"{(self.scheme or '-'):<12}",
            f"{(self.engine or '-'):<10}",
            f"cost={cost if cost is not None else '-':<8}",
            f"{self.wall_seconds * 1e3:8.1f}ms",
        ]
        if self.monitor_violations:
            bits.append(f"VIOLATIONS={self.monitor_violations}")
        name = self.instance_name or self.instance_digest
        if name:
            bits.append(name)
        return "  ".join(str(b) for b in bits)


class RunRegistry:
    """Append-only registry of :class:`RunRecord` under one directory.

    Each :class:`RunRegistry` *instance* lazily opens its own segment
    file (named after pid + a random tag) on first append and rotates it
    after ``segment_records`` lines, so any number of processes can
    append to the same directory without locking: a segment has exactly
    one writer, and POSIX append-mode single-``write()`` lines never
    interleave within it.

    Reading (:meth:`records`, :meth:`get`, :meth:`last`) re-scans the
    directory and merges all segments ordered by ``created`` timestamp
    (ties broken by run id), building the in-memory index on the fly.
    """

    def __init__(
        self,
        root: str | Path,
        *,
        segment_records: int = 512,
        fsync: bool = False,
    ) -> None:
        if segment_records <= 0:
            raise ValueError("segment_records must be positive")
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.segment_records = segment_records
        self.fsync = fsync
        self._handle = None
        self._written = 0
        self._segment_seq = 0
        self._writer_tag = f"{os.getpid()}-{uuid.uuid4().hex[:8]}"
        #: Lines skipped as torn tails by the most recent scan.
        self.skipped_lines = 0

    # ------------------------------------------------------------- writing

    def _open_segment(self):
        self._segment_seq += 1
        path = self.root / f"seg-{self._writer_tag}-{self._segment_seq:04d}.jsonl"
        # "x" guards against the astronomically unlikely tag collision.
        return path.open("x", encoding="utf-8")

    def append(self, record: RunRecord) -> RunRecord:
        """Durably append one record; returns it for chaining."""
        if self._handle is None or self._written >= self.segment_records:
            self.close()
            self._handle = self._open_segment()
            self._written = 0
        line = json.dumps(record.to_dict(), separators=(",", ":"), sort_keys=True)
        # One write() of one terminated line: a crash tears at most the
        # trailing line, never an earlier record.
        self._handle.write(line + "\n")
        self._handle.flush()
        if self.fsync:
            os.fsync(self._handle.fileno())
        self._written += 1
        return record

    def close(self) -> None:
        if self._handle is not None and not self._handle.closed:
            self._handle.flush()
            self._handle.close()
        self._handle = None

    def __enter__(self) -> "RunRegistry":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------- reading

    def segments(self) -> list[Path]:
        return sorted(self.root.glob("seg-*.jsonl"))

    def _iter_segment(self, path: Path, strict: bool) -> Iterator[RunRecord]:
        try:
            text = path.read_text(encoding="utf-8")
        except OSError as error:
            raise RegistryError(f"cannot read segment {path}: {error}") from error
        lines = text.split("\n")
        # A complete segment ends with "\n" -> trailing "" sentinel.  A
        # torn tail is trailing content *without* its newline — the only
        # shape a crash mid-write() can produce.  A complete final line
        # that fails to decode is corruption and raises regardless.
        torn_tail = bool(lines) and lines[-1] != ""
        for index, line in enumerate(lines):
            line = line.strip()
            if not line:
                continue
            try:
                yield RunRecord.from_dict(json.loads(line))
            except (json.JSONDecodeError, RegistryError, TypeError) as error:
                is_tail = torn_tail and index == len(lines) - 1
                if strict or not is_tail:
                    raise RegistryError(
                        f"corrupt run record in {path.name} line {index + 1}: "
                        f"{error}"
                    ) from error
                self.skipped_lines += 1

    def records(self, *, strict: bool = False) -> list[RunRecord]:
        """All records across all segments, oldest first.

        ``strict=False`` (default) skips a torn trailing line per
        segment — the crash-safe read mode; ``strict=True`` raises
        :class:`RegistryError` on any undecodable line.
        """
        self.skipped_lines = 0
        out: list[RunRecord] = []
        for path in self.segments():
            out.extend(self._iter_segment(path, strict))
        out.sort(key=lambda r: (r.created, r.run_id))
        return out

    def get(self, run_id: str, *, strict: bool = False) -> RunRecord:
        """Record by (possibly abbreviated, unambiguous) run id."""
        matches = [
            record
            for record in self.records(strict=strict)
            if record.run_id == run_id or record.run_id.startswith(run_id)
        ]
        exact = [r for r in matches if r.run_id == run_id]
        if len(exact) > 1:
            raise KeyError(
                f"run id {run_id!r} matches {len(exact)} records in "
                f"{self.root}; the registry holds duplicate run ids"
            )
        if exact:
            return exact[0]
        if not matches:
            raise KeyError(f"no run {run_id!r} in registry {self.root}")
        if len(matches) > 1:
            raise KeyError(
                f"run id {run_id!r} is ambiguous in {self.root}: "
                + ", ".join(r.run_id for r in matches[:5])
            )
        return matches[0]

    def last(self, n: int = 10, *, kind: str | None = None) -> list[RunRecord]:
        records = self.records()
        if kind is not None:
            records = [r for r in records if r.kind == kind]
        return records[-n:]

    def __len__(self) -> int:
        return len(self.records())


# --------------------------------------------------------------- recorder


class RegistrySink:
    """Recorder hook: turns pipeline results into appended records.

    The pipelines (``run_matrix``, ``search_adversary``,
    ``optimal_offline``, the CLI entry points) accept one of these as
    ``recorder=`` and call the matching ``record_*`` method; everything
    is duck-typed, so this module never imports the simulation layers.
    """

    def __init__(
        self,
        registry: RunRegistry | str | Path,
        *,
        include_metrics: bool = True,
    ) -> None:
        self.registry = (
            registry
            if isinstance(registry, RunRegistry)
            else RunRegistry(registry)
        )
        self.include_metrics = include_metrics
        self.recorded = 0

    def _append(self, record: RunRecord) -> RunRecord:
        self.recorded += 1
        return self.registry.append(record)

    def _instance_fields(self, instance: Any) -> dict[str, Any]:
        return {
            "instance_name": instance.name or "",
            "instance_digest": instance_digest(instance),
            "horizon": instance.horizon,
            "num_jobs": len(instance.sequence),
            "num_colors": len(instance.sequence.colors),
        }

    def record_simulate(
        self,
        result: Any,
        *,
        engine: str | None = None,
        seed: int | None = None,
        kind: str = "simulate",
        monitors: Iterable[Any] = (),
        metrics_snapshot: Mapping[str, Any] | None = None,
        extra: Mapping[str, Any] | None = None,
    ) -> RunRecord:
        """Record one :class:`~repro.simulation.engine.RunResult`."""
        monitor_counts = {
            monitor.name: len(monitor.violations) for monitor in monitors
        }
        record = RunRecord(
            kind=kind,
            engine=engine,
            scheme=result.algorithm,
            seed=seed,
            num_resources=result.num_resources,
            speed=result.speed,
            record_mode=result.record,
            cost=cost_summary(result.cost),
            wall_seconds=result.wall_seconds,
            rounds_executed=result.rounds_executed,
            monitor_violations=sum(monitor_counts.values()),
            monitors=monitor_counts,
            metrics=(
                dict(metrics_snapshot)
                if metrics_snapshot is not None and self.include_metrics
                else None
            ),
            extra=dict(extra or {}),
            **self._instance_fields(result.instance),
        )
        return self._append(record)

    def record_search(
        self,
        result: Any,
        *,
        scheme: str,
        config: Any = None,
        extra: Mapping[str, Any] | None = None,
    ) -> RunRecord:
        """Record one adversary :class:`SearchResult`."""
        merged = {
            "best_ratio": result.best_ratio,
            "evaluations": result.evaluations,
            "score_cache_hits": result.score_cache_hits,
            "score_cache_misses": result.score_cache_misses,
            "shared_cache": result.shared_cache,
        }
        merged.update(extra or {})
        record = RunRecord(
            kind="search",
            scheme=scheme,
            seed=getattr(config, "seed", None),
            wall_seconds=result.wall_clock_seconds,
            extra=merged,
            **self._instance_fields(result.best_instance),
        )
        return self._append(record)

    def record_offline(
        self,
        result: Any,
        instance: Any,
        num_resources: int,
        *,
        wall_seconds: float = 0.0,
        extra: Mapping[str, Any] | None = None,
    ) -> RunRecord:
        """Record one exact-offline :class:`OptimalResult`."""
        merged = {
            "method": result.method,
            "nodes_expanded": result.nodes_expanded,
            "candidates_pruned": result.candidates_pruned,
        }
        if result.warm_start_cost is not None:
            merged["warm_start_cost"] = result.warm_start_cost
        merged.update(extra or {})
        record = RunRecord(
            kind="offline",
            scheme="OFF",
            num_resources=num_resources,
            cost=cost_summary(result.breakdown),
            wall_seconds=wall_seconds,
            extra=merged,
            **self._instance_fields(instance),
        )
        return self._append(record)

    def record_experiment(
        self,
        experiment_id: str,
        *,
        wall_seconds: float = 0.0,
        quick: bool = False,
        extra: Mapping[str, Any] | None = None,
    ) -> RunRecord:
        """Record one experiment invocation (``repro run EXP-…``)."""
        merged = {"experiment_id": experiment_id, "quick": quick}
        merged.update(extra or {})
        record = RunRecord(
            kind="experiment",
            instance_name=experiment_id,
            wall_seconds=wall_seconds,
            extra=merged,
        )
        return self._append(record)

    def close(self) -> None:
        self.registry.close()


# ------------------------------------------------------------------ diff


@dataclass
class RunDiff:
    """Field-level differences between two records."""

    run_a: str
    run_b: str
    same_instance: bool
    changed: dict[str, tuple[Any, Any]]
    cost_delta: dict[str, int]

    @property
    def identical_outcome(self) -> bool:
        return not self.cost_delta and not self.changed


#: Fields that are expected to differ between any two runs and carry no
#: comparison signal.
_VOLATILE_RUN_FIELDS = frozenset(
    {"run_id", "created", "wall_seconds", "metrics"}
)

#: ``extra`` keys that name artifacts of the invocation (where a trace
#: landed) rather than its outcome — ignored by :func:`diff_runs` so two
#: re-runs of one seeded configuration diff as identical.
_VOLATILE_EXTRA_KEYS = frozenset({"trace_path"})


def diff_runs(a: RunRecord, b: RunRecord) -> RunDiff:
    """Structured diff of two run records.

    Volatile fields (ids, timestamps, wall clock, metrics snapshots,
    artifact paths in ``extra``) are ignored; cost components are
    reported as numeric deltas (b - a), everything else as ``(a, b)``
    pairs.
    """
    changed: dict[str, tuple[Any, Any]] = {}
    for key in (
        "kind",
        "instance_name",
        "instance_digest",
        "horizon",
        "num_jobs",
        "num_colors",
        "engine",
        "scheme",
        "seed",
        "num_resources",
        "speed",
        "record_mode",
        "monitor_violations",
    ):
        va, vb = getattr(a, key), getattr(b, key)
        if va != vb:
            changed[key] = (va, vb)
    extra_a = {
        k: v for k, v in a.extra.items() if k not in _VOLATILE_EXTRA_KEYS
    }
    extra_b = {
        k: v for k, v in b.extra.items() if k not in _VOLATILE_EXTRA_KEYS
    }
    if extra_a != extra_b:
        changed["extra"] = (extra_a, extra_b)
    cost_delta = {
        key: b.cost.get(key, 0) - a.cost.get(key, 0)
        for key in sorted(set(a.cost) | set(b.cost))
        if b.cost.get(key, 0) != a.cost.get(key, 0)
    }
    return RunDiff(
        run_a=a.run_id,
        run_b=b.run_id,
        same_instance=bool(a.instance_digest)
        and a.instance_digest == b.instance_digest,
        changed=changed,
        cost_delta=cost_delta,
    )


def render_run_diff(diff: RunDiff) -> str:
    lines = [f"runs {diff.run_a} -> {diff.run_b}"]
    lines.append(
        "instance: "
        + ("identical (same digest)" if diff.same_instance else "DIFFERENT")
    )
    if diff.identical_outcome:
        lines.append("outcome: identical")
        return "\n".join(lines)
    if diff.cost_delta:
        lines.append("cost deltas (b - a):")
        pad = max(len(k) for k in diff.cost_delta)
        for key, delta in diff.cost_delta.items():
            lines.append(f"  {key.ljust(pad)}  {delta:+d}")
    if diff.changed:
        lines.append("changed fields:")
        pad = max(len(k) for k in diff.changed)
        for key, (va, vb) in sorted(diff.changed.items()):
            lines.append(f"  {key.ljust(pad)}  {va!r} -> {vb!r}")
    return "\n".join(lines)


def render_run_list(records: Iterable[RunRecord]) -> str:
    lines = [record.describe() for record in records]
    return "\n".join(lines) if lines else "(registry is empty)"


def render_run(record: RunRecord) -> str:
    """Full single-record view (``repro runs show``)."""
    payload = record.to_dict()
    metrics = payload.pop("metrics", None)
    lines = [json.dumps(payload, indent=2, sort_keys=True)]
    if metrics is not None:
        names = sorted(
            set(metrics.get("counters", {}))
            | set(metrics.get("gauges", {}))
            | set(metrics.get("histograms", {}))
        )
        lines.append(
            f"(metrics snapshot attached: {len(names)} instruments — "
            "export with `repro obs export`)"
        )
    return "\n".join(lines)
