"""Trace analytics: structural diffing and cost-delta attribution.

When two runs that should agree do not — sparse vs dense parity, a
refactor against its baseline, two CI commits — the interesting questions
are *where the streams first part ways* and *which events carry the cost
difference*.  :func:`diff_traces` answers both from plain record lists:
it scans for the first structurally diverging record (kind, name, round,
payload — sequence numbers are compared implicitly by position) and
attributes the ``Δ·#reconfigs + drop_cost·#drops`` objective to
phase (reconfig vs drop), color, and round-range buckets on each side.

Used by ``repro obs diff`` and the CI ``obs`` smoke job (two seeded
runs: identical seeds must produce an empty diff, a perturbed instance a
non-empty attribution).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.obs.tracing import TraceRecord


#: Payload keys that legitimately differ between reruns of the same
#: deterministic computation; never diffed.  ``wall_seconds`` is the run
#: span's wall clock, ``seconds`` the per-phase profiling durations
#: (:meth:`repro.obs.profiling.PhaseProfiler.snapshot` entries embedded
#: in span payloads), and ``worker``/``pid`` identify the process a
#: record flowed back from (``map_traced`` replay tags) — all of them
#: vary between serial and parallel runs of the same deterministic cell.
#: This is the single source of truth; stripping applies recursively to
#: nested payload mappings and sequences.
VOLATILE_KEYS = frozenset({"wall_seconds", "seconds", "worker", "pid"})


def _strip_volatile(value):
    """Recursively drop volatile keys from a payload value.

    Mappings become sorted ``(key, stripped_value)`` tuples (hashable and
    order-insensitive), sequences become tuples of stripped elements, and
    scalars pass through — so a span payload embedding a profiler
    snapshot like ``{"drop": {"seconds": 0.01, "calls": 5}}`` compares
    equal across reruns.
    """
    if isinstance(value, dict):
        return tuple(
            sorted(
                (key, _strip_volatile(sub))
                for key, sub in value.items()
                if key not in VOLATILE_KEYS
            )
        )
    if isinstance(value, (list, tuple)):
        return tuple(_strip_volatile(item) for item in value)
    return value


def _record_key(record: TraceRecord) -> tuple:
    """Everything that makes two records "the same" except the seq stamp.

    The worker tag is deliberately excluded: a serial run records
    ``worker=None`` where a parallel run of the same cell tags the
    replayed records with the producing task (``map_traced``), and that
    difference carries no semantic content.
    """
    return (
        record.kind,
        record.name,
        record.round_index,
        _strip_volatile(record.data),
    )


@dataclass
class TraceDiff:
    """Outcome of :func:`diff_traces`.

    ``first_divergence`` is the record index where the streams part ways
    (``None`` when identical); when one stream is a strict prefix of the
    other, it is the shorter length and the missing side's record is
    ``None``.  The ``by_*`` attributions map to ``(cost_a, cost_b)``
    pairs so a renderer can show both sides and their delta.
    """

    identical: bool
    length_a: int
    length_b: int
    first_divergence: int | None = None
    record_a: TraceRecord | None = None
    record_b: TraceRecord | None = None
    cost_a: int = 0
    cost_b: int = 0
    by_phase: dict[str, tuple[int, int]] = field(default_factory=dict)
    by_color: dict[int, tuple[int, int]] = field(default_factory=dict)
    by_round_range: dict[tuple[int, int], tuple[int, int]] = field(
        default_factory=dict
    )

    @property
    def cost_delta(self) -> int:
        return self.cost_b - self.cost_a


def _costed(record: TraceRecord, delta: int, drop_cost: int) -> int:
    """The objective contribution of one record (0 for uncosted events)."""
    if record.kind != "event":
        return 0
    if record.name == "reconfig":
        return delta * int(record.data.get("resources", 1))
    if record.name == "drop":
        return drop_cost * int(record.data.get("count", 1))
    return 0


def _accumulate(
    records: Sequence[TraceRecord],
    side: int,
    delta: int,
    drop_cost: int,
    horizon: int,
    num_ranges: int,
    by_phase: dict[str, list[int]],
    by_color: dict[int, list[int]],
    by_range: dict[tuple[int, int], list[int]],
) -> int:
    range_width = max(1, -(-horizon // num_ranges))  # ceil division
    total = 0
    for record in records:
        cost = _costed(record, delta, drop_cost)
        if not cost:
            continue
        total += cost
        by_phase.setdefault(record.name, [0, 0])[side] += cost
        color = record.data.get("color")
        if color is not None:
            by_color.setdefault(color, [0, 0])[side] += cost
        k = record.round_index or 0
        lo = (k // range_width) * range_width
        by_range.setdefault((lo, lo + range_width - 1), [0, 0])[side] += cost
    return total


def diff_traces(
    a: Sequence[TraceRecord],
    b: Sequence[TraceRecord],
    *,
    num_ranges: int = 8,
    drop_cost: int | None = None,
) -> TraceDiff:
    """Structurally diff two record streams and attribute the cost delta.

    ``Δ`` and the horizon are read from each stream's ``run`` span-start
    payload (defaulting to 1 when absent, e.g. for hand-built streams);
    ``drop_cost`` defaults to the paper's unit cost.  Records compare by
    kind/name/round/payload — sequence numbers are positional and worker
    tags are ignored, so replayed, re-stamped, or parallel-collected
    streams diff cleanly against their serial equivalents.
    """
    a = list(a)
    b = list(b)

    def run_payload(records: Sequence[TraceRecord]) -> dict:
        for record in records:
            if record.kind == "span_start" and record.name == "run":
                return record.data
        return {}

    payload_a, payload_b = run_payload(a), run_payload(b)
    delta_a = int(payload_a.get("delta", 1))
    delta_b = int(payload_b.get("delta", 1))
    horizon = max(
        int(payload_a.get("horizon", 0)),
        int(payload_b.get("horizon", 0)),
        1,
    )
    drop_a = drop_b = drop_cost if drop_cost is not None else 1

    first = None
    for index, (ra, rb) in enumerate(zip(a, b)):
        if _record_key(ra) != _record_key(rb):
            first = index
            break
    if first is None and len(a) != len(b):
        first = min(len(a), len(b))

    by_phase: dict[str, list[int]] = {}
    by_color: dict[int, list[int]] = {}
    by_range: dict[tuple[int, int], list[int]] = {}
    cost_a = _accumulate(
        a, 0, delta_a, drop_a, horizon, num_ranges, by_phase, by_color, by_range
    )
    cost_b = _accumulate(
        b, 1, delta_b, drop_b, horizon, num_ranges, by_phase, by_color, by_range
    )

    return TraceDiff(
        identical=first is None,
        length_a=len(a),
        length_b=len(b),
        first_divergence=first,
        record_a=a[first] if first is not None and first < len(a) else None,
        record_b=b[first] if first is not None and first < len(b) else None,
        cost_a=cost_a,
        cost_b=cost_b,
        by_phase={k: tuple(v) for k, v in sorted(by_phase.items())},
        by_color={k: tuple(v) for k, v in sorted(by_color.items())},
        by_round_range={k: tuple(v) for k, v in sorted(by_range.items())},
    )


def render_trace_diff(diff: TraceDiff) -> str:
    """Human-readable report of a :class:`TraceDiff` (``repro obs diff``)."""
    lines: list[str] = []
    if diff.identical:
        lines.append(
            f"traces identical ({diff.length_a} records, "
            f"cost {diff.cost_a} on both sides)"
        )
        return "\n".join(lines)
    lines.append(
        f"traces diverge at record #{diff.first_divergence} "
        f"({diff.length_a} vs {diff.length_b} records)"
    )
    for label, record in (("a", diff.record_a), ("b", diff.record_b)):
        if record is None:
            lines.append(f"  {label}: <stream ended>")
        else:
            where = (
                f" round={record.round_index}"
                if record.round_index is not None
                else ""
            )
            lines.append(
                f"  {label}: {record.kind}:{record.name}{where} {record.data}"
            )
    lines.append(
        f"cost: {diff.cost_a} vs {diff.cost_b} ({diff.cost_delta:+d})"
    )
    interesting = [
        (f"phase {name}", pair)
        for name, pair in diff.by_phase.items()
        if pair[0] != pair[1]
    ]
    interesting += [
        (f"color {color}", pair)
        for color, pair in diff.by_color.items()
        if pair[0] != pair[1]
    ]
    interesting += [
        (f"rounds {lo}-{hi}", pair)
        for (lo, hi), pair in diff.by_round_range.items()
        if pair[0] != pair[1]
    ]
    if interesting:
        lines.append("cost delta attribution:")
        for label, (ca, cb) in interesting:
            lines.append(f"  {label}: {ca} vs {cb} ({cb - ca:+d})")
    elif diff.cost_a == diff.cost_b:
        lines.append("cost identical; divergence is structural only")
    return "\n".join(lines)
