"""Deterministic alerting over metric time-series.

An :class:`AlertRule` declares a condition on one series recorded by a
:class:`~repro.obs.timeseries.SeriesRecorder`; an :class:`AlertEngine`
holds a set of rules and a firing→resolved state machine per rule.  The
engine is fed one ``(round, {series: value})`` sample at a time — by the
recorder, on the same deterministic round clock that builds the series —
and its verdicts are a pure function of (rules, sample sequence): no
wall clock, no randomness, no thread timing.  Serial and parallel
producers, and a killed-and-resumed streaming session, therefore fire
and resolve the *same alerts at the same rounds* (property-tested).

Rule kinds
----------
``threshold``
    The sample value compared against ``value`` with ``op``
    (``stream.rejection_rate > 0.25``).
``rate_of_change``
    The difference between consecutive samples compared against
    ``value`` with ``op`` (backlog ramping: ``engine.queue_depth.mean``
    rising faster than X per sample).
``stall``
    Fires when the watched series is *flat* (consecutive samples equal)
    — the watermark rule: ``stream.admitted`` unchanged across N samples
    means ingestion has stalled.  ``op``/``value`` are unused.

Hysteresis: a rule breaches on one sample but only *fires* after
``window`` consecutive breaching samples, and only *resolves* after
``resolve_window`` consecutive clean ones — so a single noisy sample
neither pages nor flaps.  A rule whose series is absent from a sample is
skipped for that sample (missing data is not a breach, and not a
resolve).

Severity is ``"warning"`` or ``"critical"``; the ops service turns
``/health`` red (HTTP 503) while any critical rule is firing.

Rules serialize to/from plain dicts (``repro-alerts/v1`` JSON files for
the ``repro alerts`` CLI), and the engine's state round-trips through
``state_dict``/``load_state`` inside streaming checkpoints.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Mapping, Sequence

ALERTS_SCHEMA = "repro-alerts/v1"

RULE_KINDS = ("threshold", "rate_of_change", "stall")
SEVERITIES = ("warning", "critical")

_OPS = {
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
}


@dataclass(frozen=True)
class AlertRule:
    """One declarative condition over one recorded series."""

    name: str
    series: str
    kind: str = "threshold"
    op: str = ">"
    value: float = 0.0
    #: Consecutive breaching samples before the rule fires.
    window: int = 1
    #: Consecutive clean samples before a firing rule resolves.
    resolve_window: int = 1
    severity: str = "warning"

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("alert rule needs a name")
        if not self.series:
            raise ValueError(f"rule {self.name!r} needs a series to watch")
        if self.kind not in RULE_KINDS:
            raise ValueError(
                f"rule {self.name!r}: unknown kind {self.kind!r}; "
                f"expected one of {RULE_KINDS}"
            )
        if self.op not in _OPS:
            raise ValueError(
                f"rule {self.name!r}: unknown op {self.op!r}; "
                f"expected one of {tuple(_OPS)}"
            )
        if self.window < 1 or self.resolve_window < 1:
            raise ValueError(
                f"rule {self.name!r}: window and resolve_window must be >= 1"
            )
        if self.severity not in SEVERITIES:
            raise ValueError(
                f"rule {self.name!r}: severity must be one of {SEVERITIES}"
            )

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "series": self.series,
            "kind": self.kind,
            "op": self.op,
            "value": self.value,
            "window": self.window,
            "resolve_window": self.resolve_window,
            "severity": self.severity,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "AlertRule":
        known = {
            "name",
            "series",
            "kind",
            "op",
            "value",
            "window",
            "resolve_window",
            "severity",
        }
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(
                f"alert rule has unknown field(s): {', '.join(unknown)}"
            )
        return cls(**{key: data[key] for key in known & set(data)})


@dataclass(frozen=True)
class AlertEvent:
    """One firing or resolution, anchored to the sample round."""

    rule: str
    kind: str  # "fired" | "resolved"
    round: int
    value: float
    severity: str

    def to_dict(self) -> dict[str, Any]:
        return {
            "rule": self.rule,
            "kind": self.kind,
            "round": self.round,
            "value": self.value,
            "severity": self.severity,
        }

    def __str__(self) -> str:
        glyph = "FIRING" if self.kind == "fired" else "resolved"
        return (
            f"[{self.severity}] {self.rule} {glyph} at round {self.round} "
            f"(value {self.value:g})"
        )


@dataclass
class _RuleState:
    """Mutable per-rule evaluation state (the hysteresis machine)."""

    firing: bool = False
    breach_streak: int = 0
    clear_streak: int = 0
    previous: float | None = None
    last_value: float | None = None
    fired_round: int | None = None
    resolved_round: int | None = None
    fired_count: int = 0

    def to_dict(self) -> dict[str, Any]:
        return {
            "firing": self.firing,
            "breach_streak": self.breach_streak,
            "clear_streak": self.clear_streak,
            "previous": self.previous,
            "last_value": self.last_value,
            "fired_round": self.fired_round,
            "resolved_round": self.resolved_round,
            "fired_count": self.fired_count,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "_RuleState":
        return cls(**dict(data))


class AlertEngine:
    """Evaluate a rule set sample by sample, tracking firing state.

    ``observe(round, values)`` is the only mutating entry point; it
    returns the :class:`AlertEvent`\\ s (fires/resolves) this sample
    produced.  All events are also kept in :attr:`events` (bounded by
    ``max_events``, oldest dropped first, with :attr:`events_dropped`
    counting the shed ones).
    """

    def __init__(
        self, rules: Iterable[AlertRule | Mapping], *, max_events: int = 1024
    ) -> None:
        parsed: list[AlertRule] = []
        for rule in rules:
            if not isinstance(rule, AlertRule):
                rule = AlertRule.from_dict(rule)
            parsed.append(rule)
        names = [rule.name for rule in parsed]
        duplicates = sorted({name for name in names if names.count(name) > 1})
        if duplicates:
            raise ValueError(
                "duplicate alert rule names: " + ", ".join(duplicates)
            )
        if max_events < 1:
            raise ValueError("max_events must be at least 1")
        self.rules: tuple[AlertRule, ...] = tuple(parsed)
        self.max_events = max_events
        self._states: dict[str, _RuleState] = {
            rule.name: _RuleState() for rule in self.rules
        }
        self.events: list[AlertEvent] = []
        self.events_dropped = 0
        self.samples_seen = 0

    # ---------------------------------------------------------- evaluate

    def _signal(
        self, rule: AlertRule, state: _RuleState, value: float
    ) -> bool | None:
        """Whether this sample breaches ``rule`` (None = not evaluable)."""
        if rule.kind == "threshold":
            return _OPS[rule.op](value, rule.value)
        if rule.kind == "rate_of_change":
            if state.previous is None:
                return None
            return _OPS[rule.op](value - state.previous, rule.value)
        # stall: flat against the previous sample.
        if state.previous is None:
            return None
        return value == state.previous

    def observe(
        self, round_index: int, values: Mapping[str, float]
    ) -> list[AlertEvent]:
        """Feed one sample; returns the events it produced, in rule order."""
        self.samples_seen += 1
        produced: list[AlertEvent] = []
        for rule in self.rules:
            if rule.series not in values:
                continue
            value = float(values[rule.series])
            state = self._states[rule.name]
            breach = self._signal(rule, state, value)
            state.previous = value
            state.last_value = value
            if breach is None:
                continue
            if breach:
                state.breach_streak += 1
                state.clear_streak = 0
                if not state.firing and state.breach_streak >= rule.window:
                    state.firing = True
                    state.fired_round = round_index
                    state.fired_count += 1
                    produced.append(
                        AlertEvent(
                            rule=rule.name,
                            kind="fired",
                            round=round_index,
                            value=value,
                            severity=rule.severity,
                        )
                    )
            else:
                state.clear_streak += 1
                state.breach_streak = 0
                if state.firing and state.clear_streak >= rule.resolve_window:
                    state.firing = False
                    state.resolved_round = round_index
                    produced.append(
                        AlertEvent(
                            rule=rule.name,
                            kind="resolved",
                            round=round_index,
                            value=value,
                            severity=rule.severity,
                        )
                    )
        if produced:
            self.events.extend(produced)
            overflow = len(self.events) - self.max_events
            if overflow > 0:
                del self.events[:overflow]
                self.events_dropped += overflow
        return produced

    # ------------------------------------------------------------- views

    @property
    def firing(self) -> list[str]:
        """Names of currently firing rules, in rule order."""
        return [
            rule.name for rule in self.rules if self._states[rule.name].firing
        ]

    @property
    def critical_firing(self) -> bool:
        return any(
            self._states[rule.name].firing
            for rule in self.rules
            if rule.severity == "critical"
        )

    def status(self, rule_name: str) -> dict[str, Any]:
        rule = next(
            (rule for rule in self.rules if rule.name == rule_name), None
        )
        if rule is None:
            raise KeyError(f"unknown alert rule {rule_name!r}")
        return {"rule": rule.to_dict(), **self._states[rule_name].to_dict()}

    def payload(self) -> dict[str, Any]:
        """JSON-ready view of everything (the ``/alerts`` payload)."""
        return {
            "schema": ALERTS_SCHEMA,
            "samples_seen": self.samples_seen,
            "firing": self.firing,
            "critical_firing": self.critical_firing,
            "rules": [self.status(rule.name) for rule in self.rules],
            "events": [event.to_dict() for event in self.events],
            "events_dropped": self.events_dropped,
        }

    # ------------------------------------------- checkpoint/restore

    def state_dict(self) -> dict[str, Any]:
        return {
            "samples_seen": self.samples_seen,
            "events_dropped": self.events_dropped,
            "states": {
                name: state.to_dict() for name, state in self._states.items()
            },
            "events": [event.to_dict() for event in self.events],
        }

    def load_state(self, state: Mapping[str, Any]) -> None:
        self.samples_seen = int(state["samples_seen"])
        self.events_dropped = int(state.get("events_dropped", 0))
        for name, data in state["states"].items():
            if name in self._states:
                self._states[name] = _RuleState.from_dict(data)
        self.events = [
            AlertEvent(**event) for event in state.get("events", [])
        ]


# --------------------------------------------------------- pure evaluation


def evaluate_rules(
    rules: Sequence[AlertRule | Mapping],
    series: Mapping[str, Any],
    *,
    max_events: int = 1024,
) -> AlertEngine:
    """Evaluate rules against *recorded* series, returning the engine.

    ``series`` maps names to :class:`~repro.obs.timeseries.Series`
    objects or their ``to_dict`` forms (e.g. straight from
    :func:`~repro.obs.timeseries.read_series_jsonl`).  Points are
    replayed in round order, each point contributing its ``last`` value
    at its window-end round — so the verdicts equal a live engine fed
    those samples.  (Compaction merges old points, so a *compacted* file
    replays the coarsened history; live engines attached via
    ``SeriesRecorder(rules=...)`` see every sample as it happens.)
    """
    from repro.obs.timeseries import Series

    materialized: dict[str, Series] = {}
    for name, data in series.items():
        materialized[name] = (
            data if isinstance(data, Series) else Series.from_dict(data)
        )
    # Align samples across series by round: one engine observation per
    # distinct round, carrying every series that has a point there.
    by_round: dict[int, dict[str, float]] = {}
    for name, one in materialized.items():
        for point in one.points:
            by_round.setdefault(point.end, {})[name] = point.last
    engine = AlertEngine(rules, max_events=max_events)
    for round_index in sorted(by_round):
        engine.observe(round_index, by_round[round_index])
    return engine


# -------------------------------------------------------------- rule files


def rules_to_json(rules: Sequence[AlertRule]) -> str:
    payload = {
        "schema": ALERTS_SCHEMA,
        "rules": [rule.to_dict() for rule in rules],
    }
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def load_rules(path: str | Path) -> list[AlertRule]:
    """Load a ``repro-alerts/v1`` JSON rule file."""
    path = Path(path)
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as error:
        raise ValueError(f"cannot read rule file {path}: {error}") from error
    if payload.get("schema") != ALERTS_SCHEMA:
        raise ValueError(
            f"rule file {path} has schema {payload.get('schema')!r}; "
            f"expected {ALERTS_SCHEMA}"
        )
    rules = payload.get("rules")
    if not isinstance(rules, list) or not rules:
        raise ValueError(f"rule file {path} declares no rules")
    return [AlertRule.from_dict(rule) for rule in rules]


#: Example rule file contents (``repro alerts example``): the shapes the
#: issue motivates — stalled ingestion, windowed rejection rate, backlog
#: age versus the delay bound D, and monitor-violation escalation.
def example_rules(delay_bound: int = 32) -> list[AlertRule]:
    return [
        AlertRule(
            name="ingest-stalled",
            series="stream.admitted",
            kind="stall",
            window=4,
            resolve_window=1,
            severity="critical",
        ),
        AlertRule(
            name="rejection-rate-high",
            series="stream.rejection_rate",
            kind="threshold",
            op=">",
            value=0.25,
            window=3,
            resolve_window=3,
            severity="warning",
        ),
        AlertRule(
            name="backlog-age-exceeds-D",
            series="engine.backlog_age.mean",
            kind="threshold",
            op=">",
            value=float(2 * delay_bound),
            window=2,
            resolve_window=2,
            severity="warning",
        ),
        AlertRule(
            name="backlog-ramp",
            series="engine.queue_depth.mean",
            kind="rate_of_change",
            op=">",
            value=1.0,
            window=3,
            resolve_window=2,
            severity="warning",
        ),
        AlertRule(
            name="monitor-violations",
            series="monitor.violations",
            kind="threshold",
            op=">",
            value=0.0,
            window=1,
            resolve_window=1,
            severity="critical",
        ),
    ]
