"""Adaptive sampling tracer: overhead-bounded round-level downsampling.

Full tracing is expensive at production scale — a live sink on a loaded
EXP-S cell costs well over 100% of the untraced wall clock, almost all
of it per-round detail (round spans, phase markers, execute events).
This module keeps full observability *on* by shedding exactly that
detail, deterministically, while guaranteeing everything the analysis
layers actually depend on survives:

**What is never sampled away**

* every ``span_start`` / ``span_end`` whose name is not ``"round"``
  (the ``run`` span and the search/offline spans above it);
* every ``annotation`` (epoch/super-epoch marks written by analysis);
* every *monitor-relevant* event — the names the live invariant
  monitors (:mod:`repro.obs.monitor`) register handlers for
  (:data:`MONITOR_EVENT_NAMES`).  A monitor attached behind a sampler
  therefore sees the exact record stream it needs: verdicts on a
  sampled trace equal verdicts on the full trace;
* every record without a round index (run-level events).

**What is sampled**: ``round`` spans (start and end fall together, so
span balance is preserved), ``phase`` markers, and round-scoped leaf
events outside the monitor set (``execute``, ``fast_forward``,
``cache_hit``), per *round*: a round is either fully detailed or
summary-only, decided by a seeded hash of the round index — the kept
set is a pure function of ``(seed, probability)``, so two runs at the
same fixed probability produce identical sampled traces.

**The adaptive controller** holds the *sampleable* tracing overhead
under a target fraction of wall clock: it prices emissions by timing a
strided subsample of sink calls (scaled by
:data:`RECORD_COST_MULTIPLIER` to cover record construction and the
instrumented-loop wrapper the sink never sees), estimates the overhead
fraction, and walks the keep probability multiplicatively toward the
target.  The always-keep floor above is deliberately *outside* the
controlled quantity — it is the price of exact monitor verdicts and
scales with workload event rate, not with round count; the CI gate
(``benchmarks/check_tracing_overhead.py``) measures both separately.

Sampling is strictly observational: costs are bit-identical with and
without it (gated in CI), and attaching a sampler never mutates
simulation state.  The engine cooperates when it can: a
:class:`~repro.simulation.engine.BatchedEngine` consults
``tracer.keep_round(k)`` once per round and runs the *plain* round body
for sampled-out rounds, shedding the span/phase indirection itself —
without this hook the sampler still works (records are suppressed at
emission) but only saves sink costs.
"""

from __future__ import annotations

import time
from typing import Any, Iterable

from repro.obs.tracing import Sink, TraceRecord, Tracer

#: Event names the live monitors (repro.obs.monitor) register handlers
#: for, plus ``violation``: these are never sampled away, so monitor
#: verdicts on a sampled stream equal verdicts on the full stream.
MONITOR_EVENT_NAMES = frozenset(
    {
        "arrival",
        "eligible",
        "ineligible",
        "timestamp",
        "wrap",
        "cache_in",
        "cache_out",
        "drop",
        "reconfig",
        "violation",
    }
)

#: Measured sink-emit seconds underestimate the true per-record cost:
#: the tracer also pays record construction and the engine pays the
#: instrumented round wrapper, neither visible to the sink timer.  On
#: the EXP-S quick cells those parts are ~3x the memory-sink emit time,
#: so the controller scales its price estimate by this factor; for
#: heavier sinks (JSONL) the factor overstates, which only makes the
#: controller shed sooner — the safe direction.
RECORD_COST_MULTIPLIER = 4.0


def _mix64(seed: int, value: int) -> int:
    """Deterministic 64-bit mix (splitmix64 finalizer)."""
    z = (seed * 0x9E3779B97F4A7C15 + value + 0x9E3779B97F4A7C15) & _MASK
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK
    return z ^ (z >> 31)


_MASK = (1 << 64) - 1
#: Probability quantum: decisions compare a 16-bit hash slice against
#: ``round(p * 65536)``, so the effective probability moves in steps of
#: 1/65536 and p == 1.0 keeps everything.
_P_SCALE = 65536


class SamplingController:
    """Seeded keep/drop policy plus the adaptive overhead governor.

    Parameters
    ----------
    target_overhead:
        Fraction of wall clock the *sampleable* tracing work may cost
        (default 5%).  Ignored when ``probability`` is fixed.
    probability:
        Fix the round keep probability (disables adaptation).  ``None``
        (default) adapts: the controller starts at ``min_probability``
        and only *raises* the rate while the measured overhead stays
        under target, so the budget is respected from round zero
        (starting high and shedding would overspend during the ramp
        down).  ``0.0`` keeps only the always-keep floor.
    seed:
        Seed of the per-round hash; two controllers with equal seed and
        equal (fixed) probability keep identical round sets.
    min_probability:
        Adaptive lower clamp — the controller never sheds below this,
        so a few detailed rounds always survive for timeline rendering.
    keep_events:
        Event names exempt from sampling (default:
        :data:`MONITOR_EVENT_NAMES`).
    adjust_every:
        Rounds between governor adjustments.
    """

    __slots__ = (
        "target_overhead",
        "probability",
        "adaptive",
        "seed",
        "min_probability",
        "keep_events",
        "adjust_every",
        "calibration_stride",
        "rounds_seen",
        "rounds_kept",
        "emitted",
        "suppressed",
        "_threshold",
        "_round",
        "_round_keep",
        "_started",
        "_emit_seconds",
        "_emit_timed",
        "_emit_count",
        "_next_adjust",
        "overhead_estimate",
    )

    def __init__(
        self,
        *,
        target_overhead: float = 0.05,
        probability: float | None = None,
        seed: int = 0,
        min_probability: float = 1 / 64,
        keep_events: Iterable[str] = MONITOR_EVENT_NAMES,
        adjust_every: int = 64,
        calibration_stride: int = 16,
    ) -> None:
        if target_overhead <= 0:
            raise ValueError("target_overhead must be positive")
        if probability is not None and not 0.0 <= probability <= 1.0:
            raise ValueError("probability must be in [0, 1]")
        self.target_overhead = target_overhead
        self.adaptive = probability is None
        self.seed = seed
        self.min_probability = min(max(min_probability, 0.0), 1.0)
        self.probability = (
            self.min_probability if probability is None else probability
        )
        self.keep_events = frozenset(keep_events)
        self.adjust_every = max(1, adjust_every)
        self.calibration_stride = max(1, calibration_stride)
        self.rounds_seen = 0
        self.rounds_kept = 0
        self.emitted = 0
        self.suppressed = 0
        self._threshold = round(self.probability * _P_SCALE)
        self._round: int | None = None
        self._round_keep = True
        self._started: float | None = None
        self._emit_seconds = 0.0
        self._emit_timed = 0
        self._emit_count = 0
        self._next_adjust = self.adjust_every
        self.overhead_estimate = 0.0

    # ------------------------------------------------------------- policy

    def keep_round(self, k: int) -> bool:
        """Decide (and cache) whether round ``k`` keeps full detail."""
        if k == self._round:
            return self._round_keep
        self._round = k
        self.rounds_seen += 1
        if self._started is None:
            self._started = time.perf_counter()
        if self.adaptive and self.rounds_seen >= self._next_adjust:
            self._adjust()
        keep = (_mix64(self.seed, k) & 0xFFFF) < self._threshold
        self._round_keep = keep
        if keep:
            self.rounds_kept += 1
        return keep

    def admits(self, kind: str, name: str, round_index: int | None) -> bool:
        """Keep/drop decision for one record (see module docstring)."""
        if kind == "event":
            if name in self.keep_events or round_index is None:
                return True
            return self.keep_round(round_index)
        if kind == "annotation":
            return True
        # Span boundary: only round spans are sampleable.
        if name != "round":
            return True
        if round_index is None:  # defensive: round spans carry an index
            return True
        return self.keep_round(round_index)

    # ----------------------------------------------------------- governor

    def time_this_emit(self) -> bool:
        """Strided calibration: time every Nth admitted emission."""
        self._emit_count += 1
        return self._emit_count % self.calibration_stride == 0

    def record_emit_seconds(self, seconds: float) -> None:
        self._emit_seconds += seconds
        self._emit_timed += 1

    def _adjust(self) -> None:
        self._next_adjust = self.rounds_seen + self.adjust_every
        if self._started is None or not self._emit_timed:
            return
        elapsed = time.perf_counter() - self._started
        if elapsed <= 0:
            return
        per_record = self._emit_seconds / self._emit_timed
        spent = per_record * RECORD_COST_MULTIPLIER * self._emit_count
        self.overhead_estimate = spent / elapsed
        if self.overhead_estimate <= 0:
            return
        # Walk the probability multiplicatively toward the target, at
        # most halving/doubling per step so one noisy window cannot
        # collapse or explode the rate.
        step = self.target_overhead / self.overhead_estimate
        step = min(2.0, max(0.5, step))
        self.probability = min(
            1.0, max(self.min_probability, self.probability * step)
        )
        self._threshold = round(self.probability * _P_SCALE)

    # -------------------------------------------------------------- stats

    def stats(self) -> dict[str, Any]:
        """JSON-ready sampling telemetry (surfaced by ``repro record``)."""
        offered = self.emitted + self.suppressed
        return {
            "adaptive": self.adaptive,
            "probability": round(self.probability, 6),
            "target_overhead": self.target_overhead,
            "overhead_estimate": round(self.overhead_estimate, 6),
            "rounds_seen": self.rounds_seen,
            "rounds_kept": self.rounds_kept,
            "records_emitted": self.emitted,
            "records_suppressed": self.suppressed,
            "sampled_fraction": (
                round(self.emitted / offered, 6) if offered else 1.0
            ),
        }


class SamplingTracer(Tracer):
    """A :class:`~repro.obs.tracing.Tracer` that samples at emission time.

    Suppression happens *before* the :class:`TraceRecord` is built, so a
    sampled-out record costs one set lookup and one hash — and the
    batched engine consults :meth:`keep_round` once per round to skip
    the instrumented round wrapper entirely for sampled-out rounds.

    ``replay()`` (worker record flow-back) intentionally bypasses
    sampling: records replayed from a parallel worker were already
    sampled — or deliberately not — at their source.
    """

    __slots__ = ("controller",)

    def __init__(
        self,
        sink: Sink | None = None,
        *,
        worker: str | None = None,
        controller: SamplingController | None = None,
        **controller_kwargs: Any,
    ) -> None:
        super().__init__(sink, worker=worker)
        if controller is not None and controller_kwargs:
            raise ValueError(
                "pass either a controller or controller kwargs, not both"
            )
        self.controller = controller or SamplingController(**controller_kwargs)

    def keep_round(self, k: int) -> bool:
        """Engine hook: full detail for round ``k``?  (Cached per round.)"""
        return self.controller.keep_round(k)

    def _emit(self, kind: str, name: str, round_index, data) -> None:
        if not self.enabled:
            return
        ctrl = self.controller
        if not ctrl.admits(kind, name, round_index):
            ctrl.suppressed += 1
            return
        ctrl.emitted += 1
        record = TraceRecord(self._seq, kind, name, round_index, data, self.worker)
        self._seq += 1
        if ctrl.time_this_emit():
            t0 = time.perf_counter()
            self.sink.emit(record)
            ctrl.record_emit_seconds(time.perf_counter() - t0)
        else:
            self.sink.emit(record)


class SamplingSink(Sink):
    """Sink-level sampling: wrap any inner sink with the same policy.

    For composition points that receive an already-built record stream —
    a :class:`~repro.obs.tracing.TeeSink` leg, the general engine, or
    post-hoc downsampling of a recorded trace.  Emission-time savings
    are smaller than :class:`SamplingTracer` (records already exist),
    but the kept set is identical for equal controller settings.
    """

    def __init__(
        self,
        inner: Sink,
        *,
        controller: SamplingController | None = None,
        **controller_kwargs: Any,
    ) -> None:
        if controller is not None and controller_kwargs:
            raise ValueError(
                "pass either a controller or controller kwargs, not both"
            )
        self.inner = inner
        self.controller = controller or SamplingController(**controller_kwargs)
        self.is_null = inner.is_null

    def emit(self, record: TraceRecord) -> None:
        ctrl = self.controller
        if not ctrl.admits(record.kind, record.name, record.round_index):
            ctrl.suppressed += 1
            return
        ctrl.emitted += 1
        if ctrl.time_this_emit():
            t0 = time.perf_counter()
            self.inner.emit(record)
            ctrl.record_emit_seconds(time.perf_counter() - t0)
        else:
            self.inner.emit(record)

    def close(self) -> None:
        self.inner.close()


def sample_records(
    records: Iterable[TraceRecord],
    *,
    probability: float,
    seed: int = 0,
    keep_events: Iterable[str] = MONITOR_EVENT_NAMES,
) -> list[TraceRecord]:
    """Post-hoc: the sampled subset of an existing record stream.

    Pure function of its arguments — the same records, probability, and
    seed always select the same subset (the fixed-probability path of
    :class:`SamplingController`).
    """
    controller = SamplingController(
        probability=probability, seed=seed, keep_events=keep_events
    )
    return [
        record
        for record in records
        if controller.admits(record.kind, record.name, record.round_index)
    ]
