"""Live ops surface: a threaded HTTP service over the observability state.

The ROADMAP's streaming north star makes the Prometheus exporter and
monitors "the live ops surface" — this module is that surface.  A
long-running session (a big ``run_matrix``, an adversary search, a
future streaming scheduler) keeps one :class:`OpsState` and serves it
with :class:`OpsService`, a stdlib ``http.server`` running in a daemon
thread:

* ``GET /metrics`` — live Prometheus text exposition of the aggregated
  :class:`~repro.obs.metrics.MetricsRegistry`.  Worker snapshots fold in
  through :meth:`OpsState.publish_snapshot` (the existing atomic
  ``merge_snapshot``), so an external Prometheus scraping this endpoint
  sees exactly the merged in-process registry plus a few ``ops_*``
  self-metrics.
* ``GET /health`` — JSON liveness/correctness summary: HTTP 200 while
  no monitor violation or trace-integrity error has been reported *and*
  no critical alert rule is firing, HTTP 503 otherwise (scrape-side
  alerting needs no body parsing).
* ``GET /runs`` — the run registry as JSON (``?limit=N`` and
  ``?kind=simulate|search|offline|experiment|matrix`` filter); ``GET
  /runs/<id>`` one record by (abbreviable) id.
* ``GET /series`` — the latest published
  :class:`~repro.obs.timeseries.SeriesRecorder` snapshot (ring-buffered
  metric history; ``?name=PREFIX`` filters series by name prefix).
* ``GET /alerts`` — the latest published
  :class:`~repro.obs.alerts.AlertEngine` payload (rule states, firing
  set, fire/resolve events).

Everything is stdlib-only and thread-safe: handlers run on the server's
threads while the simulation publishes from its own, synchronized on one
lock inside :class:`OpsState`.
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Mapping
from urllib.parse import parse_qs, urlparse

from repro.obs.export import prometheus_text
from repro.obs.metrics import MetricsRegistry
from repro.obs.registry import RunRegistry


class OpsState:
    """Shared, lock-protected observability state behind the service.

    One instance aggregates everything a scrape needs: the merged
    metrics registry, monitor/trace health counters, and (optionally)
    the persistent run registry.  All mutating entry points take the
    internal lock, so any number of worker callbacks and HTTP handler
    threads can interleave safely.
    """

    def __init__(self, *, run_registry: RunRegistry | None = None) -> None:
        self._lock = threading.RLock()
        self.metrics = MetricsRegistry()
        self.run_registry = run_registry
        self.started = time.time()
        self.monitor_violations = 0
        self.trace_integrity_errors = 0
        self.snapshots_merged = 0
        self.scrapes = 0
        self.runs_recorded = 0
        self.stream_status: dict[str, Any] | None = None
        self.stream_updates = 0
        self.series_snapshot: dict[str, Any] | None = None
        self.series_updates = 0
        self.alerts_snapshot: dict[str, Any] | None = None
        self.alerts_updates = 0

    # ------------------------------------------------------------ publish

    def publish_snapshot(self, snapshot: Mapping[str, Any]) -> None:
        """Fold one worker registry snapshot into the live registry.

        Delegates to the validate-then-apply
        :meth:`~repro.obs.metrics.MetricsRegistry.merge_snapshot`, so a
        corrupt snapshot raises without half-merging; holding the lock
        makes the merge atomic with respect to concurrent scrapes.
        """
        with self._lock:
            self.metrics.merge_snapshot(snapshot)
            self.snapshots_merged += 1

    def report_violations(self, count: int) -> None:
        """Report ``count`` monitor violations (0 is a no-op)."""
        if count:
            with self._lock:
                self.monitor_violations += count

    def report_integrity_error(self) -> None:
        with self._lock:
            self.trace_integrity_errors += 1

    def note_run_recorded(self, count: int = 1) -> None:
        with self._lock:
            self.runs_recorded += count

    def publish_stream(self, status: Mapping[str, Any]) -> None:
        """Replace the live streaming-session status (served at ``/stream``).

        Streaming drivers call this after each segment/checkpoint with a
        plain JSON-safe mapping (round, offered/admitted/rejected, cost,
        last checkpoint); the service only stores and serves it.
        """
        with self._lock:
            self.stream_status = dict(status)
            self.stream_updates += 1

    def publish_series(self, snapshot: Mapping[str, Any]) -> None:
        """Replace the served time-series snapshot (``/series``).

        Producers call this with
        :meth:`~repro.obs.timeseries.SeriesRecorder.snapshot` after each
        sample batch; the service stores a copy, so handler threads
        never touch the live recorder.
        """
        with self._lock:
            self.series_snapshot = dict(snapshot)
            self.series_updates += 1

    def publish_alerts(self, payload: Mapping[str, Any]) -> None:
        """Replace the served alert payload (``/alerts``; feeds /health).

        Expects :meth:`~repro.obs.alerts.AlertEngine.payload`; while the
        stored payload has ``critical_firing`` true, :attr:`healthy`
        goes false and ``/health`` serves 503.
        """
        with self._lock:
            self.alerts_snapshot = dict(payload)
            self.alerts_updates += 1

    # ------------------------------------------------------------- render

    @property
    def critical_alerts_firing(self) -> bool:
        return bool(
            self.alerts_snapshot
            and self.alerts_snapshot.get("critical_firing")
        )

    @property
    def healthy(self) -> bool:
        return (
            self.monitor_violations == 0
            and self.trace_integrity_errors == 0
            and not self.critical_alerts_firing
        )

    def health(self) -> dict[str, Any]:
        with self._lock:
            firing: list[str] = []
            if self.alerts_snapshot:
                firing = list(self.alerts_snapshot.get("firing", []))
            return {
                "status": "ok" if self.healthy else "degraded",
                "uptime_seconds": round(time.time() - self.started, 3),
                "monitor_violations": self.monitor_violations,
                "trace_integrity_errors": self.trace_integrity_errors,
                "alerts_firing": firing,
                "critical_alerts_firing": self.critical_alerts_firing,
                "snapshots_merged": self.snapshots_merged,
                "runs_recorded": self.runs_recorded,
                "metrics_instruments": len(self.metrics.names()),
            }

    def metrics_text(self) -> str:
        """Prometheus exposition: merged registry + ``ops_*`` self-metrics."""
        with self._lock:
            self.scrapes += 1
            body = prometheus_text(self.metrics)
            ops = MetricsRegistry()
            ops.counter("scrapes").inc(self.scrapes)
            ops.counter("snapshots_merged").inc(self.snapshots_merged)
            ops.counter("monitor_violations").inc(self.monitor_violations)
            ops.counter("runs_recorded").inc(self.runs_recorded)
            ops.gauge("uptime_seconds").set(time.time() - self.started)
            ops.gauge("healthy").set(1.0 if self.healthy else 0.0)
        return body + prometheus_text(ops, prefix="ops")

    def stream_payload(self) -> dict[str, Any]:
        with self._lock:
            payload: dict[str, Any] = {
                "schema": "repro-stream/v1",
                "active": self.stream_status is not None,
                "updates": self.stream_updates,
            }
            if self.stream_status is not None:
                payload["status"] = dict(self.stream_status)
        return payload

    def series_payload(self, *, name_prefix: str | None = None) -> dict[str, Any]:
        with self._lock:
            payload: dict[str, Any] = {
                "schema": "repro-series/v1",
                "active": self.series_snapshot is not None,
                "updates": self.series_updates,
            }
            if self.series_snapshot is not None:
                snapshot = dict(self.series_snapshot)
                series = dict(snapshot.get("series", {}))
                if name_prefix is not None:
                    series = {
                        name: data
                        for name, data in series.items()
                        if name.startswith(name_prefix)
                    }
                snapshot["series"] = series
                payload["snapshot"] = snapshot
        return payload

    def alerts_payload(self) -> dict[str, Any]:
        with self._lock:
            payload: dict[str, Any] = {
                "schema": "repro-alerts/v1",
                "active": self.alerts_snapshot is not None,
                "updates": self.alerts_updates,
            }
            if self.alerts_snapshot is not None:
                payload.update(self.alerts_snapshot)
        return payload

    def runs_payload(
        self, *, limit: int | None = None, kind: str | None = None
    ) -> dict[str, Any]:
        if self.run_registry is None:
            return {"schema": "repro-runs/v1", "count": 0, "runs": []}
        records = self.run_registry.records()
        if kind is not None:
            records = [r for r in records if r.kind == kind]
        if limit is not None:
            records = records[-limit:]
        return {
            "schema": "repro-runs/v1",
            "count": len(records),
            "skipped_lines": self.run_registry.skipped_lines,
            "runs": [record.to_dict() for record in records],
        }


class _OpsHandler(BaseHTTPRequestHandler):
    """Routes one request against the server's :class:`OpsState`."""

    server_version = "repro-ops/1"
    protocol_version = "HTTP/1.1"

    # The server attribute is provided by ThreadingHTTPServer; the state
    # rides on it (see OpsService).
    @property
    def state(self) -> OpsState:
        return self.server.ops_state  # type: ignore[attr-defined]

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        if getattr(self.server, "ops_verbose", False):  # pragma: no cover
            super().log_message(format, *args)

    def _send(self, status: int, content_type: str, body: bytes) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_json(self, status: int, payload: Mapping[str, Any]) -> None:
        body = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
        self._send(status, "application/json; charset=utf-8", body)

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        try:
            self._route()
        except BrokenPipeError:  # pragma: no cover - client went away
            pass
        except Exception as error:  # noqa: BLE001 - surface as 500
            try:
                self._send_json(500, {"error": str(error)})
            except Exception:  # pragma: no cover
                pass

    def _route(self) -> None:
        parsed = urlparse(self.path)
        path = parsed.path.rstrip("/") or "/"
        query = parse_qs(parsed.query)
        if path == "/metrics":
            body = self.state.metrics_text().encode("utf-8")
            self._send(
                200, "text/plain; version=0.0.4; charset=utf-8", body
            )
            return
        if path == "/health":
            payload = self.state.health()
            self._send_json(200 if payload["status"] == "ok" else 503, payload)
            return
        if path == "/stream":
            self._send_json(200, self.state.stream_payload())
            return
        if path == "/series":
            prefix = query.get("name", [None])[0]
            self._send_json(
                200, self.state.series_payload(name_prefix=prefix)
            )
            return
        if path == "/alerts":
            self._send_json(200, self.state.alerts_payload())
            return
        if path == "/runs":
            limit = None
            if "limit" in query:
                try:
                    limit = max(0, int(query["limit"][0]))
                except ValueError:
                    self._send_json(400, {"error": "limit must be an integer"})
                    return
            kind = query.get("kind", [None])[0]
            self._send_json(
                200, self.state.runs_payload(limit=limit, kind=kind)
            )
            return
        if path.startswith("/runs/"):
            run_id = path[len("/runs/"):]
            if self.state.run_registry is None:
                self._send_json(404, {"error": "no run registry attached"})
                return
            try:
                record = self.state.run_registry.get(run_id)
            except KeyError as error:
                self._send_json(404, {"error": str(error)})
                return
            self._send_json(200, record.to_dict())
            return
        if path == "/":
            self._send_json(
                200,
                {
                    "service": "repro-ops",
                    "endpoints": [
                        "/metrics",
                        "/health",
                        "/stream",
                        "/series",
                        "/alerts",
                        "/runs",
                        "/runs/<id>",
                    ],
                },
            )
            return
        self._send_json(404, {"error": f"unknown path {path!r}"})


class OpsService:
    """Threaded HTTP server over an :class:`OpsState`.

    ``port=0`` binds an ephemeral port (read :attr:`port` after
    :meth:`start`).  The serving thread is a daemon, so a crashed main
    process never hangs on it; :meth:`stop` shuts down cleanly.  Usable
    as a context manager::

        state = OpsState()
        with OpsService(state) as service:
            ...  # run work, publish snapshots; scrape :service.port
    """

    def __init__(
        self,
        state: OpsState,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        verbose: bool = False,
    ) -> None:
        self.state = state
        self.host = host
        self._requested_port = port
        self.verbose = verbose
        self._server: ThreadingHTTPServer | None = None
        self._thread: threading.Thread | None = None

    @property
    def port(self) -> int:
        if self._server is None:
            raise RuntimeError("service is not running; call start() first")
        return self._server.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "OpsService":
        if self._server is not None:
            raise RuntimeError("service already started")
        server = ThreadingHTTPServer(
            (self.host, self._requested_port), _OpsHandler
        )
        server.daemon_threads = True
        server.ops_state = self.state  # type: ignore[attr-defined]
        server.ops_verbose = self.verbose  # type: ignore[attr-defined]
        self._server = server
        self._thread = threading.Thread(
            target=server.serve_forever,
            name="repro-ops-service",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        if self._server is not None:
            self._server.shutdown()
            self._server.server_close()
            self._server = None
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None

    def __enter__(self) -> "OpsService":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()
