"""Exporters: Prometheus text exposition and Chrome trace-event JSON.

Bridges the in-process observability to standard tooling with zero new
dependencies:

* :func:`prometheus_text` renders a :class:`~repro.obs.metrics.MetricsRegistry`
  (or one of its snapshots) in the Prometheus text exposition format —
  scrapeable as a textfile-collector artifact or diffable in CI.
* :func:`chrome_trace_events` converts span/event records from the trace
  bus into the Chrome trace-event format, loadable in ``chrome://tracing``
  or https://ui.perfetto.dev.  The timeline is in *record-sequence*
  units (1 µs per record): rounds are logical time in this system, so a
  span's width shows how many records — how much activity — it covered,
  and the ``round`` argument on every slice gives the simulation time.

Wired into ``repro obs export``; see docs/observability.md for a
walkthrough.
"""

from __future__ import annotations

import json
import math
from typing import Any, Iterable, Mapping, Sequence

from repro.obs.tracing import TraceRecord

#: Exposition-format escapes.  HELP text escapes backslash and newline;
#: label *values* additionally escape the double quote that delimits
#: them.  (Label names are sanitized, not escaped — the format allows
#: no escapes there.)
_HELP_ESCAPES = str.maketrans({"\\": r"\\", "\n": r"\n"})
_LABEL_ESCAPES = str.maketrans({"\\": r"\\", "\n": r"\n", '"': r"\""})


def escape_help(text: str) -> str:
    """Escape ``\\`` and newlines for a ``# HELP`` line."""
    return str(text).translate(_HELP_ESCAPES)


def escape_label_value(value: str) -> str:
    """Escape ``\\``, newlines, and ``"`` for a label value."""
    return str(value).translate(_LABEL_ESCAPES)


def _sanitize(name: str) -> str:
    """Metric name to Prometheus charset: dots and dashes to underscores."""
    out = []
    for ch in name:
        out.append(ch if ch.isalnum() or ch == "_" else "_")
    sanitized = "".join(out)
    if sanitized and sanitized[0].isdigit():
        sanitized = "_" + sanitized
    return sanitized


def _format_value(value: float) -> str:
    value = float(value)
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if math.isnan(value):
        return "NaN"
    if value != int(value):
        return repr(value)
    return str(int(value))


def _format_gauge(value: float) -> str:
    value = float(value)
    if math.isinf(value) or math.isnan(value):
        return _format_value(value)
    return repr(value)


def _label_suffix(
    labels: Mapping[str, str] | None, extra: str | None = None
) -> str:
    """``{k="v",...}`` with escaped values, or ``""`` when unlabeled."""
    parts = [
        f'{_sanitize(str(key))}="{escape_label_value(value)}"'
        for key, value in (labels or {}).items()
    ]
    if extra is not None:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def prometheus_text(
    source: Any,
    *,
    prefix: str = "repro",
    labels: Mapping[str, str] | None = None,
    help_texts: Mapping[str, str] | None = None,
) -> str:
    """Render metrics in the Prometheus text exposition format.

    ``source`` is a :class:`~repro.obs.metrics.MetricsRegistry` or a
    ``snapshot()`` mapping.  Counters get a ``_total`` suffix, histograms
    the standard cumulative ``_bucket{le=...}`` / ``_sum`` / ``_count``
    triplet.  Output ends with a trailing newline, per the format spec.

    ``labels`` attaches a constant label set to every series (e.g.
    ``{"worker": tag}`` when exposing per-worker registries side by
    side); values are escaped per the format (``\\`` ``\\n`` ``"``).
    ``help_texts`` maps *unsanitized* instrument names to ``# HELP``
    text, escaped likewise.  Non-finite values render as ``+Inf`` /
    ``-Inf`` / ``NaN``.
    """
    snapshot: Mapping[str, Any]
    if hasattr(source, "snapshot"):
        snapshot = source.snapshot()
    else:
        snapshot = source

    lines: list[str] = []
    suffix = _label_suffix(labels)
    helps = help_texts or {}

    def _head(name: str, metric: str, kind: str) -> None:
        if name in helps:
            lines.append(f"# HELP {metric} {escape_help(helps[name])}")
        lines.append(f"# TYPE {metric} {kind}")

    for name in sorted(snapshot.get("counters", {})):
        metric = f"{prefix}_{_sanitize(name)}_total"
        _head(name, metric, "counter")
        lines.append(
            f"{metric}{suffix} {_format_value(snapshot['counters'][name])}"
        )

    for name in sorted(snapshot.get("gauges", {})):
        metric = f"{prefix}_{_sanitize(name)}"
        _head(name, metric, "gauge")
        lines.append(
            f"{metric}{suffix} {_format_gauge(snapshot['gauges'][name])}"
        )

    for name in sorted(snapshot.get("histograms", {})):
        data = snapshot["histograms"][name]
        metric = f"{prefix}_{_sanitize(name)}"
        _head(name, metric, "histogram")
        cumulative = 0
        for bound, count in zip(data["buckets"], data["counts"]):
            cumulative += count
            le = _label_suffix(labels, f'le="{bound:g}"')
            lines.append(f"{metric}_bucket{le} {cumulative}")
        inf = _label_suffix(labels, 'le="+Inf"')
        lines.append(f'{metric}_bucket{inf} {data["count"]}')
        lines.append(f"{metric}_sum{suffix} {_format_value(data['sum'])}")
        lines.append(f"{metric}_count{suffix} {data['count']}")

    return "\n".join(lines) + "\n" if lines else ""


def chrome_trace_events(
    records: Iterable[TraceRecord], *, pid: int = 1
) -> dict[str, Any]:
    """Convert bus records to the Chrome trace-event JSON object.

    Span records become duration events (``ph: B``/``E``), leaf events
    and annotations become instants (``ph: i``).  Each record advances
    the clock by 1 µs (sequence-time; see the module docstring), worker
    tags map to thread ids so parallel-runner flows render as separate
    tracks, and every slice carries its payload plus the simulation
    ``round`` in ``args``.
    """
    events: list[dict[str, Any]] = []
    tids: dict[str | None, int] = {None: 0}
    for ts, record in enumerate(records):
        tid = tids.get(record.worker)
        if tid is None:
            tid = tids[record.worker] = len(tids)
        args: dict[str, Any] = dict(record.data)
        if record.round_index is not None:
            args["round"] = record.round_index
        if record.kind == "span_start":
            phase = "B"
        elif record.kind == "span_end":
            phase = "E"
        else:
            phase = "i"
        event: dict[str, Any] = {
            "name": record.name,
            "ph": phase,
            "ts": ts,
            "pid": pid,
            "tid": tid,
            "cat": record.kind,
        }
        if phase == "i":
            event["s"] = "t"  # thread-scoped instant
        if args:
            event["args"] = args
        events.append(event)
    metadata = [
        {
            "name": "thread_name",
            "ph": "M",
            "pid": pid,
            "tid": tid,
            "args": {"name": worker if worker is not None else "main"},
        }
        for worker, tid in tids.items()
    ]
    return {"traceEvents": metadata + events, "displayTimeUnit": "ms"}


def write_chrome_trace(
    records: Sequence[TraceRecord], path, *, pid: int = 1
) -> int:
    """Write :func:`chrome_trace_events` JSON to ``path``; returns #events."""
    from pathlib import Path

    payload = chrome_trace_events(records, pid=pid)
    Path(path).write_text(json.dumps(payload), encoding="utf-8")
    return len(payload["traceEvents"])
