"""Live invariant monitors: the paper's correctness machinery, online.

Before this module the Lemma 3.3–3.17 budgets were only checkable *after*
a run, from a full-mode ``Trace`` (`repro.analysis.credits` /
`repro.analysis.invariants`).  A :class:`TraceMonitor` is a
:class:`~repro.obs.tracing.Sink`, so it attaches to any engine through
the existing ``tracer=`` keyword — typically teed next to a durable sink::

    monitors = standard_monitors()
    tracer = Tracer(TeeSink(JsonlSink(path), *monitors))
    result = simulate(instance, scheme, m, record="costs", tracer=tracer)
    tracer.close()          # monitors run their end-of-stream audits here
    for monitor in monitors:
        assert not monitor.violations

Monitors reconstruct the Section 3.2/3.4 structure live from the record
stream using the *same* streaming cores the offline auditors run
(:class:`~repro.analysis.epochs.EpochStreamBuilder`,
:class:`~repro.analysis.credits.EpochCreditLedger`,
:func:`~repro.analysis.credits.super_epoch_credit_core`), so online and
offline verdicts agree bit for bit — property-tested in
``tests/test_obs_monitor.py``.  They are strictly observational: the
bit-identity suite asserts attaching any monitor leaves ``CostBreakdown``
unchanged on both engines × speed 1/2 × sparse/dense.

Findings are typed :class:`Violation` records under a raise-or-collect
policy: ``policy="collect"`` (default) accumulates them on
``monitor.violations``; ``policy="raise"`` raises :class:`MonitorError`
at the offending record, which surfaces through the engine's emit path
with the simulation state intact under a debugger.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.obs.tracing import Sink, TraceRecord


@dataclass(frozen=True)
class Violation:
    """One invariant finding from a live monitor."""

    monitor: str
    kind: str
    round_index: int | None
    message: str
    data: dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:  # pragma: no cover - display convenience
        where = f" @round {self.round_index}" if self.round_index is not None else ""
        return f"[{self.monitor}] {self.kind}{where}: {self.message}"


class MonitorError(RuntimeError):
    """Raised by a ``policy="raise"`` monitor at the offending record."""

    def __init__(self, violation: Violation) -> None:
        super().__init__(str(violation))
        self.violation = violation


class TraceMonitor(Sink):
    """Base class: a sink that checks invariants as records stream by.

    Subclasses register per-event handlers by defining ``on_event_<name>``
    methods and may override :meth:`on_run_start` / :meth:`on_run_end` /
    :meth:`finalize`.  The run span's payload (algorithm, resources,
    speed, delta, engine, ...) is captured on ``self.run_info`` before
    any event handler fires.  :meth:`close` runs :meth:`finalize` — the
    end-of-stream audits — exactly once.
    """

    name = "monitor"

    def __init__(self, *, policy: str = "collect") -> None:
        if policy not in ("raise", "collect"):
            raise ValueError("policy must be 'raise' or 'collect'")
        self.policy = policy
        self.violations: list[Violation] = []
        self.run_info: dict[str, Any] = {}
        self.records_seen = 0
        self._finalized = False
        handlers: dict[str, Callable[[TraceRecord], None]] = {}
        for attr in dir(self):
            if attr.startswith("on_event_"):
                handlers[attr[len("on_event_"):]] = getattr(self, attr)
        self._event_handlers = handlers

    # ------------------------------------------------------------- plumbing

    def emit(self, record: TraceRecord) -> None:
        self.records_seen += 1
        kind = record.kind
        if kind == "event":
            handler = self._event_handlers.get(record.name)
            if handler is not None:
                handler(record)
        elif kind == "span_start":
            if record.name == "run":
                self.run_info = dict(record.data)
                self.on_run_start(record)
        elif kind == "span_end":
            if record.name == "run":
                self.on_run_end(record)

    def close(self) -> None:
        if not self._finalized:
            self._finalized = True
            self.finalize()

    def report(
        self,
        kind: str,
        round_index: int | None,
        message: str,
        **data: Any,
    ) -> None:
        """File a finding; raises immediately under ``policy="raise"``."""
        violation = Violation(self.name, kind, round_index, message, data)
        self.violations.append(violation)
        if self.policy == "raise":
            raise MonitorError(violation)

    @property
    def ok(self) -> bool:
        return not self.violations

    # ----------------------------------------------------- subclass hooks

    def on_run_start(self, record: TraceRecord) -> None:
        """Called with the ``run`` span-start record (default: no-op)."""

    def on_run_end(self, record: TraceRecord) -> None:
        """Called with the ``run`` span-end record (default: no-op)."""

    def finalize(self) -> None:
        """End-of-stream audits, run once from :meth:`close`."""

    # -------------------------------------------------------------- helpers

    def _delta(self) -> int:
        """Δ from the run span payload (1 when attached to a bare stream)."""
        return int(self.run_info.get("delta", 1))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        status = "ok" if self.ok else f"{len(self.violations)} violation(s)"
        return f"<{type(self).__name__} {status}, {self.records_seen} records>"


class EpochMonitor(TraceMonitor):
    """Live Section 3.2/3.4 structure reconstruction and consistency.

    Feeds the shared :class:`~repro.analysis.epochs.EpochStreamBuilder`
    from bus events and checks the eligibility protocol online: a color
    must alternate ``eligible``/``ineligible`` (no double transitions),
    and per-color timestamps must be strictly increasing (each
    ``timestamp`` event is only emitted on change).  ``analysis()``
    snapshots the structure at any point; after the run it equals
    :func:`~repro.analysis.epochs.analyze_epochs` on the full trace.
    """

    name = "epoch"

    def __init__(self, *, policy: str = "collect", threshold: int | None = None) -> None:
        super().__init__(policy=policy)
        self._threshold = threshold
        self._builder = None
        self._eligible: set[int] = set()
        self._last_ts: dict[int, int] = {}
        self.super_epochs_closed = 0

    def on_run_start(self, record: TraceRecord) -> None:
        from repro.analysis.epochs import EpochStreamBuilder, super_epoch_threshold

        if self._builder is not None:
            self.report(
                "multiple-runs", record.round_index,
                "monitor instances audit a single run; attach a fresh one",
            )
            return
        threshold = self._threshold
        if threshold is None:
            threshold = super_epoch_threshold(int(self.run_info.get("resources", 2)))
        self._builder = EpochStreamBuilder(threshold=threshold)

    def _require_builder(self):
        if self._builder is None:
            # Bare event stream with no run span: default threshold 1.
            from repro.analysis.epochs import EpochStreamBuilder

            self._builder = EpochStreamBuilder(threshold=self._threshold or 1)
        return self._builder

    def on_event_arrival(self, record: TraceRecord) -> None:
        color = record.data.get("color")
        if color is not None:
            self._require_builder().on_activity(color)

    def on_event_eligible(self, record: TraceRecord) -> None:
        color = record.data["color"]
        self._require_builder().on_activity(color)
        if color in self._eligible:
            self.report(
                "double-eligible", record.round_index,
                f"color {color} marked eligible while already eligible",
                color=color,
            )
        self._eligible.add(color)

    def on_event_ineligible(self, record: TraceRecord) -> None:
        color = record.data["color"]
        if color not in self._eligible:
            self.report(
                "ineligible-without-eligible", record.round_index,
                f"color {color} became ineligible without being eligible",
                color=color,
            )
        self._eligible.discard(color)
        self._require_builder().on_ineligible(color, record.round_index)

    def on_event_timestamp(self, record: TraceRecord) -> None:
        color = record.data["color"]
        ts = record.data.get("timestamp")
        if ts is not None:
            last = self._last_ts.get(color)
            if last is not None and ts <= last:
                self.report(
                    "timestamp-not-increasing", record.round_index,
                    f"color {color} timestamp went {last} -> {ts}",
                    color=color, previous=last, current=ts,
                )
            self._last_ts[color] = ts
        closed = self._require_builder().on_timestamp(color, record.round_index)
        if closed is not None:
            self.super_epochs_closed += 1

    def analysis(self):
        """The :class:`~repro.analysis.epochs.EpochAnalysis` seen so far."""
        return self._require_builder().finish()


class CreditMonitor(TraceMonitor):
    """Live Lemma 3.3 epoch-credit accounting (+ credit-edf balances).

    Streams cache insertions into the shared
    :class:`~repro.analysis.credits.EpochCreditLedger` and audits the
    ``4·numEpochs·Δ`` budget at end of stream — the verdict equals
    :func:`~repro.analysis.credits.audit_epoch_credits` on the full
    trace.  When the run is the runnable ``credit-edf`` scheme, it also
    replays the deposit/spend account from ``wrap``/``cache_in`` events
    and flags any balance that would go negative (the scheme guarantees
    non-negativity by construction, so a violation means the engine and
    the scheme disagree about wraps).
    """

    name = "credit"

    def __init__(self, *, policy: str = "collect", earn_factor: int = 4) -> None:
        super().__init__(policy=policy)
        self.earn_factor = earn_factor
        self._epochs = EpochMonitor(policy="collect")
        self._ledger = None
        self._balances: dict[int, int] = {}
        self._track_balances = False

    def on_run_start(self, record: TraceRecord) -> None:
        from repro.analysis.credits import EpochCreditLedger, scheme_copies

        algorithm = str(self.run_info.get("algorithm", ""))
        self._ledger = EpochCreditLedger(
            delta=self._delta(), copies=scheme_copies(algorithm)
        )
        self._track_balances = algorithm == "credit-edf"
        self._epochs.emit(record)

    def emit(self, record: TraceRecord) -> None:
        super().emit(record)
        if record.kind == "event":
            self._epochs.emit(record)

    def _require_ledger(self):
        if self._ledger is None:
            from repro.analysis.credits import EpochCreditLedger

            self._ledger = EpochCreditLedger(delta=self._delta(), copies=1)
        return self._ledger

    def on_event_wrap(self, record: TraceRecord) -> None:
        if self._track_balances:
            # CreditScheme deposits once per wrapping round (last_wrap
            # change), regardless of how many multiples the batch crossed.
            color = record.data["color"]
            self._balances[color] = (
                self._balances.get(color, 0) + self.earn_factor * self._delta()
            )

    def on_event_cache_in(self, record: TraceRecord) -> None:
        color = record.data["color"]
        ledger = self._require_ledger()
        ledger.on_cache_in(color)
        if self._track_balances:
            balance = self._balances.get(color, 0) - ledger.copies * self._delta()
            self._balances[color] = balance
            if balance < 0:
                self.report(
                    "negative-credit-balance", record.round_index,
                    f"color {color} admitted with insufficient credit "
                    f"(balance {balance} after spend)",
                    color=color, balance=balance,
                )

    def audit(self):
        """The Lemma 3.3 :class:`~repro.analysis.credits.CreditAudit` so far."""
        return self._require_ledger().epoch_credit_audit(
            self._epochs._require_builder().num_epochs
        )

    def finalize(self) -> None:
        audit = self.audit()
        if not audit.within_budget:
            self.report(
                "lemma-3.3-budget", None,
                f"cache insertions charged {audit.charged} exceed the "
                f"4·numEpochs·Δ budget {audit.budget}",
                charged=audit.charged, budget=audit.budget,
            )


class DropContainmentMonitor(TraceMonitor):
    """Live Lemma 3.4 drop containment.

    Per-epoch: a color drops at most ``Δ`` ineligible jobs between two
    ineligibility events (checked at each ``drop``; the counter resets
    when the epoch closes — drops precede the ``ineligible`` that closes
    the epoch in stream order, matching the offline attribution of
    :func:`~repro.analysis.credits.per_epoch_ineligible_drops`).
    Aggregate: total ineligible drops are at most ``numEpochs·Δ`` at end
    of stream, the verdict of
    :func:`~repro.analysis.credits.audit_ineligible_drops`.
    """

    name = "drop-containment"

    def __init__(self, *, policy: str = "collect") -> None:
        super().__init__(policy=policy)
        self._epochs = EpochMonitor(policy="collect")
        self._ledger = None
        self._in_epoch: dict[int, int] = {}

    def on_run_start(self, record: TraceRecord) -> None:
        from repro.analysis.credits import EpochCreditLedger

        self._ledger = EpochCreditLedger(delta=self._delta(), copies=1)
        self._epochs.emit(record)

    def emit(self, record: TraceRecord) -> None:
        super().emit(record)
        if record.kind == "event":
            self._epochs.emit(record)

    def _require_ledger(self):
        if self._ledger is None:
            from repro.analysis.credits import EpochCreditLedger

            self._ledger = EpochCreditLedger(delta=self._delta(), copies=1)
        return self._ledger

    def on_event_drop(self, record: TraceRecord) -> None:
        # The general engine's drop events carry no eligibility flag; its
        # accounting treats every drop as eligible, and so does this.
        eligible = bool(record.data.get("eligible", True))
        color = record.data["color"]
        count = int(record.data.get("count", 1))
        self._require_ledger().on_drop(color, count, eligible=eligible)
        if not eligible:
            running = self._in_epoch.get(color, 0) + count
            self._in_epoch[color] = running
            if running > self._delta():
                self.report(
                    "per-epoch-drop-cap", record.round_index,
                    f"color {color} dropped {running} ineligible jobs in one "
                    f"epoch (cap Δ={self._delta()})",
                    color=color, dropped=running,
                )

    def on_event_ineligible(self, record: TraceRecord) -> None:
        # Epoch closes: the per-epoch counter starts over.
        self._in_epoch[record.data["color"]] = 0

    def audit(self):
        """The Lemma 3.4 :class:`~repro.analysis.credits.CreditAudit` so far."""
        return self._require_ledger().ineligible_drop_audit(
            self._epochs._require_builder().num_epochs
        )

    def finalize(self) -> None:
        audit = self.audit()
        if not audit.within_budget:
            self.report(
                "lemma-3.4-budget", None,
                f"ineligible drops {audit.charged} exceed the numEpochs·Δ "
                f"budget {audit.budget}",
                charged=audit.charged, budget=audit.budget,
            )


class RatioMonitor(TraceMonitor):
    """Running competitive-ratio gauge against the offline lower bound.

    Reconstructs the ``Δ·#reconfigs + drop_cost·#drops`` objective from
    ``reconfig``/``drop`` events and divides by
    :func:`~repro.offline.lower_bounds.combined_lower_bound` for the
    instance (computed lazily on run start, when resources and speed are
    known).  The ratio is exposed as :attr:`ratio`, optionally mirrored
    into a metrics-registry gauge ``monitor.competitive_ratio``, and
    checked against ``max_ratio`` at end of stream when one is given.

    As a self-check, the reconstructed total is compared against the
    engine's own ``total_cost`` in the run span-end payload — a mismatch
    means the bus dropped or double-counted a costed event.
    """

    name = "ratio"

    def __init__(
        self,
        instance,
        *,
        policy: str = "collect",
        max_ratio: float | None = None,
        registry=None,
    ) -> None:
        super().__init__(policy=policy)
        self.instance = instance
        self.max_ratio = max_ratio
        self._gauge = (
            registry.gauge("monitor.competitive_ratio")
            if registry is not None
            else None
        )
        self.lower_bound: int | None = None
        self.running_cost = 0
        self._reported_total: int | None = None

    def on_run_start(self, record: TraceRecord) -> None:
        from repro.offline.lower_bounds import combined_lower_bound

        resources = int(self.run_info.get("resources", 1))
        speed = int(self.run_info.get("speed", 1))
        self.lower_bound = combined_lower_bound(
            self.instance, resources, speed=speed
        )

    @property
    def ratio(self) -> float | None:
        """Running cost over the offline lower bound (None before start).

        A zero lower bound (OFF serves the prefix for free — empty or
        all-free workloads) must not understate the ratio by flooring
        the denominator: any online cost against a free optimum is an
        infinite blowup, and zero cost against it ties at 1.0 — the same
        semantics as ``SweepResult.relative_to``.
        """
        if self.lower_bound is None:
            return None
        if self.lower_bound == 0:
            return float("inf") if self.running_cost > 0 else 1.0
        return self.running_cost / self.lower_bound

    def _bump(self, amount: int) -> None:
        self.running_cost += amount
        if self._gauge is not None:
            ratio = self.ratio
            if ratio is not None:
                self._gauge.set(ratio)

    def on_event_reconfig(self, record: TraceRecord) -> None:
        self._bump(self._delta() * int(record.data.get("resources", 1)))

    def on_event_drop(self, record: TraceRecord) -> None:
        self._bump(
            self.instance.spec.cost.drop_cost * int(record.data.get("count", 1))
        )

    def on_run_end(self, record: TraceRecord) -> None:
        self._reported_total = record.data.get("total_cost")

    def finalize(self) -> None:
        if (
            self._reported_total is not None
            and self._reported_total != self.running_cost
        ):
            self.report(
                "cost-reconstruction-mismatch", None,
                f"bus events reconstruct cost {self.running_cost} but the "
                f"engine reported {self._reported_total}",
                reconstructed=self.running_cost, reported=self._reported_total,
            )
        ratio = self.ratio
        if self.max_ratio is not None and ratio is not None and ratio > self.max_ratio:
            self.report(
                "competitive-ratio", None,
                f"cost {self.running_cost} is x{ratio:.2f} the offline lower "
                f"bound {self.lower_bound} (cap x{self.max_ratio:.2f})",
                ratio=ratio, lower_bound=self.lower_bound,
            )


class SuperEpochCreditMonitor(TraceMonitor):
    """Live §3.4 credit assignment against a known OFF schedule.

    Streams the online side (timestamp updates, cache transitions, epoch
    structure) off the bus and, at end of stream, runs the shared
    :func:`~repro.analysis.credits.super_epoch_credit_core` against the
    OFF schedule's reconfigurations and drops — the same core
    :func:`~repro.analysis.credits.audit_super_epoch_credits` runs on a
    full trace, so the audits agree bit for bit.  Violations: Lemma 3.13
    (an uncovered *i*-active color) and Lemma 3.17 (total credit below
    ``Δ`` per nonspecial epoch).
    """

    name = "super-epoch-credit"

    def __init__(
        self, instance, off_schedule, *, policy: str = "collect"
    ) -> None:
        super().__init__(policy=policy)
        self.instance = instance
        self.off_schedule = off_schedule
        self._epochs = EpochMonitor(policy="collect")
        self._updates_by_color: dict[int, list[int]] = {}
        self._cache_timeline: dict[int, list[tuple[int, int, bool]]] = {}
        self._audit = None

    def on_run_start(self, record: TraceRecord) -> None:
        self._epochs.emit(record)

    def emit(self, record: TraceRecord) -> None:
        super().emit(record)
        if record.kind == "event":
            self._epochs.emit(record)

    def on_event_timestamp(self, record: TraceRecord) -> None:
        self._updates_by_color.setdefault(record.data["color"], []).append(
            record.round_index
        )

    def on_event_cache_in(self, record: TraceRecord) -> None:
        self._cache_timeline.setdefault(record.data["color"], []).append(
            (record.round_index, int(record.data.get("mini", 0)), True)
        )

    def on_event_cache_out(self, record: TraceRecord) -> None:
        self._cache_timeline.setdefault(record.data["color"], []).append(
            (record.round_index, int(record.data.get("mini", 0)), False)
        )

    def audit(self):
        """The :class:`~repro.analysis.credits.SuperEpochAudit` (cached)."""
        from repro.analysis.credits import (
            SuperEpochAudit,
            off_side_events,
            super_epoch_credit_core,
        )

        if self._audit is not None:
            return self._audit
        delta = self._delta()
        analysis = self._epochs.analysis()
        off_reconfigs, off_drops = off_side_events(self.off_schedule, self.instance)
        credit, uncovered = super_epoch_credit_core(
            delta=delta,
            drop_unit=6.0 * self.instance.spec.cost.drop_cost,
            analysis=analysis,
            updates_by_color=self._updates_by_color,
            cache_timeline=self._cache_timeline,
            off_reconfigs=off_reconfigs,
            off_drops=off_drops,
        )
        off_cost = sum(
            1 for _ in self.off_schedule.reconfigurations
        ) * delta + sum(len(v) for v in off_drops.values())
        nonspecial = analysis.num_epochs - len(analysis.special_epochs())
        self._audit = SuperEpochAudit(
            total_credit=sum(credit.values()),
            credit_by_event=credit,
            uncovered=uncovered,
            off_cost=off_cost,
            num_nonspecial_epochs=nonspecial,
        )
        return self._audit

    def finalize(self) -> None:
        audit = self.audit()
        if not audit.lemma_3_13_holds:
            self.report(
                "lemma-3.13-uncovered", None,
                f"{len(audit.uncovered)} i-active color(s) neither cached "
                f"throughout their super-epoch nor credited 6Δ",
                uncovered=list(audit.uncovered),
            )
        if not audit.lemma_3_17_holds(self._delta()):
            self.report(
                "lemma-3.17-deficit", None,
                f"total credit {audit.total_credit} below Δ per nonspecial "
                f"epoch ({audit.num_nonspecial_epochs} epochs)",
                total_credit=audit.total_credit,
                nonspecial=audit.num_nonspecial_epochs,
            )


def standard_monitors(
    instance=None, *, policy: str = "collect", registry=None
) -> list[TraceMonitor]:
    """The default monitor set for one run.

    Epoch structure, Lemma 3.3 credits, and Lemma 3.4 drop containment
    always; the competitive-ratio gauge when ``instance`` is given (the
    lower bound needs the instance).  Tee them next to any other sink::

        monitors = standard_monitors(instance)
        tracer = Tracer(TeeSink(MemorySink(), *monitors))
    """
    monitors: list[TraceMonitor] = [
        EpochMonitor(policy=policy),
        CreditMonitor(policy=policy),
        DropContainmentMonitor(policy=policy),
    ]
    if instance is not None:
        monitors.append(
            RatioMonitor(instance, policy=policy, registry=registry)
        )
    return monitors
