"""Metrics registry: counters, gauges, and fixed-bucket histograms.

Complements the trace bus (:mod:`repro.obs.tracing`): traces answer
"what happened, in order"; metrics answer "how much, how often, how
distributed" without retaining per-event records.  The registry is
dependency-free and cheap enough to leave attached to production runs.

Naming conventions (see ``docs/observability.md``)
--------------------------------------------------
Metric names are dotted ``<subsystem>.<quantity>`` paths:

* ``engine.*`` — the simulation engines (``engine.drops``,
  ``engine.queue_depth``, ``engine.backlog_age``,
  ``engine.reconfig_interarrival``, ``engine.order_cache_hits``, ...)
* ``adversary.*`` — the adversary search (``adversary.score_cache_hits``)
* ``offline.*`` — the exact offline solver (``offline.states_expanded``,
  ``offline.candidates_pruned``)
* ``runtime.*`` — the parallel runtime

Histograms use *fixed* bucket boundaries chosen at registration time
(power-of-two ladders by default), so snapshots from different runs and
different workers merge by element-wise addition — no rebinning, no
quantile sketches.  Snapshots are plain dicts and feed the telemetry
payloads (``BENCH_engine.json`` schema v3) via
:func:`repro.runtime.telemetry.bench_payload`.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Any, Iterable, Mapping, Sequence

#: Default histogram bucket ladder: powers of two up to 4096.
POW2_BUCKETS: tuple[int, ...] = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096)


class Counter:
    """Monotone event count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


class Gauge:
    """Last-observed value of a quantity."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float | None = None

    def set(self, value: float) -> None:
        self.value = value


class Histogram:
    """Fixed-bucket histogram with inclusive upper bounds.

    ``buckets`` are the finite upper bounds in increasing order; one
    implicit overflow bucket catches everything larger.  An observation
    ``v`` lands in the first bucket with ``bound >= v``.
    """

    __slots__ = ("name", "bounds", "counts", "count", "total")

    def __init__(self, name: str, buckets: Sequence[float] = POW2_BUCKETS) -> None:
        bounds = tuple(buckets)
        if not bounds or any(nxt <= prev for nxt, prev in zip(bounds[1:], bounds)):
            raise ValueError("histogram buckets must be strictly increasing")
        self.name = name
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)  # +1 overflow bucket
        self.count = 0
        self.total = 0.0

    def observe(self, value: float, n: int = 1) -> None:
        self.counts[bisect_left(self.bounds, value)] += n
        self.count += n
        self.total += value * n

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def merge(self, other: "Histogram") -> None:
        """Element-wise merge (requires identical bucket boundaries).

        Raises instead of silently mis-binning: mismatched bounds would
        add apples to oranges, and a counts vector of the wrong length
        (e.g. from a hand-built or corrupted snapshot) would otherwise
        fold in only a prefix of the cells.
        """
        if other.bounds != self.bounds:
            raise ValueError(
                f"cannot merge histogram {other.name!r}: bucket bounds differ"
            )
        if len(other.counts) != len(self.counts):
            raise ValueError(
                f"cannot merge histogram {other.name!r}: expected "
                f"{len(self.counts)} cells (including overflow), got "
                f"{len(other.counts)}"
            )
        for index, count in enumerate(other.counts):
            self.counts[index] += count
        self.count += other.count
        self.total += other.total


class MetricsRegistry:
    """Create-or-get registry of named instruments.

    Re-registering a name returns the existing instrument (with a type
    check), so independent subsystems can share a registry without
    coordinating creation order.
    """

    def __init__(self) -> None:
        self._instruments: dict[str, Counter | Gauge | Histogram] = {}

    def _get(self, name: str, factory, kind):
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = self._instruments[name] = factory()
        elif not isinstance(instrument, kind):
            raise TypeError(
                f"metric {name!r} already registered as "
                f"{type(instrument).__name__}, not {kind.__name__}"
            )
        return instrument

    def counter(self, name: str) -> Counter:
        return self._get(name, lambda: Counter(name), Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, lambda: Gauge(name), Gauge)

    def histogram(
        self, name: str, buckets: Sequence[float] = POW2_BUCKETS
    ) -> Histogram:
        histogram = self._get(name, lambda: Histogram(name, buckets), Histogram)
        if histogram.bounds != tuple(buckets):
            raise ValueError(
                f"histogram {name!r} already registered with different buckets"
            )
        return histogram

    def __contains__(self, name: str) -> bool:
        return name in self._instruments

    def names(self) -> list[str]:
        return sorted(self._instruments)

    def snapshot(self, *, prefix: str | None = None) -> dict[str, Any]:
        """Freeze every instrument into a JSON-ready dict.

        ``prefix`` restricts the snapshot to instruments whose dotted
        name starts with it (e.g. ``prefix="stream."`` for just the
        ingestion metrics of a long-lived session) — the filtered result
        keeps the same shape and still merges cleanly.

        The shape is stable (schema v3 of the telemetry payloads)::

            {"counters": {name: int},
             "gauges": {name: float},
             "histograms": {name: {"buckets": [...], "counts": [...],
                                   "count": int, "sum": float, "mean": float}}}
        """
        counters: dict[str, int] = {}
        gauges: dict[str, float] = {}
        histograms: dict[str, dict[str, Any]] = {}
        for name in sorted(self._instruments):
            if prefix is not None and not name.startswith(prefix):
                continue
            instrument = self._instruments[name]
            if isinstance(instrument, Counter):
                counters[name] = instrument.value
            elif isinstance(instrument, Gauge):
                if instrument.value is not None:
                    gauges[name] = instrument.value
            else:
                histograms[name] = {
                    "buckets": list(instrument.bounds),
                    "counts": list(instrument.counts),
                    "count": instrument.count,
                    "sum": instrument.total,
                    "mean": instrument.mean,
                }
        return {"counters": counters, "gauges": gauges, "histograms": histograms}

    def merge_snapshot(self, snapshot: Mapping[str, Any]) -> None:
        """Fold a worker's :meth:`snapshot` into this registry.

        Counters and histogram cells add; gauges take the incoming value
        (last write wins, matching gauge semantics).

        The merge is validate-then-apply: every incoming instrument is
        checked (types, bucket bounds, cell counts) before anything is
        folded in, so a corrupt or incompatible worker snapshot raises
        without leaving this registry half-merged.
        """
        # Validation pass: reconstruct every incoming histogram and dry-
        # run the type/bounds checks against the existing instruments.
        incoming_histograms: list[tuple[Histogram, Histogram]] = []
        for name, data in snapshot.get("histograms", {}).items():
            bounds = tuple(data["buckets"])
            incoming = Histogram(name, bounds)
            if len(data["counts"]) != len(incoming.counts):
                raise ValueError(
                    f"cannot merge histogram {name!r}: expected "
                    f"{len(incoming.counts)} cells (including overflow), "
                    f"got {len(data['counts'])}"
                )
            incoming.counts = [int(c) for c in data["counts"]]
            incoming.count = int(data["count"])
            incoming.total = float(data["sum"])
            existing = self._instruments.get(name)
            if existing is not None:
                if not isinstance(existing, Histogram):
                    raise TypeError(
                        f"metric {name!r} already registered as "
                        f"{type(existing).__name__}, not Histogram"
                    )
                if existing.bounds != bounds:
                    raise ValueError(
                        f"cannot merge histogram {name!r}: bucket bounds "
                        "differ"
                    )
            incoming_histograms.append((incoming, existing))
        counters = {
            name: int(value)
            for name, value in snapshot.get("counters", {}).items()
        }
        gauges = dict(snapshot.get("gauges", {}))
        for name in counters:
            existing = self._instruments.get(name)
            if existing is not None and not isinstance(existing, Counter):
                raise TypeError(
                    f"metric {name!r} already registered as "
                    f"{type(existing).__name__}, not Counter"
                )
        for name in gauges:
            existing = self._instruments.get(name)
            if existing is not None and not isinstance(existing, Gauge):
                raise TypeError(
                    f"metric {name!r} already registered as "
                    f"{type(existing).__name__}, not Gauge"
                )
        # Apply pass: nothing below can raise.
        for name, value in counters.items():
            self.counter(name).inc(value)
        for name, value in gauges.items():
            self.gauge(name).set(value)
        for incoming, existing in incoming_histograms:
            if existing is None:
                existing = self.histogram(incoming.name, incoming.bounds)
            existing.merge(incoming)


def render_metrics(snapshot: Mapping[str, Any], *, width: int = 32) -> str:
    """Fixed-width text summary of a registry snapshot (``repro stats``)."""
    lines: list[str] = []
    counters = snapshot.get("counters", {})
    if counters:
        lines.append("counters")
        pad = max(len(name) for name in counters)
        for name in sorted(counters):
            lines.append(f"  {name.ljust(pad)}  {counters[name]}")
    gauges = snapshot.get("gauges", {})
    if gauges:
        lines.append("gauges")
        pad = max(len(name) for name in gauges)
        for name in sorted(gauges):
            lines.append(f"  {name.ljust(pad)}  {gauges[name]:.6g}")
    for name in sorted(snapshot.get("histograms", {})):
        data = snapshot["histograms"][name]
        total_count = data.get("count", 0)
        mean = data.get("mean")
        if mean is None:
            # Older/hand-built payloads may omit the derived mean.
            mean = data.get("sum", 0.0) / total_count if total_count else 0.0
        lines.append(
            f"histogram {name}  count={total_count}  mean={mean:.3f}"
        )
        counts = data.get("counts", [])
        labels = [f"<={bound:g}" for bound in data.get("buckets", [])] + ["inf"]
        peak = max(counts, default=0) or 1
        pad = max(len(label) for label in labels)
        for label, count in zip(labels, counts):
            if count == 0:
                continue
            bar = "#" * max(1, round(width * count / peak))
            lines.append(f"  {label.rjust(pad)}  {str(count).rjust(8)}  {bar}")
    return "\n".join(lines) if lines else "(no metrics recorded)"


def iter_metric_names(snapshot: Mapping[str, Any]) -> Iterable[str]:
    """All metric names present in a snapshot, sorted."""
    names = set(snapshot.get("counters", {}))
    names |= set(snapshot.get("gauges", {}))
    names |= set(snapshot.get("histograms", {}))
    return sorted(names)
