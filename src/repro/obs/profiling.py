"""Phase-level wall-clock attribution for the simulation engines.

The engines' round loop has four phases (drop, arrival, reconfigure,
execute); every perf PR so far has timed them with ad-hoc
``perf_counter`` pairs.  :class:`PhaseProfiler` gives that a home: the
engines (both cores, batched and general) accumulate per-phase seconds
and call counts into an attached profiler, and :func:`flame_table`
renders the attribution as a fixed-width table — the ``--profile`` CLI
flag prints it after a run.

The profiler is opt-in and observational: with no profiler attached the
loops pay a single ``is not None`` check per phase, and an attached
profiler never touches simulation state (property-tested along with the
tracer).  Profilers from parallel workers merge by addition, like
histogram snapshots.
"""

from __future__ import annotations

from typing import Mapping


class PhaseProfiler:
    """Accumulates wall-clock seconds and call counts per phase name."""

    __slots__ = ("seconds", "calls")

    def __init__(self) -> None:
        self.seconds: dict[str, float] = {}
        self.calls: dict[str, int] = {}

    def add(self, phase: str, seconds: float) -> None:
        """Record one timed call of ``phase``."""
        self.seconds[phase] = self.seconds.get(phase, 0.0) + seconds
        self.calls[phase] = self.calls.get(phase, 0) + 1

    @property
    def total_seconds(self) -> float:
        return sum(self.seconds.values())

    def merge(self, other: "PhaseProfiler") -> None:
        """Fold another profiler (e.g. from a worker) into this one."""
        for phase, seconds in other.seconds.items():
            self.seconds[phase] = self.seconds.get(phase, 0.0) + seconds
        for phase, calls in other.calls.items():
            self.calls[phase] = self.calls.get(phase, 0) + calls

    def snapshot(self) -> dict[str, dict[str, float]]:
        """JSON-ready per-phase attribution."""
        return {
            phase: {
                "seconds": self.seconds[phase],
                "calls": self.calls.get(phase, 0),
            }
            for phase in sorted(self.seconds)
        }


def flame_table(
    profile: PhaseProfiler | Mapping[str, Mapping[str, float]],
    *,
    title: str = "per-phase wall-clock attribution",
    width: int = 28,
) -> str:
    """Render a profiler (or its snapshot) as a fixed-width flame table.

    Phases are sorted by descending time share; the bar column makes the
    hot phase visible at a glance without a viewer.
    """
    snapshot = profile.snapshot() if isinstance(profile, PhaseProfiler) else dict(profile)
    total = sum(entry["seconds"] for entry in snapshot.values())
    header = f"{'phase'.ljust(14)} {'seconds':>10} {'calls':>9} {'share':>7}  flame"
    lines = [title, header, "-" * len(header)]
    for phase in sorted(
        snapshot, key=lambda name: snapshot[name]["seconds"], reverse=True
    ):
        entry = snapshot[phase]
        seconds = entry["seconds"]
        share = seconds / total if total > 0 else 0.0
        bar = "█" * max(1 if seconds > 0 else 0, round(width * share))
        lines.append(
            f"{phase.ljust(14)} {seconds:>10.4f} {int(entry['calls']):>9} "
            f"{share:>6.1%}  {bar}"
        )
    lines.append("-" * len(header))
    lines.append(f"{'total'.ljust(14)} {total:>10.4f}")
    return "\n".join(lines)
