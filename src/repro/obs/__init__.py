"""Observability: structured tracing, metrics registry, profiling hooks.

Three dependency-free layers, all strictly observational (attaching any
of them never changes a computed cost — property-tested):

* :mod:`repro.obs.tracing` — the trace bus: typed span/event records
  (run → round → phase, plus reconfigure/drop/execute/fast-forward/
  cache-hit events) over pluggable sinks (ring buffer, JSONL, null).
* :mod:`repro.obs.metrics` — counters, gauges, fixed-bucket histograms
  in a named registry; snapshots feed the telemetry payloads
  (``BENCH_engine.json`` schema v3).
* :mod:`repro.obs.profiling` — per-phase wall-clock attribution for the
  engine cores and the ``--profile`` flame table.

Entry points: pass ``tracer=`` / ``registry=`` / ``profiler=`` to
:func:`repro.simulate` / :func:`repro.simulate_general` /
:func:`repro.analysis.adversary_search.search_adversary` /
:func:`repro.offline.optimal.optimal_offline`, or use the CLI
(``repro record`` / ``repro trace`` / ``repro stats``).
"""

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    POW2_BUCKETS,
    render_metrics,
)
from repro.obs.profiling import PhaseProfiler, flame_table
from repro.obs.tracing import (
    JsonlSink,
    MemorySink,
    NullSink,
    Sink,
    TraceRecord,
    Tracer,
    read_jsonl_trace,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "JsonlSink",
    "MemorySink",
    "MetricsRegistry",
    "NullSink",
    "POW2_BUCKETS",
    "PhaseProfiler",
    "Sink",
    "TraceRecord",
    "Tracer",
    "flame_table",
    "read_jsonl_trace",
    "render_metrics",
]
