"""Observability: structured tracing, metrics registry, profiling hooks.

Three dependency-free layers, all strictly observational (attaching any
of them never changes a computed cost — property-tested):

* :mod:`repro.obs.tracing` — the trace bus: typed span/event records
  (run → round → phase, plus reconfigure/drop/execute/fast-forward/
  cache-hit events) over pluggable sinks (ring buffer, JSONL, null).
* :mod:`repro.obs.metrics` — counters, gauges, fixed-bucket histograms
  in a named registry; snapshots feed the telemetry payloads
  (``BENCH_engine.json`` schema v3).
* :mod:`repro.obs.profiling` — per-phase wall-clock attribution for the
  engine cores and the ``--profile`` flame table.
* :mod:`repro.obs.monitor` — live invariant monitors: sinks that
  reconstruct the paper's epoch/credit structure from the record stream
  and check the Lemma 3.3–3.17 budgets online, emitting typed
  :class:`~repro.obs.monitor.Violation` findings.
* :mod:`repro.obs.analyze` — trace diffing with cost-delta attribution
  by phase/color/round-range.
* :mod:`repro.obs.export` — Prometheus text exposition and Chrome
  trace-event / Perfetto JSON.
* :mod:`repro.obs.registry` — crash-safe, append-only run registry
  (JSONL segments) recording a :class:`~repro.obs.registry.RunRecord`
  per simulate/search/offline invocation, plus run diffing.
* :mod:`repro.obs.service` — threaded stdlib HTTP ops service exposing
  ``/metrics`` (Prometheus), ``/health``, ``/stream``, ``/series``,
  ``/alerts``, and ``/runs``.
* :mod:`repro.obs.sampling` — seeded deterministic round-level trace
  sampling with an adaptive overhead-bounding controller; monitor
  events and run/phase spans are always kept.
* :mod:`repro.obs.timeseries` — ring-buffered, compacting metric
  time-series sampled from a registry on a deterministic round clock,
  with schema-tagged JSONL persistence and sparkline rendering
  (:func:`~repro.obs.render.render_series`).
* :mod:`repro.obs.alerts` — declarative threshold / rate-of-change /
  stall rules over recorded series, evaluated as a pure function of the
  sample sequence so serial, parallel, and resumed runs fire identical
  alerts.

Entry points: pass ``tracer=`` / ``registry=`` / ``profiler=`` /
``recorder=`` to :func:`repro.simulate` / :func:`repro.simulate_general`
/ :func:`repro.analysis.adversary_search.search_adversary` /
:func:`repro.offline.optimal.optimal_offline` /
:func:`repro.experiments.sweeps.run_matrix`, or use the CLI
(``repro record`` / ``repro trace`` / ``repro stats`` /
``repro obs monitor|diff|export`` / ``repro runs list|show|diff`` /
``repro serve``).
"""

from repro.obs.alerts import (
    AlertEngine,
    AlertEvent,
    AlertRule,
    evaluate_rules,
    example_rules,
    load_rules,
    rules_to_json,
)
from repro.obs.analyze import TraceDiff, diff_traces, render_trace_diff
from repro.obs.export import (
    chrome_trace_events,
    prometheus_text,
    write_chrome_trace,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    POW2_BUCKETS,
    render_metrics,
)
from repro.obs.monitor import (
    CreditMonitor,
    DropContainmentMonitor,
    EpochMonitor,
    MonitorError,
    RatioMonitor,
    SuperEpochCreditMonitor,
    TraceMonitor,
    Violation,
    standard_monitors,
)
from repro.obs.profiling import PhaseProfiler, flame_table
from repro.obs.registry import (
    RegistryError,
    RegistrySink,
    RunDiff,
    RunRecord,
    RunRegistry,
    diff_runs,
    instance_digest,
    render_run,
    render_run_diff,
    render_run_list,
)
from repro.obs.render import render_series, sparkline
from repro.obs.sampling import (
    MONITOR_EVENT_NAMES,
    SamplingController,
    SamplingSink,
    SamplingTracer,
    sample_records,
)
from repro.obs.service import OpsService, OpsState
from repro.obs.timeseries import (
    Series,
    SeriesPoint,
    SeriesRecorder,
    read_series_jsonl,
    series_from_snapshot,
    write_series_jsonl,
)
from repro.obs.tracing import (
    JsonlSink,
    MemorySink,
    NullSink,
    Sink,
    TeeSink,
    TraceIntegrityError,
    TraceRecord,
    Tracer,
    read_jsonl_trace,
)

__all__ = [
    "AlertEngine",
    "AlertEvent",
    "AlertRule",
    "Counter",
    "CreditMonitor",
    "DropContainmentMonitor",
    "EpochMonitor",
    "Gauge",
    "Histogram",
    "JsonlSink",
    "MONITOR_EVENT_NAMES",
    "MemorySink",
    "MetricsRegistry",
    "MonitorError",
    "NullSink",
    "OpsService",
    "OpsState",
    "POW2_BUCKETS",
    "PhaseProfiler",
    "RatioMonitor",
    "RegistryError",
    "RegistrySink",
    "RunDiff",
    "RunRecord",
    "RunRegistry",
    "SamplingController",
    "SamplingSink",
    "SamplingTracer",
    "Series",
    "SeriesPoint",
    "SeriesRecorder",
    "Sink",
    "SuperEpochCreditMonitor",
    "TeeSink",
    "TraceDiff",
    "TraceIntegrityError",
    "TraceMonitor",
    "TraceRecord",
    "Tracer",
    "Violation",
    "chrome_trace_events",
    "diff_runs",
    "diff_traces",
    "evaluate_rules",
    "example_rules",
    "flame_table",
    "instance_digest",
    "load_rules",
    "prometheus_text",
    "read_jsonl_trace",
    "read_series_jsonl",
    "render_metrics",
    "render_run",
    "render_run_diff",
    "render_run_list",
    "render_series",
    "render_trace_diff",
    "rules_to_json",
    "sample_records",
    "series_from_snapshot",
    "sparkline",
    "standard_monitors",
    "write_chrome_trace",
    "write_series_jsonl",
]
