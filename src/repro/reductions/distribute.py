"""Algorithm Distribute (Section 4.1).

Reduces ``[Δ | 1 | D_ℓ | D_ℓ]`` (batched, arbitrarily large batches) to
rate-limited ``[Δ | 1 | D_ℓ | D_ℓ]``:

1. Within each request, rank the color-ℓ jobs (we use jid order, which is
   deterministic) and recolor job ``x`` to the *subcolor* ``(ℓ, j)`` with
   ``j = floor(rank(x) / D_ℓ)``.  Each subcolor then receives at most
   ``D_ℓ`` jobs per batch — rate-limited by construction.
2. Run an inner algorithm (ΔLRU-EDF by default) on the transformed
   instance.
3. Map the inner schedule back: configuring subcolor ``(ℓ, j)``
   configures ℓ; executing a subcolor job executes the original job
   (jobs keep their identity — only the color field changes).

The mapping drops reconfigurations that would recolor a resource to the
color it already holds (two subcolors of the same ℓ swapping in one
slot), which is why Lemma 4.2's inequality — outer cost ≤ inner cost —
can be strict.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Callable

from repro.core.cost import CostBreakdown
from repro.core.instance import BatchMode, Instance, ProblemSpec, RequestSequence
from repro.core.job import BLACK, Job
from repro.core.schedule import Execution, Reconfiguration, Schedule
from repro.simulation.engine import ReconfigurationScheme, RunResult, simulate


@dataclass(frozen=True)
class SubcolorMap:
    """Bidirectional mapping between original colors and subcolors."""

    to_subcolor: dict[tuple[int, int], int]
    to_original: dict[int, int]

    def original(self, subcolor: int) -> int:
        return self.to_original[subcolor]


def distribute_instance(instance: Instance) -> tuple[Instance, SubcolorMap]:
    """Build the rate-limited instance I' and the subcolor mapping."""
    if instance.spec.batch_mode is BatchMode.GENERAL:
        raise ValueError(
            "Distribute requires a batched instance; apply VarBatch first"
        )
    to_subcolor: dict[tuple[int, int], int] = {}
    to_original: dict[int, int] = {}
    new_bounds: dict[int, int] = {}

    def subcolor_id(color: int, j: int) -> int:
        key = (color, j)
        if key not in to_subcolor:
            new_id = len(to_subcolor)
            to_subcolor[key] = new_id
            to_original[new_id] = color
            new_bounds[new_id] = instance.spec.delay_bound(color)
        return to_subcolor[key]

    new_jobs: list[Job] = []
    for round_index in instance.sequence.arrival_rounds():
        per_color: dict[int, list[Job]] = {}
        for job in instance.sequence.arrivals(round_index):
            per_color.setdefault(job.color, []).append(job)
        for color, batch in per_color.items():
            bound = instance.spec.delay_bound(color)
            for rank, job in enumerate(sorted(batch, key=lambda j: j.jid)):
                new_jobs.append(job.with_color(subcolor_id(color, rank // bound)))

    # Ensure every original color is represented even if it has no jobs,
    # so the inner spec covers the same color universe.
    for color in instance.spec.colors:
        subcolor_id(color, 0)

    spec = ProblemSpec(
        new_bounds,
        instance.spec.cost,
        BatchMode.RATE_LIMITED,
        instance.spec.require_power_of_two,
    )
    inner = Instance(
        spec,
        RequestSequence(new_jobs, instance.horizon),
        name=f"{instance.name or 'instance'}|distributed",
    )
    return inner, SubcolorMap(to_subcolor, to_original)


@dataclass
class DistributeResult:
    """Inner run plus the mapped-back outer schedule and cost.

    ``schedule`` is ``None`` for ``record="costs"`` runs, which stream the
    outer cost directly off the inner engine instead of materializing and
    mapping back a schedule.
    """

    instance: Instance
    inner: RunResult
    mapping: SubcolorMap
    schedule: Schedule | None
    cost: CostBreakdown

    @property
    def total_cost(self) -> int:
        return self.cost.total

    @property
    def algorithm(self) -> str:
        return f"Distribute[{self.inner.algorithm}]"


def map_back_schedule(
    instance: Instance,
    inner_schedule: Schedule,
    mapping: SubcolorMap,
) -> Schedule:
    """Project an inner (subcolored) schedule onto the original colors.

    Same-color reconfigurations created by subcolor swaps within one slot
    are elided, so the outer reconfiguration cost is at most the inner
    one (Lemma 4.2).
    """
    outer = Schedule(
        inner_schedule.num_resources, speed=inner_schedule.speed
    )
    current: dict[int, int] = {}
    for event in inner_schedule.reconfigurations:
        color = mapping.original(event.new_color)
        if current.get(event.resource, BLACK) == color:
            continue
        current[event.resource] = color
        outer.add_reconfiguration(
            Reconfiguration(event.round_index, event.mini_round, event.resource, color)
        )
    for event in inner_schedule.executions:
        outer.add_execution(
            Execution(
                event.round_index,
                event.mini_round,
                event.resource,
                event.jid,
                mapping.original(event.color),
            )
        )
    return outer


class OuterCostMapper:
    """Streams the mapped-back outer cost without building a schedule.

    ``record="costs"`` runs have no inner :class:`Schedule` to hand to
    :func:`map_back_schedule`, so the outer cost is reconstructed from two
    exact identities instead:

    * **Reconfigurations** — the engine fires this mapper (via its
      ``reconfig_observer`` hook) once per cache insert that physically
      reconfigured resources, in event order.  Replaying
      :func:`map_back_schedule`'s per-resource same-color elision against
      that stream yields the outer reconfiguration multiset exactly.
    * **Drops** — jobs keep their identity through recoloring and are
      executed at most once, so per original color
      ``drops = #jobs − #mapped executions``; the inner breakdown's
      ``executions_by_color`` supplies the executions.
    """

    def __init__(self, mapping: SubcolorMap) -> None:
        self._mapping = mapping
        self._current: dict[int, int] = {}
        self._reconfigs: Counter = Counter()

    def __call__(self, subcolor: int, resources: list[int]) -> None:
        color = self._mapping.original(subcolor)
        current = self._current
        for resource in resources:
            if current.get(resource, BLACK) == color:
                continue
            current[resource] = color
            self._reconfigs[color] += 1

    def finish(self, instance: Instance, inner_cost: CostBreakdown) -> CostBreakdown:
        """Assemble the outer breakdown for ``instance``'s original jobs."""
        cost = CostBreakdown(instance.cost_model)
        for color, count in sorted(self._reconfigs.items()):
            cost.record_reconfig(color, count)
        executed: Counter = Counter()
        for subcolor, count in inner_cost.executions_by_color.items():
            executed[self._mapping.original(subcolor)] += count
        for color, count in sorted(executed.items()):
            if count:
                cost.record_execution(color, count)
        job_counts = Counter(job.color for job in instance.sequence.jobs)
        for color, total in sorted(job_counts.items()):
            dropped = total - executed.get(color, 0)
            if dropped:
                cost.record_drop(color, dropped)
        return cost


def run_distribute(
    instance: Instance,
    num_resources: int,
    *,
    scheme_factory: Callable[[], ReconfigurationScheme] | None = None,
    copies: int = 2,
    speed: int = 1,
    record: str = "full",
    sparse: bool = True,
    engine: str | None = None,
) -> DistributeResult:
    """Run Algorithm Distribute end to end on a batched instance.

    ``record="costs"`` skips schedule/trace materialization end to end:
    the inner engine runs on its fast (and, when ``sparse``, round-
    skipping) path and the outer cost streams through
    :class:`OuterCostMapper`; the resulting breakdown is identical to the
    ``record="full"`` one.  ``engine`` overrides ``sparse`` by backend
    name; the vectorized backend streams reconfigurations through the
    observer in event order, so outer costs stay identical there too.
    """
    from repro.algorithms.dlru_edf import DeltaLRUEDF

    inner_instance, mapping = distribute_instance(instance)
    scheme = scheme_factory() if scheme_factory is not None else DeltaLRUEDF()
    if record == "costs":
        mapper = OuterCostMapper(mapping)
        inner = simulate(
            inner_instance,
            scheme,
            num_resources,
            copies=copies,
            speed=speed,
            record="costs",
            sparse=sparse,
            engine=engine,
            reconfig_observer=mapper,
        )
        cost = mapper.finish(instance, inner.cost)
        return DistributeResult(instance, inner, mapping, None, cost)
    inner = simulate(
        inner_instance,
        scheme,
        num_resources,
        copies=copies,
        speed=speed,
        record=record,
        sparse=sparse,
        engine=engine,
    )
    outer_schedule = map_back_schedule(instance, inner.schedule, mapping)
    cost = outer_schedule.cost(instance.sequence.jobs, instance.cost_model)
    return DistributeResult(instance, inner, mapping, outer_schedule, cost)
