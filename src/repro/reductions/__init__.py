"""The paper's reduction layers.

The main result is assembled from three layers (Sections 3-5):

    [Δ | 1 | D_ℓ | 1]  --VarBatch-->  [Δ | 1 | D_ℓ/2 | D_ℓ/2]
                       --Distribute-->  rate-limited [Δ | 1 | D_ℓ | D_ℓ]
                       --ΔLRU-EDF-->  schedule

* :mod:`repro.reductions.distribute` — Algorithm Distribute (§4.1):
  splits oversized batches into rate-limited subcolors and maps the inner
  schedule back.
* :mod:`repro.reductions.varbatch` — Algorithm VarBatch (§5.1): delays
  every job to the next half-block boundary, halving its delay bound.
* :mod:`repro.reductions.arbitrary` — the §5.3 extension to arbitrary
  (non-power-of-two) delay bounds.
* :mod:`repro.reductions.aggregate` — Algorithm Aggregate (§4.3), the
  offline schedule transformation behind Lemma 4.1; used by the tests to
  check the lemma empirically.
* :mod:`repro.reductions.pipeline` — the composed online algorithm for
  the main problem (Theorem 3).
"""

from repro.reductions.distribute import DistributeResult, distribute_instance, run_distribute
from repro.reductions.varbatch import VarBatchResult, run_varbatch, varbatch_instance
from repro.reductions.arbitrary import generalize_bounds_instance, run_arbitrary
from repro.reductions.aggregate import aggregate_schedule
from repro.reductions.punctual import (
    classify_execution,
    punctualize_schedule,
    split_by_timing,
)
from repro.reductions.pipeline import PipelineResult, run_pipeline

__all__ = [
    "DistributeResult",
    "distribute_instance",
    "run_distribute",
    "VarBatchResult",
    "run_varbatch",
    "varbatch_instance",
    "generalize_bounds_instance",
    "run_arbitrary",
    "aggregate_schedule",
    "classify_execution",
    "punctualize_schedule",
    "split_by_timing",
    "PipelineResult",
    "run_pipeline",
]
