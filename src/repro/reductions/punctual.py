"""Punctualization (Section 5.2, Lemmas 5.1-5.3).

A job of delay bound ``p`` arriving in ``halfBlock(p, i)`` can be
executed *early* (same half-block), *punctually* (``halfBlock(p, i+1)``)
or *late* (``halfBlock(p, i+2)``) — its window covers exactly those
three.  Theorem 3 needs offline schedules to be *punctual* (then they
transfer to the batched instance VarBatch produces).  The paper shows:

* **Lemma 5.1** — an early 1-resource schedule can be made punctual on 3
  resources at O(1)x reconfiguration cost: *special* jobs (whose color
  stays configured through the next half-block) shift forward by ``p/2``
  on a dedicated resource; the rest pack into the first free slots of
  two shared resources, half-block by half-block, ascending bounds.
* **Lemma 5.2** — symmetrically for late schedules (shift back ``p/2``).
* **Lemma 5.3** — any m-resource schedule splits per resource into its
  early / punctual / late executions; transforming the two sides yields
  a punctual schedule on ``7m`` resources (3 + 1 + 3 per original).

All three are implemented here as executable schedule transformations,
and the tests verify feasibility, execution preservation, punctuality,
and the constant cost factor on real optimal schedules — plus the
transfer: a punctualized schedule is feasible for the VarBatch-batched
instance.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Literal

from repro.core.instance import Instance
from repro.core.job import BLACK, Job
from repro.core.rounds import half_block_index
from repro.core.schedule import Schedule


class PunctualizeError(RuntimeError):
    """Raised when a Lemma 5.1 packing guarantee fails to hold."""


Timing = Literal["early", "punctual", "late"]


def classify_execution(job: Job, round_index: int) -> Timing:
    """Early / punctual / late classification of one execution."""
    if job.delay_bound == 1:
        return "punctual"  # unit bounds are batched already (§5)
    i = half_block_index(job.delay_bound, job.arrival)
    execution_block = half_block_index(job.delay_bound, round_index)
    offset = execution_block - i
    if offset == 0:
        return "early"
    if offset == 1:
        return "punctual"
    if offset == 2:
        return "late"
    raise ValueError(
        f"execution at {round_index} outside the window of job {job.jid}"
    )


def split_by_timing(
    schedule: Schedule, instance: Instance
) -> dict[Timing, list[tuple[int, int, Job]]]:
    """Partition executions into (round, resource, job) lists by timing."""
    jobs = {job.jid: job for job in instance.sequence}
    buckets: dict[Timing, list[tuple[int, int, Job]]] = {
        "early": [],
        "punctual": [],
        "late": [],
    }
    for event in schedule.executions:
        job = jobs[event.jid]
        buckets[classify_execution(job, event.round_index)].append(
            (event.round_index, event.resource, job)
        )
    return buckets


def _resource_color_at(schedule: Schedule, resource: int) -> list[tuple[int, int]]:
    """(round, color) change points of one resource, ascending."""
    return [
        (event.round_index, event.new_color)
        for event in schedule.reconfigurations
        if event.resource == resource
    ]


def _configured_throughout(
    changes: list[tuple[int, int]], color: int, start: int, end: int, horizon: int
) -> bool:
    """Whether the resource holds ``color`` over all rounds [start, end)."""
    if start >= end:
        return True
    current = BLACK
    # Color at `start`:
    for round_index, new_color in changes:
        if round_index <= start:
            current = new_color
        else:
            break
    if current != color:
        return False
    for round_index, new_color in changes:
        if start < round_index < min(end, horizon) and new_color != color:
            return False
    return True


def _emit(executions: list[tuple[int, int, Job]], num_resources: int) -> Schedule:
    """Build a schedule from placed executions, deriving reconfigurations."""
    out = Schedule(num_resources)
    executions.sort(key=lambda item: (item[0], item[1], item[2].jid))
    current = [BLACK] * num_resources
    for round_index, resource, job in executions:
        if current[resource] != job.color:
            out.reconfigure(round_index, resource, job.color)
            current[resource] = job.color
        out.execute(round_index, resource, job)
    return out


def _one_sided_punctualize(
    placed: list[tuple[int, int, Job]],
    source_schedule: Schedule,
    source_resource: int,
    instance: Instance,
    direction: Timing,
    resource_base: int,
) -> list[tuple[int, int, Job]]:
    """Lemmas 5.1/5.2: make the early (or late) executions of one source
    resource punctual on three target resources.

    Returns (round, resource, job) placements; ``resource_base`` is the
    index of the dedicated special-job resource (shared resources are
    ``resource_base + 1`` and ``+ 2``).
    """
    if direction not in ("early", "late"):
        raise ValueError("direction must be 'early' or 'late'")
    sign = 1 if direction == "early" else -1
    changes = _resource_color_at(source_schedule, source_resource)
    horizon = instance.horizon

    special: list[tuple[int, int, Job]] = []
    nonspecial: list[tuple[int, int, Job]] = []
    for round_index, _, job in placed:
        p = job.delay_bound
        half = p // 2
        i = half_block_index(p, round_index)
        if direction == "early":
            window = (i * half, (i + 2) * half)
        else:
            window = ((i - 1) * half, (i + 1) * half)
        if p > 1 and window[0] >= 0 and _configured_throughout(
            changes, job.color, window[0], window[1], horizon
        ):
            special.append((round_index + sign * half, resource_base, job))
        else:
            nonspecial.append((round_index, 0, job))

    # Nonspecial: ascending delay bounds, half-block by half-block, into
    # the first free slots of the two shared resources in the *adjacent*
    # half-block (i+1 for early sources, i-1... which is i+1 relative to
    # the job's arrival — punctual either way).
    occupied: dict[int, set[int]] = {
        resource_base + 1: set(),
        resource_base + 2: set(),
    }
    by_bound_block: dict[tuple[int, int, int], list[Job]] = defaultdict(list)
    for round_index, _, job in nonspecial:
        p = job.delay_bound
        i = half_block_index(p, round_index)
        by_bound_block[(p, i, job.color)].append(job)

    out = list(special)
    for (p, i, color) in sorted(by_bound_block):
        jobs = sorted(by_bound_block[(p, i, color)], key=lambda j: j.jid)
        half = max(p // 2, 1)
        target_block = i + sign
        start, end = target_block * half, (target_block + 1) * half
        free = [
            (r, res)
            for r in range(start, min(end, horizon))
            for res in (resource_base + 1, resource_base + 2)
            if r not in occupied[res]
        ]
        if len(free) < len(jobs):
            raise PunctualizeError(
                f"Lemma 5.1 packing failed: {len(jobs)} jobs of bound {p} "
                f"into half-block [{start}, {end}) with {len(free)} free slots"
            )
        for (r, res), job in zip(free, jobs):
            occupied[res].add(r)
            out.append((r, res, job))
    return out


def punctualize_schedule(
    schedule: Schedule, instance: Instance
) -> Schedule:
    """Lemma 5.3: a punctual schedule on ``7m`` resources executing every
    job the input executes."""
    m = schedule.num_resources
    jobs = {job.jid: job for job in instance.sequence}
    per_resource: dict[int, dict[Timing, list[tuple[int, int, Job]]]] = {}
    for event in schedule.executions:
        job = jobs[event.jid]
        timing = classify_execution(job, event.round_index)
        per_resource.setdefault(event.resource, {
            "early": [], "punctual": [], "late": []
        })[timing].append((event.round_index, event.resource, job))

    placements: list[tuple[int, int, Job]] = []
    for k in range(m):
        buckets = per_resource.get(
            k, {"early": [], "punctual": [], "late": []}
        )
        base = 7 * k
        placements += _one_sided_punctualize(
            buckets["early"], schedule, k, instance, "early", base
        )
        # The punctual third rides along unchanged on resource base+3.
        placements += [
            (round_index, base + 3, job)
            for round_index, _, job in buckets["punctual"]
        ]
        placements += _one_sided_punctualize(
            buckets["late"], schedule, k, instance, "late", base + 4
        )
    return _emit(placements, 7 * m)
