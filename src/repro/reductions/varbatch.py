"""Algorithm VarBatch (Section 5.1).

Reduces the main problem ``[Δ | 1 | D_ℓ | 1]`` (power-of-two bounds) to
``[Δ | 1 | D_ℓ/2 | D_ℓ/2]``: every job of delay bound ``p`` arriving in
``halfBlock(p, i)`` is delayed until the start of ``halfBlock(p, i+1)``
and must be executed within that half-block — i.e. it becomes a *batched*
job with delay bound ``p/2`` arriving at a multiple of ``p/2``.  Since

    (i+1) * p/2  >=  arrival        (the job only moves later), and
    (i+2) * p/2  <=  arrival + p    (the new deadline never exceeds the old),

any feasible execution of the transformed job is feasible for the
original one, so the transformed schedule *is* a schedule for the
original instance.  Colors with ``D_ℓ = 1`` are already batched (every
round is a multiple of 1) and pass through unchanged.

The batched instance is then handed to Algorithm Distribute, completing
the Theorem 3 stack.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.core.cost import CostBreakdown
from repro.core.instance import BatchMode, Instance, ProblemSpec, RequestSequence
from repro.core.job import Job
from repro.core.rounds import half_block_index, is_power_of_two
from repro.core.schedule import Schedule
from repro.reductions.distribute import DistributeResult, run_distribute
from repro.simulation.engine import ReconfigurationScheme


def varbatch_instance(instance: Instance) -> Instance:
    """Build the batched instance σ' by delaying jobs to half-blocks."""
    for color, bound in instance.spec.delay_bounds.items():
        if not is_power_of_two(bound):
            raise ValueError(
                f"VarBatch requires power-of-two delay bounds; color {color} "
                f"has bound {bound} (use repro.reductions.arbitrary for the "
                f"general case)"
            )
    new_bounds: dict[int, int] = {}
    for color, bound in instance.spec.delay_bounds.items():
        new_bounds[color] = bound // 2 if bound > 1 else 1
    new_jobs: list[Job] = []
    for job in instance.sequence:
        bound = job.delay_bound
        if bound == 1:
            new_jobs.append(job)
            continue
        i = half_block_index(bound, job.arrival)
        new_arrival = (i + 1) * (bound // 2)
        new_jobs.append(job.with_arrival(new_arrival, bound // 2))
    spec = ProblemSpec(
        new_bounds,
        instance.spec.cost,
        BatchMode.BATCHED,
        require_power_of_two=True,
    )
    max_shift = max(instance.spec.delay_bounds.values())
    sequence = RequestSequence(new_jobs, instance.horizon + max_shift)
    return Instance(spec, sequence, name=f"{instance.name or 'instance'}|varbatch")


@dataclass
class VarBatchResult:
    """Outer schedule for the original instance plus the inner stack.

    ``schedule`` is ``None`` for ``record="costs"`` runs (the sparse cost
    path carries no schedule; the breakdown is still exact).
    """

    instance: Instance
    batched_instance: Instance
    distribute: DistributeResult
    schedule: Schedule | None
    cost: CostBreakdown

    @property
    def total_cost(self) -> int:
        return self.cost.total

    @property
    def algorithm(self) -> str:
        return f"VarBatch[{self.distribute.algorithm}]"


def run_varbatch(
    instance: Instance,
    num_resources: int,
    *,
    scheme_factory: Callable[[], ReconfigurationScheme] | None = None,
    copies: int = 2,
    speed: int = 1,
    record: str = "full",
    sparse: bool = True,
) -> VarBatchResult:
    """Run Algorithm VarBatch end to end on a general instance.

    The transformed jobs keep their identities, and every transformed
    execution window is contained in the original one, so the inner
    schedule is emitted unchanged as the schedule for the original
    instance; only the drop/cost accounting is recomputed against the
    original job set.

    ``record="costs"`` has no schedule to re-cost, but the half-block
    shift preserves both jid and color of every job, so the Distribute
    stage's streamed breakdown — computed against the batched job set —
    is already the breakdown against the original one.
    """
    batched = varbatch_instance(instance)
    distribute = run_distribute(
        batched,
        num_resources,
        scheme_factory=scheme_factory,
        copies=copies,
        speed=speed,
        record=record,
        sparse=sparse,
    )
    schedule = distribute.schedule
    if schedule is None:
        cost = distribute.cost
    else:
        cost = schedule.cost(instance.sequence.jobs, instance.cost_model)
    return VarBatchResult(instance, batched, distribute, schedule, cost)
