"""Algorithm Aggregate (Section 4.3) — the offline side of Lemma 4.1.

Given an offline schedule ``T`` for a batched instance ``I`` on ``m``
resources, Aggregate produces a schedule ``T'`` for the *distributed*
(subcolored, rate-limited) instance ``I'`` on ``3m`` resources that
executes the same number of jobs with at most a constant-factor more
reconfiguration cost.  Together with Lemma 4.2 this proves Theorem 2.

Faithful structure:

* resources ``(k, 0..2)`` of ``T'`` shadow resource ``k`` of ``T``;
* per delay bound ``p`` (ascending), per block, per color: the jobs ``T``
  executed are partitioned into groups of size ``<= p``;
* groups go first to the ``(T, p, i, ℓ)``-monochromatic shadow resources
  ``(k, 0)`` — ranked by descending *T-level* (how long ``k`` stays
  monochromatic) with block-to-block label inheritance so a stable
  resource keeps executing the same subcolor — and leftovers go to
  multichromatic triples with at least ``p`` free slots (Lemma 4.4
  guarantees one exists; we assert it);
* a monochromatic placement blocks its whole shadow block (the paper's
  "mark all slots occupied").

One deliberate deviation: the paper assigns subcolor labels purely by
resource identity, which can name a subcolor that has fewer jobs than the
group needs.  We keep the inheritance *preference* but fall back to any
subcolor with sufficient availability (full groups are interchangeable
among full subcolors, so this never changes the cost structure).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

import numpy as np

from repro.core.instance import Instance
from repro.core.job import BLACK, Job
from repro.core.schedule import Schedule
from repro.reductions.distribute import SubcolorMap


class AggregateError(RuntimeError):
    """Raised when a Lemma 4.4 style guarantee fails to hold."""


@dataclass
class _Group:
    """One group of executed jobs of a single original color and block."""

    color: int
    block_index: int
    size: int
    label: int | None = None  # assigned subcolor j
    mono_resource: int | None = None  # T resource k when placed on (k, 0)


def _color_timelines(schedule: Schedule, m: int, horizon: int) -> np.ndarray:
    """Dense (m, horizon) array of each T-resource's color per round."""
    colors = np.full((m, horizon), BLACK, dtype=np.int64)
    for event in schedule.reconfigurations:
        colors[event.resource, event.round_index :] = event.new_color
    return colors


def _monochromatic(colors: np.ndarray, resource: int, start: int, end: int) -> int:
    """The single color of ``resource`` over ``[start, end)``, else BLACK-1.

    Returns the color when the resource holds exactly one color throughout
    the window, and ``BLACK - 1`` (an impossible color) otherwise.
    """
    window = colors[resource, start:end]
    if window.size == 0:
        return BLACK - 1
    first = int(window[0])
    if bool((window == first).all()):
        return first
    return BLACK - 1


def _t_level(colors: np.ndarray, resource: int, p: int, i: int, horizon: int) -> int:
    """Largest delay bound q such that the enclosing block(q, ·) of
    block(p, i) keeps ``resource`` monochromatic."""
    level = p
    q = p * 2
    while True:
        j = (i * p) // q
        start, end = j * q, min((j + 1) * q, horizon)
        if end <= start or _monochromatic(colors, resource, start, end) == BLACK - 1:
            return level
        level = q
        q *= 2
        if q > 4 * horizon:
            return level


def aggregate_schedule(
    batched_instance: Instance,
    inner_instance: Instance,
    mapping: SubcolorMap,
    offline_schedule: Schedule,
    num_offline_resources: int,
) -> Schedule:
    """Transform T (for I, m resources) into T' (for I', 3m resources)."""
    m = num_offline_resources
    horizon = batched_instance.horizon
    colors = _color_timelines(offline_schedule, m, horizon)
    out = Schedule(3 * m)

    # Jobs T executed, grouped by (color, block index of its bound).
    jobs_by_id = {job.jid: job for job in batched_instance.sequence}
    executed: dict[tuple[int, int], list[Job]] = defaultdict(list)
    for event in offline_schedule.executions:
        job = jobs_by_id[event.jid]
        executed[(job.color, job.arrival // job.delay_bound)].append(job)

    # I' job pools: (original color, block start, subcolor) -> jobs.
    pool: dict[tuple[int, int], dict[int, list[Job]]] = defaultdict(dict)
    for job in inner_instance.sequence:
        original = mapping.original(job.color)
        per_sub = pool[(original, job.arrival)]
        per_sub.setdefault(job.color, []).append(job)
    for per_sub in pool.values():
        for jobs in per_sub.values():
            jobs.sort(key=lambda j: j.jid)

    subcolor_of = mapping.to_subcolor  # (color, j) -> subcolor id

    occupied = np.zeros((3 * m, horizon), dtype=bool)
    # Inherited labels: color -> {T resource k -> label j in previous block}.
    inherited: dict[int, dict[int, int]] = defaultdict(dict)

    bounds_ascending = sorted(set(batched_instance.spec.delay_bounds.values()))
    colors_by_bound: dict[int, list[int]] = defaultdict(list)
    for color, bound in sorted(batched_instance.spec.delay_bounds.items()):
        colors_by_bound[bound].append(color)

    executions: list[tuple[int, int, Job]] = []  # (round, resource, job)

    for p in bounds_ascending:
        num_blocks = (horizon + p - 1) // p
        for i in range(num_blocks):
            start, end = i * p, min((i + 1) * p, horizon)
            mono_of: dict[int, int] = {}
            for k in range(m):
                mono_of[k] = _monochromatic(colors, k, start, end)
            for color in colors_by_bound[p]:
                jobs = executed.get((color, i))
                if not jobs:
                    inherited[color] = {}
                    continue
                jobs = sorted(jobs, key=lambda j: j.jid)
                groups = [
                    _Group(color, i, len(jobs[g : g + p]))
                    for g in range(0, len(jobs), p)
                ]
                groups.sort(key=lambda g: -g.size)

                mono_resources = [k for k in range(m) if mono_of[k] == color]
                mono_resources.sort(
                    key=lambda k: -_t_level(colors, k, p, i, horizon)
                )
                for group, k in zip(groups, mono_resources):
                    group.mono_resource = k

                _assign_labels(
                    groups,
                    pool[(color, start)],
                    subcolor_of,
                    color,
                    inherited[color],
                )
                inherited[color] = {
                    g.mono_resource: g.label
                    for g in groups
                    if g.mono_resource is not None and g.label is not None
                }

                for group in groups:
                    sub = subcolor_of[(color, group.label)]
                    batch = pool[(color, start)][sub][: group.size]
                    del pool[(color, start)][sub][: group.size]
                    if group.mono_resource is not None:
                        resource = 3 * group.mono_resource
                        for offset, job in enumerate(batch):
                            executions.append((start + offset, resource, job))
                        occupied[resource, start:end] = True
                    else:
                        _place_on_triple(
                            batch, start, end, p, m, mono_of, occupied, executions
                        )

    executions.sort()
    current = [BLACK] * (3 * m)
    for round_index, resource, job in executions:
        if current[resource] != job.color:
            out.reconfigure(round_index, resource, job.color)
            current[resource] = job.color
        out.execute(round_index, resource, job)
    return out


def _assign_labels(
    groups: list[_Group],
    per_sub: dict[int, list[Job]],
    subcolor_of: dict[tuple[int, int], int],
    color: int,
    inherited: dict[int, int],
) -> None:
    """Give each group a subcolor label with enough available jobs.

    Inherited labels are honored when feasible; remaining groups take the
    unused subcolors in descending availability (full groups first, so
    the desc-desc matching of sizes to availabilities always succeeds).
    """
    avail = {
        j: len(per_sub.get(sub, ()))
        for (c, j), sub in subcolor_of.items()
        if c == color
    }
    used: set[int] = set()
    for group in groups:
        if group.mono_resource is None:
            continue
        j = inherited.get(group.mono_resource)
        if j is not None and j not in used and avail.get(j, 0) >= group.size:
            group.label = j
            used.add(j)
    for group in groups:
        if group.label is not None:
            continue
        candidates = sorted(
            (j for j, a in avail.items() if j not in used and a >= group.size),
            key=lambda j: (-avail[j], j),
        )
        if not candidates:
            raise AggregateError(
                f"no subcolor of color {color} can hold a group of size "
                f"{group.size}; availability {avail}, used {sorted(used)}"
            )
        group.label = candidates[0]
        used.add(group.label)


def _place_on_triple(
    batch: list[Job],
    start: int,
    end: int,
    p: int,
    m: int,
    mono_of: dict[int, int],
    occupied: np.ndarray,
    executions: list[tuple[int, int, Job]],
) -> None:
    """Place a leftover group on a multichromatic shadow triple."""
    multichromatic = [k for k in range(m) if mono_of[k] == BLACK - 1]
    for k in multichromatic:
        resources = (3 * k, 3 * k + 1, 3 * k + 2)
        free = [
            (r, res)
            for r in range(start, end)
            for res in resources
            if not occupied[res, r]
        ]
        if len(free) >= p:
            for (r, res), job in zip(free, batch):
                executions.append((r, res, job))
                occupied[res, r] = True
            return
    raise AggregateError(
        f"Lemma 4.4 violated: no multichromatic triple with {p} free slots "
        f"in block [{start}, {end})"
    )
