"""The composed online algorithm for the main problem (Theorem 3).

``run_pipeline`` is the single entry point a downstream user needs: give
it any ``[Δ | 1 | D_ℓ | 1]`` instance and a resource count and it runs
the full stack —

* power-of-two bounds: VarBatch (half-block batching) → Distribute
  (subcolor rate limiting) → ΔLRU-EDF;
* arbitrary bounds: the §5.3 batching → Distribute → ΔLRU-EDF —

returning a feasible schedule for the *original* instance plus the cost
breakdown and the intermediate artifacts for inspection.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.core.cost import CostBreakdown
from repro.core.instance import BatchMode, Instance
from repro.core.rounds import is_power_of_two
from repro.core.schedule import Schedule
from repro.core.validation import ValidationReport, verify_schedule
from repro.reductions.arbitrary import run_arbitrary
from repro.reductions.distribute import run_distribute
from repro.reductions.varbatch import run_varbatch
from repro.simulation.engine import ReconfigurationScheme


@dataclass
class PipelineResult:
    """Outcome of the full online stack on a general instance.

    ``schedule`` is ``None`` for ``record="costs"`` runs; the cost
    breakdown is still exact (bit-identical to the ``record="full"``
    one), but there is nothing to :meth:`verify`.
    """

    instance: Instance
    schedule: Schedule | None
    cost: CostBreakdown
    algorithm: str
    num_resources: int
    stages: tuple[str, ...]

    @property
    def total_cost(self) -> int:
        return self.cost.total

    def verify(self, *, strict: bool = False) -> ValidationReport:
        if self.schedule is None:
            raise RuntimeError(
                "this pipeline ran with record='costs' and has no schedule "
                "to verify; rerun with record='full'"
            )
        return verify_schedule(self.instance, self.schedule, strict=strict)


def run_pipeline(
    instance: Instance,
    num_resources: int,
    *,
    scheme_factory: Callable[[], ReconfigurationScheme] | None = None,
    copies: int = 2,
    speed: int = 1,
    record: str = "full",
    sparse: bool = True,
) -> PipelineResult:
    """Run the appropriate reduction stack for ``instance``.

    Already-batched instances skip VarBatch; rate-limited instances with
    power-of-two bounds go straight to the core algorithm via Distribute
    (which is then a no-op recoloring).

    ``record="costs"`` runs the whole stack on the engine's schedule-free
    fast path (with sparse round skipping when ``sparse``); the cost
    breakdown is exact but ``schedule`` comes back ``None``.
    """
    power_of_two = all(
        is_power_of_two(bound)
        for bound in instance.spec.delay_bounds.values()
    )
    if instance.spec.batch_mode.is_batched:
        result = run_distribute(
            instance,
            num_resources,
            scheme_factory=scheme_factory,
            copies=copies,
            speed=speed,
            record=record,
            sparse=sparse,
        )
        stages = ("Distribute", result.inner.algorithm)
        schedule, cost = result.schedule, result.cost
        algorithm = result.algorithm
    elif power_of_two:
        vb = run_varbatch(
            instance,
            num_resources,
            scheme_factory=scheme_factory,
            copies=copies,
            speed=speed,
            record=record,
            sparse=sparse,
        )
        stages = ("VarBatch", "Distribute", vb.distribute.inner.algorithm)
        schedule, cost = vb.schedule, vb.cost
        algorithm = vb.algorithm
    else:
        ar = run_arbitrary(
            instance,
            num_resources,
            scheme_factory=scheme_factory,
            copies=copies,
            speed=speed,
            record=record,
            sparse=sparse,
        )
        stages = ("ArbitraryBounds", "Distribute", ar.distribute.inner.algorithm)
        schedule, cost = ar.schedule, ar.cost
        algorithm = ar.algorithm
    return PipelineResult(
        instance=instance,
        schedule=schedule,
        cost=cost,
        algorithm=algorithm,
        num_resources=num_resources,
        stages=stages,
    )
