"""Extension to arbitrary delay bounds (Section 5.3).

For a delay bound ``p`` with ``2^j <= p < 2^{j+1}``, a job arriving in
``halfBlock(2^{j-1}, i)`` is delayed until ``halfBlock(2^{j-1}, i+1)``
and restricted to execute there — i.e. it becomes a batched job with
power-of-two delay bound ``2^{j-2}`` (for ``j >= 2``; bounds 2 and 3 map
to unit-length blocks, and bound 1 passes through).  The containment

    new deadline = (i+2) * 2^{j-2}  <=  arrival + 2^{j-1}  <=  arrival + p

guarantees every transformed execution is feasible for the original job.
The batched instance then flows through Distribute as usual.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.core.cost import CostBreakdown
from repro.core.instance import BatchMode, Instance, ProblemSpec, RequestSequence
from repro.core.job import Job
from repro.core.rounds import prev_power_of_two
from repro.core.schedule import Schedule
from repro.reductions.distribute import DistributeResult, run_distribute
from repro.simulation.engine import ReconfigurationScheme


def _transformed_bound(p: int) -> int:
    """The power-of-two batched bound the §5.3 transformation assigns."""
    if p <= 0:
        raise ValueError("delay bounds must be positive")
    if p == 1:
        return 1
    q = prev_power_of_two(p)  # q = 2^j
    # halfBlock(2^{j-1}, ·) has length 2^{j-2}; floor at 1 for tiny bounds.
    return max(q // 4, 1)


def generalize_bounds_instance(instance: Instance) -> Instance:
    """Build the batched power-of-two instance of the §5.3 reduction."""
    new_bounds = {
        color: _transformed_bound(bound)
        for color, bound in instance.spec.delay_bounds.items()
    }
    new_jobs: list[Job] = []
    for job in instance.sequence:
        block_len = new_bounds[job.color]
        if job.delay_bound == 1:
            new_jobs.append(job)
            continue
        i = job.arrival // block_len
        new_arrival = (i + 1) * block_len
        new_jobs.append(job.with_arrival(new_arrival, block_len))
    spec = ProblemSpec(
        new_bounds,
        instance.spec.cost,
        BatchMode.BATCHED,
        require_power_of_two=True,
    )
    max_shift = max(new_bounds.values()) * 2
    sequence = RequestSequence(new_jobs, instance.horizon + max_shift)
    return Instance(
        spec, sequence, name=f"{instance.name or 'instance'}|arbitrary-bounds"
    )


@dataclass
class ArbitraryBoundsResult:
    """Outer schedule for the arbitrary-bound instance plus inner stack.

    ``schedule`` is ``None`` for ``record="costs"`` runs (the sparse cost
    path carries no schedule; the breakdown is still exact).
    """

    instance: Instance
    batched_instance: Instance
    distribute: DistributeResult
    schedule: Schedule | None
    cost: CostBreakdown

    @property
    def total_cost(self) -> int:
        return self.cost.total

    @property
    def algorithm(self) -> str:
        return f"ArbitraryBounds[{self.distribute.algorithm}]"


def run_arbitrary(
    instance: Instance,
    num_resources: int,
    *,
    scheme_factory: Callable[[], ReconfigurationScheme] | None = None,
    copies: int = 2,
    speed: int = 1,
    record: str = "full",
    sparse: bool = True,
) -> ArbitraryBoundsResult:
    """Run the §5.3 reduction end to end on any general instance.

    ``record="costs"`` reuses the Distribute stage's streamed breakdown:
    the block shift preserves jid and color of every job, so the batched
    job multiset costs identically to the original one.
    """
    batched = generalize_bounds_instance(instance)
    distribute = run_distribute(
        batched,
        num_resources,
        scheme_factory=scheme_factory,
        copies=copies,
        speed=speed,
        record=record,
        sparse=sparse,
    )
    schedule = distribute.schedule
    if schedule is None:
        cost = distribute.cost
    else:
        cost = schedule.cost(instance.sequence.jobs, instance.cost_model)
    return ArbitraryBoundsResult(instance, batched, distribute, schedule, cost)
