"""Paging as a special case of reconfigurable resource scheduling.

The paper observes (related work, ref [15]) that Sleator–Tarjan disk
paging *is* the scheduling problem with unit delay bound, unit
reconfiguration cost, infinite drop cost, and single-job requests.  This
module makes the embedding executable:

* :func:`embed_paging_instance` — a unit-size/unit-cost
  :class:`~repro.extensions.filecaching.FileCachingInstance` becomes a
  ``[1 | M | 1 | 1]`` scheduling instance (one color per file, one
  round per request, drop cost ``M`` standing in for ∞);
* :func:`scheduling_cost_to_paging` — converts an offline scheduling
  cost back into a paging miss count, exact once ``M`` exceeds the
  horizon (no optimal schedule drops anything it could serve).

The tests cross-check ``optimal_offline`` on the embedding against
Belady's MIN on micro instances — two theories, one number.
"""

from __future__ import annotations

from repro.core.cost import CostModel
from repro.core.instance import BatchMode, Instance, ProblemSpec, RequestSequence
from repro.core.job import Job
from repro.extensions.filecaching import FileCachingInstance


def embed_paging_instance(
    caching: FileCachingInstance, *, drop_cost: int | None = None
) -> Instance:
    """Embed unit paging into the scheduling model.

    Request *t* for file *f* becomes one job of color *f* arriving in
    round *t* with delay bound 1 — executable only that round, and only
    on a resource configured to *f*.  Reconfiguration cost is 1 (a page
    fetch); the drop cost ``M`` defaults to ``2 * len(requests) + 1``,
    which already makes dropping a servable request suboptimal (serving
    costs at most 1 fetch).
    """
    if not caching.unit:
        raise ValueError("the embedding requires unit sizes and costs")
    if drop_cost is None:
        drop_cost = 2 * len(caching.requests) + 1
    jobs = [
        Job(t, file_id, 1, t)
        for t, file_id in enumerate(caching.requests)
    ]
    bounds = {file_id: 1 for file_id in caching.files}
    spec = ProblemSpec(
        bounds,
        CostModel(reconfig_cost=1, drop_cost=drop_cost),
        BatchMode.GENERAL,
    )
    return Instance(
        spec,
        RequestSequence(jobs),
        name=f"paging-embedding(k={caching.capacity})",
    )


def scheduling_cost_to_paging(
    scheduling_cost: int, num_requests: int, drop_cost: int
) -> tuple[int, int]:
    """Split an embedded scheduling cost into (misses, drops).

    Cost = misses * 1 + drops * M with drops * M identifiable because
    ``M`` exceeds any achievable fetch total.
    """
    drops = scheduling_cost // drop_cost
    misses = scheduling_cost - drops * drop_cost
    if misses > num_requests:
        raise ValueError("inconsistent embedding cost")
    return misses, drops


def paging_optimal_via_scheduling(
    caching: FileCachingInstance, *, max_states: int = 1_000_000
) -> int:
    """Belady's number, computed through the scheduling optimum.

    Runs :func:`repro.offline.optimal.optimal_offline` with ``k``
    resources on the embedded instance and converts the cost back.
    Micro instances only (the scheduling state space carries the cache
    multiset).
    """
    from repro.offline.optimal import optimal_offline

    embedded = embed_paging_instance(caching)
    result = optimal_offline(embedded, caching.capacity, max_states=max_states)
    drop_cost = embedded.spec.cost.drop_cost
    misses, drops = scheduling_cost_to_paging(
        result.cost, len(caching.requests), drop_cost
    )
    if drops:
        raise AssertionError(
            "optimal embedding schedule dropped a servable request; "
            "increase drop_cost"
        )
    return misses
