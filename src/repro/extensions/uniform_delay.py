"""The predecessor variant ``[Δ | c_ℓ | D | 1]``: uniform delay bound,
per-color drop costs.

This is the problem the SPAA 2006 paper ([14]) solves by reducing to
file caching.  We implement the track as an extension: a dedicated
uniform-delay engine plus a **Landlord-style scheduler** that treats each
color as a file of retrieval cost ``Δ`` whose "rent" is paid by the drop
cost of its arriving jobs:

* each color accumulates credit ``c_ℓ`` per arriving job (capped at Δ);
* a color with full credit and pending work is brought into the cache,
  evicting victims by the greedy-dual rule (uniformly decrease cached
  colors' residual credit, evict at zero);
* cached colors execute one pending job per round per slot.

Weighted baselines (greedy by weighted backlog, demand-weighted static)
and the weighted cost accounting live here too; ``EXP-U`` compares them.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Iterable, Mapping

import numpy as np


@dataclass(frozen=True, slots=True, order=True)
class WeightedJob:
    """A unit job with a per-color drop cost (uniform delay bound)."""

    arrival: int
    color: int
    jid: int

    def __post_init__(self) -> None:
        if self.arrival < 0 or self.color < 0:
            raise ValueError("arrival and color must be nonnegative")


@dataclass(frozen=True)
class WeightedCostModel:
    """``Δ`` plus the per-color drop costs ``c_ℓ``."""

    reconfig_cost: int
    drop_costs: Mapping[int, float]

    def __post_init__(self) -> None:
        if self.reconfig_cost <= 0:
            raise ValueError("Δ must be positive")
        for color, cost in self.drop_costs.items():
            if cost < 0:
                raise ValueError(f"drop cost for color {color} must be >= 0")
        object.__setattr__(self, "drop_costs", dict(self.drop_costs))

    def drop_cost(self, color: int) -> float:
        return self.drop_costs[color]


@dataclass(frozen=True)
class WeightedInstance:
    """A ``[Δ | c_ℓ | D | 1]`` instance."""

    jobs: tuple[WeightedJob, ...]
    delay_bound: int
    cost: WeightedCostModel
    name: str = ""

    def __post_init__(self) -> None:
        if self.delay_bound <= 0:
            raise ValueError("the uniform delay bound D must be positive")
        ids = [job.jid for job in self.jobs]
        if len(set(ids)) != len(ids):
            raise ValueError("job ids must be unique")
        for job in self.jobs:
            if job.color not in self.cost.drop_costs:
                raise ValueError(f"job {job.jid} has undeclared color {job.color}")
        object.__setattr__(self, "jobs", tuple(sorted(self.jobs)))

    @property
    def horizon(self) -> int:
        last = max((job.arrival for job in self.jobs), default=0)
        return last + self.delay_bound + 1

    @property
    def colors(self) -> tuple[int, ...]:
        return tuple(sorted(self.cost.drop_costs))

    def total_drop_value(self) -> float:
        """Cost of dropping everything — the trivial upper bound."""
        return sum(self.cost.drop_cost(job.color) for job in self.jobs)


@dataclass
class WeightedRunResult:
    """Outcome of a uniform-delay run."""

    algorithm: str
    num_resources: int
    reconfigs: int = 0
    executed: int = 0
    dropped: int = 0
    drop_cost: float = 0.0
    reconfig_cost: float = 0.0
    drops_by_color: dict[int, int] = field(default_factory=dict)

    @property
    def total_cost(self) -> float:
        return self.reconfig_cost + self.drop_cost


class WeightedPolicy:
    """Reconfiguration strategy for the uniform-delay engine."""

    name = "abstract"

    def reconfigure(self, engine: "UniformDelayEngine") -> None:
        raise NotImplementedError


class UniformDelayEngine:
    """Four-phase engine for ``[Δ | c_ℓ | D | 1]``.

    The cache holds distinct colors, one resource per slot; each cached
    color executes one pending job per round.
    """

    def __init__(
        self,
        instance: WeightedInstance,
        policy: WeightedPolicy,
        num_resources: int,
    ) -> None:
        if num_resources <= 0:
            raise ValueError("need at least one resource")
        self.instance = instance
        self.policy = policy
        self.num_resources = num_resources
        self.delta = instance.cost.reconfig_cost
        self.pending: dict[int, deque[WeightedJob]] = {
            color: deque() for color in instance.colors
        }
        self.cached: set[int] = set()
        self.round_index = 0
        self.result = WeightedRunResult(policy.name, num_resources)
        self._by_round: dict[int, list[WeightedJob]] = {}
        for job in instance.jobs:
            self._by_round.setdefault(job.arrival, []).append(job)

    # -- policy-facing ------------------------------------------------------

    def pending_count(self, color: int) -> int:
        return len(self.pending[color])

    def weighted_backlog(self, color: int) -> float:
        return len(self.pending[color]) * self.instance.cost.drop_cost(color)

    def cache_insert(self, color: int) -> None:
        if color in self.cached:
            raise ValueError(f"color {color} already cached")
        if len(self.cached) >= self.num_resources:
            raise ValueError("cache full; evict first")
        self.cached.add(color)
        self.result.reconfigs += 1
        self.result.reconfig_cost += self.delta

    def cache_evict(self, color: int) -> None:
        self.cached.remove(color)

    # -- run ----------------------------------------------------------------

    def run(self) -> WeightedRunResult:
        deadline = self.instance.delay_bound
        for k in range(self.instance.horizon):
            self.round_index = k
            # Drop phase: uniform bound -> FIFO fronts expire first.
            for color, queue in self.pending.items():
                while queue and queue[0].arrival + deadline <= k:
                    queue.popleft()
                    self.result.dropped += 1
                    self.result.drop_cost += self.instance.cost.drop_cost(color)
                    self.result.drops_by_color[color] = (
                        self.result.drops_by_color.get(color, 0) + 1
                    )
            # Arrival phase.
            for job in self._by_round.get(k, ()):
                self.pending[job.color].append(job)
            # Reconfiguration phase.
            self.policy.reconfigure(self)
            # Execution phase: one job per cached color per round.
            for color in sorted(self.cached):
                queue = self.pending[color]
                if queue:
                    queue.popleft()
                    self.result.executed += 1
        return self.result


class LandlordScheduler(WeightedPolicy):
    """Greedy-dual credit scheme over colors (the [14] reduction route).

    ``credit[ℓ]`` accumulates ``c_ℓ`` per arriving job up to ``Δ``.  A
    color at full credit with pending work is admitted; eviction uniformly
    drains the residual credit of cached colors (greedy-dual), preferring
    to evict idle colors at equal credit.
    """

    name = "landlord-rrs"

    def __init__(self) -> None:
        self.credit: dict[int, float] = {}
        self._seen_arrivals: dict[int, int] = {}

    def reconfigure(self, engine: UniformDelayEngine) -> None:
        cost = engine.instance.cost
        # Accrue credit for jobs that arrived since the last look.
        for color in engine.instance.colors:
            total_arrived = self._arrived_so_far(engine, color)
            new = total_arrived - self._seen_arrivals.get(color, 0)
            if new:
                self._seen_arrivals[color] = total_arrived
                gained = new * cost.drop_cost(color)
                self.credit[color] = min(
                    engine.delta, self.credit.get(color, 0.0) + gained
                )
        # Admit full-credit pending colors, draining victims greedily.
        candidates = sorted(
            (
                c
                for c in engine.instance.colors
                if c not in engine.cached
                and engine.pending_count(c) > 0
                and self.credit.get(c, 0.0) >= engine.delta
            ),
            key=lambda c: (-self.credit.get(c, 0.0), c),
        )
        for color in candidates:
            if len(engine.cached) >= engine.num_resources:
                victim = self._drain_victim(engine)
                if victim is None:
                    break
                engine.cache_evict(victim)
            engine.cache_insert(color)
            self.credit[color] = 0.0

    def _drain_victim(self, engine: UniformDelayEngine) -> int | None:
        cached = engine.cached
        if not cached:
            return None
        residual = {c: self.credit.get(c, 0.0) for c in cached}
        # Idle cached colors are drained first at equal credit.
        victim = min(
            cached,
            key=lambda c: (residual[c], engine.pending_count(c) > 0, c),
        )
        drain = residual[victim]
        for c in cached:
            self.credit[c] = max(0.0, residual[c] - drain)
        return victim

    @staticmethod
    def _arrived_so_far(engine: UniformDelayEngine, color: int) -> int:
        # Arrivals up to the current round, derived from the instance.
        # Cached cumulative counts are built lazily on the engine.
        cache = getattr(engine, "_cumulative_arrivals", None)
        if cache is None:
            horizon = engine.instance.horizon
            cache = {}
            for c in engine.instance.colors:
                series = np.zeros(horizon + 1, dtype=np.int64)
                cache[c] = series
            for job in engine.instance.jobs:
                cache[job.color][job.arrival + 1] += 1
            for series in cache.values():
                np.cumsum(series, out=series)
            engine._cumulative_arrivals = cache  # type: ignore[attr-defined]
        return int(cache[color][min(engine.round_index + 1, len(cache[color]) - 1)])


class WeightedGreedyPolicy(WeightedPolicy):
    """Cache the colors with the largest weighted backlog (hysteresis Δ)."""

    name = "weighted-greedy"

    def __init__(self, hysteresis: float = 1.0) -> None:
        self.hysteresis = hysteresis

    def reconfigure(self, engine: UniformDelayEngine) -> None:
        margin = self.hysteresis * engine.delta
        backlog = {
            c: engine.weighted_backlog(c) for c in engine.instance.colors
        }
        challengers = sorted(
            (c for c in backlog if c not in engine.cached and backlog[c] > 0),
            key=lambda c: (-backlog[c], c),
        )
        for color in challengers:
            if len(engine.cached) < engine.num_resources:
                engine.cache_insert(color)
                continue
            victim = min(engine.cached, key=lambda c: (backlog[c], c))
            if backlog[color] >= backlog[victim] + margin:
                engine.cache_evict(victim)
                engine.cache_insert(color)
            else:
                break


class UnweightedGreedyPolicy(WeightedPolicy):
    """Greedy by *job count* backlog — blind to drop costs.

    The contrast baseline for EXP-U: a cheap-color flood lures it away
    from rare expensive colors.
    """

    name = "unweighted-greedy"

    def __init__(self, hysteresis: float = 1.0) -> None:
        self.hysteresis = hysteresis

    def reconfigure(self, engine: UniformDelayEngine) -> None:
        margin = self.hysteresis * engine.delta
        backlog = {c: float(engine.pending_count(c)) for c in engine.instance.colors}
        challengers = sorted(
            (c for c in backlog if c not in engine.cached and backlog[c] > 0),
            key=lambda c: (-backlog[c], c),
        )
        for color in challengers:
            if len(engine.cached) < engine.num_resources:
                engine.cache_insert(color)
                continue
            victim = min(engine.cached, key=lambda c: (backlog[c], c))
            if backlog[color] >= backlog[victim] + margin:
                engine.cache_evict(victim)
                engine.cache_insert(color)
            else:
                break


class WeightedStaticPolicy(WeightedPolicy):
    """Configure the top colors by total weighted demand, once."""

    name = "weighted-static"

    def reconfigure(self, engine: UniformDelayEngine) -> None:
        if engine.round_index > 0:
            return
        demand: dict[int, float] = {}
        for job in engine.instance.jobs:
            demand[job.color] = demand.get(job.color, 0.0) + engine.instance.cost.drop_cost(job.color)
        top = sorted(demand, key=lambda c: (-demand[c], c))
        for color in top[: engine.num_resources]:
            engine.cache_insert(color)


def simulate_weighted(
    instance: WeightedInstance,
    policy: WeightedPolicy,
    num_resources: int,
) -> WeightedRunResult:
    """Run a weighted policy end to end."""
    return UniformDelayEngine(instance, policy, num_resources).run()


def weighted_greedy_baseline(hysteresis: float = 1.0) -> WeightedPolicy:
    """Factory for the weighted-backlog greedy baseline."""
    return WeightedGreedyPolicy(hysteresis)


def weighted_static_baseline() -> WeightedPolicy:
    """Factory for the demand-weighted static baseline."""
    return WeightedStaticPolicy()


def weighted_per_color_lower_bound(instance: WeightedInstance) -> float:
    """``Σ_ℓ min(Δ, Σ_{jobs of ℓ} c_ℓ)`` — the weighted Lemma 3.1 bound."""
    per_color: dict[int, float] = {}
    for job in instance.jobs:
        per_color[job.color] = per_color.get(job.color, 0.0) + instance.cost.drop_cost(
            job.color
        )
    return sum(
        min(float(instance.cost.reconfig_cost), value)
        for value in per_color.values()
    )


def decoy_flood_instance(
    *,
    delta: int = 4,
    delay_bound: int = 8,
    horizon: int = 256,
    seed: int = 0,
    num_flood_colors: int = 3,
    flood_rate: float = 2.0,
    precious_rate: float = 0.4,
    precious_cost: float = 10.0,
    name: str = "",
) -> WeightedInstance:
    """Cheap high-volume colors flood while a rare expensive color
    trickles — the scenario where cost-blind policies lose badly.

    Run it with fewer resources than ``num_flood_colors + 1`` so the
    policies actually have to choose whom to serve.
    """
    rng = np.random.default_rng(seed)
    precious = num_flood_colors
    drop_costs = {c: 0.2 for c in range(num_flood_colors)}
    drop_costs[precious] = precious_cost
    jobs: list[WeightedJob] = []
    jid = 0
    flood = rng.poisson(flood_rate, size=(num_flood_colors, horizon))
    trickle = rng.poisson(precious_rate, size=horizon)
    for k in range(horizon):
        for color in range(num_flood_colors):
            for _ in range(int(flood[color, k])):
                jobs.append(WeightedJob(k, color, jid))
                jid += 1
        for _ in range(int(trickle[k])):
            jobs.append(WeightedJob(k, precious, jid))
            jid += 1
    return WeightedInstance(
        tuple(jobs),
        delay_bound,
        WeightedCostModel(delta, drop_costs),
        name=name or f"decoy-flood(seed={seed})",
    )


def shifting_weighted_instance(
    num_colors: int,
    delta: int,
    delay_bound: int,
    horizon: int,
    *,
    seed: int,
    phase_length: int = 64,
    hot_rate: float = 1.5,
    cold_rate: float = 0.05,
    cost_skew: float = 1.5,
    name: str = "",
) -> WeightedInstance:
    """Demand rotates between colors per phase — static partitions lose."""
    rng = np.random.default_rng(seed)
    ranks = np.arange(1, num_colors + 1, dtype=np.float64)
    costs = (1.0 / ranks**cost_skew) * num_colors
    drop_costs = {c: float(costs[c]) for c in range(num_colors)}
    jobs: list[WeightedJob] = []
    jid = 0
    for k in range(horizon):
        hot = (k // phase_length) % num_colors
        for color in range(num_colors):
            rate = hot_rate if color == hot else cold_rate
            for _ in range(int(rng.poisson(rate))):
                jobs.append(WeightedJob(k, color, jid))
                jid += 1
    return WeightedInstance(
        tuple(jobs),
        delay_bound,
        WeightedCostModel(delta, drop_costs),
        name=name or f"shifting-weighted(seed={seed})",
    )


def random_weighted_instance(
    num_colors: int,
    delta: int,
    delay_bound: int,
    horizon: int,
    *,
    seed: int,
    rate: float = 0.4,
    cost_skew: float = 2.0,
    name: str = "",
) -> WeightedInstance:
    """Seeded generator: Poisson arrivals, Zipf-skewed drop costs."""
    rng = np.random.default_rng(seed)
    ranks = np.arange(1, num_colors + 1, dtype=np.float64)
    costs = (1.0 / ranks**cost_skew) * num_colors
    drop_costs = {c: float(costs[c]) for c in range(num_colors)}
    jobs: list[WeightedJob] = []
    jid = 0
    for color in range(num_colors):
        counts = rng.poisson(rate, size=horizon)
        for round_index in np.nonzero(counts)[0].tolist():
            for _ in range(int(counts[round_index])):
                jobs.append(WeightedJob(int(round_index), color, jid))
                jid += 1
    return WeightedInstance(
        tuple(jobs),
        delay_bound,
        WeightedCostModel(delta, drop_costs),
        name=name or f"weighted(seed={seed})",
    )
