"""Extensions beyond the paper's main track.

The paper's predecessor ([14], the SPAA 2006 paper whose preliminaries
this paper shares) solves the *dual* variant — uniform delay bounds with
**variable drop costs** ``[Δ | c_ℓ | D | 1]`` — by reducing to file
caching.  This package builds that track as an extension:

* :mod:`repro.extensions.filecaching` — a from-scratch weighted file
  caching substrate (requests, cache, costs) with the Landlord
  (greedy-dual) online algorithm, classic LRU, and Belady's offline MIN
  for the unweighted case, plus the Sleator–Tarjan cyclic adversary.
* :mod:`repro.extensions.uniform_delay` — the ``[Δ | c_ℓ | D | 1]``
  scheduling variant: weighted jobs, a Landlord-style reconfiguration
  scheme driven by accumulated drop-cost credit, and weighted baselines.

The exact algorithm of [14] is not reproduced verbatim (its full text is
not part of this paper); the Landlord-credit scheme here follows the
reduction route [14] describes and is evaluated as such in ``EXP-U``.
"""

from repro.extensions.filecaching import (
    BeladyMIN,
    CachingResult,
    FileCachingInstance,
    Landlord,
    LRUCache,
    cyclic_adversary,
    simulate_caching,
)
from repro.extensions.changeover_time import (
    ChangeoverEngine,
    ChaseBacklogPolicy,
    StickyBacklogPolicy,
    simulate_changeover,
)
from repro.extensions.paging_reduction import (
    embed_paging_instance,
    paging_optimal_via_scheduling,
)
from repro.extensions.uniform_delay import (
    LandlordScheduler,
    WeightedCostModel,
    WeightedInstance,
    WeightedJob,
    simulate_weighted,
    weighted_greedy_baseline,
    weighted_static_baseline,
)

__all__ = [
    "BeladyMIN",
    "ChangeoverEngine",
    "ChaseBacklogPolicy",
    "StickyBacklogPolicy",
    "simulate_changeover",
    "CachingResult",
    "FileCachingInstance",
    "Landlord",
    "LRUCache",
    "cyclic_adversary",
    "embed_paging_instance",
    "paging_optimal_via_scheduling",
    "simulate_caching",
    "LandlordScheduler",
    "WeightedCostModel",
    "WeightedInstance",
    "WeightedJob",
    "simulate_weighted",
    "weighted_greedy_baseline",
    "weighted_static_baseline",
]
