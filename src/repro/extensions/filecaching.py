"""Weighted file caching, from scratch.

The classic substrate the reconfigurable-scheduling line builds on:
Sleator–Tarjan paging [15] is the special case of the scheduling problem
with unit delay bound and infinite drop cost, and the predecessor paper
[14] reduces its variant *to* file caching.  This module implements:

* the problem: files with sizes and retrieval costs, a cache of capacity
  ``k``, a request sequence; a request for an uncached file *must* fetch
  it (paging semantics), paying its retrieval cost;
* **Landlord** (Young's greedy-dual), O(k/(k-h+1))-competitive for
  weighted caching with sizes;
* **LRU** for the unit-size case;
* **Belady's MIN** — the exact offline optimum for unit size/cost;
* the Sleator–Tarjan cyclic adversary showing LRU's ratio is ≥ k.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence


@dataclass(frozen=True)
class FileSpec:
    """A cacheable file: identity, size (cache units), retrieval cost."""

    file_id: int
    size: int = 1
    cost: float = 1.0

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ValueError("file size must be positive")
        if self.cost < 0:
            raise ValueError("retrieval cost must be nonnegative")


@dataclass(frozen=True)
class FileCachingInstance:
    """A caching instance: the file universe, capacity, and requests."""

    files: dict[int, FileSpec]
    capacity: int
    requests: tuple[int, ...]

    def __post_init__(self) -> None:
        if self.capacity <= 0:
            raise ValueError("cache capacity must be positive")
        for file_id in self.requests:
            if file_id not in self.files:
                raise ValueError(f"request for undeclared file {file_id}")
        for spec in self.files.values():
            if spec.size > self.capacity:
                raise ValueError(
                    f"file {spec.file_id} does not fit in the cache"
                )

    @property
    def unit(self) -> bool:
        """Whether every file has unit size and cost (pure paging)."""
        return all(s.size == 1 and s.cost == 1.0 for s in self.files.values())


@dataclass
class CachingResult:
    """Outcome of one caching run."""

    algorithm: str
    misses: int = 0
    retrieval_cost: float = 0.0
    evictions: int = 0
    hit_rounds: list[int] = field(default_factory=list)

    @property
    def hits(self) -> int:
        return len(self.hit_rounds)


class CachingPolicy:
    """Online caching policy interface (must-fetch paging semantics)."""

    name = "abstract"

    def on_hit(self, file_id: int, now: int) -> None:  # pragma: no cover
        """Called when a request hits the cache."""

    def choose_victims(
        self, needed: int, cached: dict[int, FileSpec], now: int
    ) -> list[int]:
        """Return file ids to evict until ``needed`` space is free."""
        raise NotImplementedError

    def on_insert(self, spec: FileSpec, now: int) -> None:  # pragma: no cover
        """Called after the requested file is inserted."""


class LRUCache(CachingPolicy):
    """Least-recently-used (classic Sleator–Tarjan algorithm)."""

    name = "LRU"

    def __init__(self) -> None:
        self._last_used: dict[int, int] = {}

    def on_hit(self, file_id: int, now: int) -> None:
        self._last_used[file_id] = now

    def on_insert(self, spec: FileSpec, now: int) -> None:
        self._last_used[spec.file_id] = now

    def choose_victims(self, needed, cached, now):
        victims = []
        freed = 0
        for file_id in sorted(cached, key=lambda f: self._last_used.get(f, -1)):
            if freed >= needed:
                break
            victims.append(file_id)
            freed += cached[file_id].size
        return victims


class Landlord(CachingPolicy):
    """Young's Landlord / greedy-dual algorithm for weighted caching.

    Each cached file holds credit; on insertion (and on every hit, in
    this standard variant) a file's credit is set to its retrieval cost.
    To make room, decrease every cached file's credit by
    ``δ = min(credit / size)`` per size unit and evict zero-credit files.
    """

    name = "Landlord"

    def __init__(self) -> None:
        self.credit: dict[int, float] = {}
        self._specs: dict[int, FileSpec] = {}

    def on_hit(self, file_id: int, now: int) -> None:
        self.credit[file_id] = self._specs[file_id].cost

    def on_insert(self, spec: FileSpec, now: int) -> None:
        self._specs[spec.file_id] = spec
        self.credit[spec.file_id] = spec.cost

    def choose_victims(self, needed, cached, now):
        victims: list[int] = []
        freed = 0
        credit = {f: self.credit.get(f, 0.0) for f in cached}
        while freed < needed and credit:
            delta = min(credit[f] / cached[f].size for f in credit)
            for f in list(credit):
                credit[f] -= delta * cached[f].size
            zeros = sorted(f for f, c in credit.items() if c <= 1e-12)
            if not zeros:  # numerical guard; delta should zero the argmin
                zeros = [min(credit, key=credit.get)]
            for f in zeros:
                victims.append(f)
                freed += cached[f].size
                del credit[f]
                if freed >= needed:
                    break
        for f, c in credit.items():
            self.credit[f] = c
        for f in victims:
            self.credit.pop(f, None)
        return victims


def simulate_caching(
    instance: FileCachingInstance, policy: CachingPolicy
) -> CachingResult:
    """Run a policy over a caching instance (must-fetch semantics)."""
    result = CachingResult(policy.name)
    cached: dict[int, FileSpec] = {}
    used = 0
    for now, file_id in enumerate(instance.requests):
        spec = instance.files[file_id]
        if file_id in cached:
            policy.on_hit(file_id, now)
            result.hit_rounds.append(now)
            continue
        result.misses += 1
        result.retrieval_cost += spec.cost
        needed = spec.size - (instance.capacity - used)
        if needed > 0:
            victims = policy.choose_victims(needed, dict(cached), now)
            freed = sum(cached[v].size for v in victims)
            if freed < needed:
                raise RuntimeError(
                    f"{policy.name} freed {freed} < needed {needed}"
                )
            for victim in victims:
                used -= cached[victim].size
                del cached[victim]
                result.evictions += 1
        cached[file_id] = spec
        used += spec.size
        policy.on_insert(spec, now)
    return result


class BeladyMIN:
    """Belady's offline MIN: exact optimum for unit-size, unit-cost paging."""

    name = "Belady-MIN"

    def run(self, instance: FileCachingInstance) -> CachingResult:
        if not instance.unit:
            raise ValueError("Belady's MIN is exact only for unit paging")
        result = CachingResult(self.name)
        requests = instance.requests
        # next_use[i] = next index after i requesting the same file.
        next_use = [len(requests)] * len(requests)
        last_seen: dict[int, int] = {}
        for i in range(len(requests) - 1, -1, -1):
            next_use[i] = last_seen.get(requests[i], len(requests))
            last_seen[requests[i]] = i
        cached: set[int] = set()
        upcoming: dict[int, int] = {}
        for i, file_id in enumerate(requests):
            if file_id in cached:
                result.hit_rounds.append(i)
                upcoming[file_id] = next_use[i]
                continue
            result.misses += 1
            result.retrieval_cost += 1.0
            if len(cached) >= instance.capacity:
                victim = max(cached, key=lambda f: upcoming.get(f, 10**18))
                cached.remove(victim)
                result.evictions += 1
            cached.add(file_id)
            upcoming[file_id] = next_use[i]
        return result


def cyclic_adversary(k: int, rounds: int) -> FileCachingInstance:
    """The Sleator–Tarjan adversary: k+1 files requested cyclically.

    LRU (or any deterministic policy with cache size k) misses every
    request, while MIN misses at most once per k requests — the classic
    ratio-``k`` lower bound the paper's competitive framework descends
    from.
    """
    if k < 1:
        raise ValueError("k must be positive")
    files = {i: FileSpec(i) for i in range(k + 1)}
    requests = tuple((i % (k + 1)) for i in range(rounds))
    return FileCachingInstance(files, k, requests)
