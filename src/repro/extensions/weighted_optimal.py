"""Exact offline optimum for the weighted uniform-delay variant.

Micro-instance exhaustive search for ``[Δ | c_ℓ | D | 1]`` — the
denominator that turns the EXP-U policy comparison into measured
competitive ratios.  Mirrors :mod:`repro.offline.bruteforce` but over
weighted jobs and the distinct-color cache of the uniform-delay engine.
"""

from __future__ import annotations

from itertools import combinations

from repro.extensions.uniform_delay import WeightedInstance


def weighted_bruteforce_optimal(
    instance: WeightedInstance,
    num_resources: int,
    *,
    max_rounds: int = 14,
    max_jobs: int = 14,
) -> float:
    """Exact optimal cost for a micro weighted instance."""
    if instance.horizon > max_rounds:
        raise ValueError(f"refusing horizons beyond {max_rounds} rounds")
    if len(instance.jobs) > max_jobs:
        raise ValueError(f"refusing more than {max_jobs} jobs")
    delta = float(instance.cost.reconfig_cost)
    D = instance.delay_bound
    colors = instance.colors

    arrivals: dict[int, list[int]] = {}
    for job in instance.jobs:
        arrivals.setdefault(job.arrival, []).append(job.color)

    # Cache = set of distinct colors of size <= num_resources.
    all_configs: list[frozenset[int]] = []
    for size in range(0, min(num_resources, len(colors)) + 1):
        for combo in combinations(colors, size):
            all_configs.append(frozenset(combo))

    best = [float("inf")]

    def explore(k: int, config: frozenset[int], pending: tuple[tuple[int, int], ...], cost: float) -> None:
        # pending: sorted tuple of (deadline, color).
        if cost >= best[0]:
            return
        if k >= instance.horizon:
            total = cost + sum(
                instance.cost.drop_cost(color) for _, color in pending
            )
            if total < best[0]:
                best[0] = total
            return
        alive = []
        dropped_cost = 0.0
        for deadline, color in pending:
            if deadline <= k:
                dropped_cost += instance.cost.drop_cost(color)
            else:
                alive.append((deadline, color))
        for color in arrivals.get(k, ()):
            alive.append((k + D, color))
        alive.sort()
        base = cost + dropped_cost
        if base >= best[0]:
            return
        for new_config in all_configs:
            step = base + delta * len(new_config - config)
            if step >= best[0]:
                continue
            remaining = list(alive)
            for color in new_config:
                for index, (_, c) in enumerate(remaining):
                    if c == color:
                        remaining.pop(index)
                        break
            explore(k + 1, new_config, tuple(remaining), step)

    explore(0, frozenset(), (), 0.0)
    return best[0]
