"""Changeover *time*: reconfiguration that blocks instead of billing.

The related-work section cites Brucker's offline changeover-time class:
between jobs of different groups a machine is unavailable for a
changeover period.  This extension builds the online analog of the
paper's model with that twist — reconfiguring a resource to a new color
takes ``T`` whole rounds during which it executes nothing, and there is
*no* monetary reconfiguration cost; the objective is pure drop cost.

It lets us ask an honest design question the paper's cost model hides:
with time-based changeovers, thrashing does not just cost money, it
*destroys capacity* — so recency-style stickiness matters even more.
The experiment-style comparison lives in the tests: sticky policies
dominate chase policies by a growing margin as ``T`` grows.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.core.instance import Instance
from repro.core.job import BLACK, Job


@dataclass
class ChangeoverRunResult:
    """Outcome of a changeover-time run (drop-cost objective)."""

    algorithm: str
    num_resources: int
    changeover_time: int
    executed: int = 0
    dropped: int = 0
    changeovers: int = 0
    stalled_rounds: int = 0  # resource-rounds lost to changeovers
    drops_by_color: dict[int, int] = field(default_factory=dict)

    @property
    def drop_cost(self) -> int:
        return self.dropped


class ChangeoverPolicy:
    """Per-round decisions: for each resource, keep or retarget."""

    name = "abstract"

    def reconfigure(self, engine: "ChangeoverEngine") -> None:
        raise NotImplementedError


class ChangeoverEngine:
    """Round engine where recoloring stalls the resource for T rounds."""

    def __init__(
        self,
        instance: Instance,
        policy: ChangeoverPolicy,
        num_resources: int,
        changeover_time: int,
    ) -> None:
        if num_resources <= 0:
            raise ValueError("need at least one resource")
        if changeover_time < 0:
            raise ValueError("changeover time must be nonnegative")
        self.instance = instance
        self.policy = policy
        self.num_resources = num_resources
        self.changeover_time = changeover_time
        self.colors = [BLACK] * num_resources
        #: rounds remaining until the resource is usable again.
        self.stall = [0] * num_resources
        self.pending: dict[int, deque[Job]] = {
            color: deque() for color in instance.spec.delay_bounds
        }
        self.round_index = 0
        self.result = ChangeoverRunResult(
            policy.name, num_resources, changeover_time
        )

    # -- policy-facing -----------------------------------------------------

    def pending_count(self, color: int) -> int:
        return len(self.pending[color])

    def retarget(self, resource: int, color: int) -> None:
        """Begin a changeover; the resource stalls for T rounds."""
        if color == BLACK:
            raise ValueError("cannot retarget to BLACK")
        if self.colors[resource] == color:
            return
        self.colors[resource] = color
        self.stall[resource] = self.changeover_time
        self.result.changeovers += 1

    def ready(self, resource: int) -> bool:
        return self.stall[resource] == 0 and self.colors[resource] != BLACK

    # -- run ---------------------------------------------------------------

    def run(self) -> ChangeoverRunResult:
        by_round: dict[int, list[Job]] = {}
        for job in self.instance.sequence:
            by_round.setdefault(job.arrival, []).append(job)
        for k in range(self.instance.horizon):
            self.round_index = k
            # Drop phase.
            for color, queue in self.pending.items():
                while queue and queue[0].deadline <= k:
                    queue.popleft()
                    self.result.dropped += 1
                    self.result.drops_by_color[color] = (
                        self.result.drops_by_color.get(color, 0) + 1
                    )
            # Arrival phase.
            for job in by_round.get(k, ()):
                self.pending[job.color].append(job)
            # Reconfiguration phase (policy may start changeovers).
            self.policy.reconfigure(self)
            # Execution phase: stalled resources burn the round.
            for resource in range(self.num_resources):
                if self.stall[resource] > 0:
                    self.stall[resource] -= 1
                    self.result.stalled_rounds += 1
                    continue
                color = self.colors[resource]
                if color == BLACK:
                    continue
                queue = self.pending[color]
                if queue:
                    queue.popleft()
                    self.result.executed += 1
        return self.result


class ChaseBacklogPolicy(ChangeoverPolicy):
    """Retarget every ready resource at the biggest backlog, always."""

    name = "chase"

    def reconfigure(self, engine: ChangeoverEngine) -> None:
        backlog = {
            c: engine.pending_count(c) for c in engine.instance.spec.delay_bounds
        }
        ranked = sorted(
            (c for c in backlog if backlog[c] > 0),
            key=lambda c: (-backlog[c], c),
        )
        if not ranked:
            return
        for resource in range(engine.num_resources):
            if engine.stall[resource] > 0:
                continue
            target = ranked[resource % len(ranked)]
            if engine.colors[resource] != target:
                engine.retarget(resource, target)


class StickyBacklogPolicy(ChangeoverPolicy):
    """Retarget only when the payoff clears the changeover's capacity loss.

    A switch is worth it when the target backlog exceeds what the
    resource could plausibly serve of its current color during the stall
    window — the natural time-model analog of Δ-hysteresis.
    """

    name = "sticky"

    def __init__(self, margin: float = 1.0) -> None:
        self.margin = margin

    def reconfigure(self, engine: ChangeoverEngine) -> None:
        threshold = self.margin * (engine.changeover_time + 1)
        backlog = {
            c: engine.pending_count(c) for c in engine.instance.spec.delay_bounds
        }
        ranked = sorted(
            (c for c in backlog if backlog[c] > 0),
            key=lambda c: (-backlog[c], c),
        )
        if not ranked:
            return
        taken = 0
        for resource in range(engine.num_resources):
            if engine.stall[resource] > 0:
                continue
            current = engine.colors[resource]
            if current != BLACK and backlog.get(current, 0) > 0:
                continue  # keep serving its own queue
            target = ranked[taken % len(ranked)]
            taken += 1
            if current == BLACK or backlog[target] >= threshold:
                engine.retarget(resource, target)


def simulate_changeover(
    instance: Instance,
    policy: ChangeoverPolicy,
    num_resources: int,
    changeover_time: int,
) -> ChangeoverRunResult:
    """Run a changeover-time policy end to end."""
    return ChangeoverEngine(instance, policy, num_resources, changeover_time).run()
