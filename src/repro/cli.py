"""Command-line interface: ``python -m repro`` / the ``repro`` script.

Subcommands::

    repro list                      # registered experiments
    repro run EXP-A [--quick]       # run one experiment, print its report
    repro run-all [--quick]         # run every experiment
    repro export EXP-A --dir out/   # run + write .txt/.json/.csv bundle
    repro search dlru-edf           # adversary-hunt a scheme
    repro offline --method rds      # exact offline optimum of a seeded workload
    repro describe trace.json       # workload statistics for a saved trace
    repro record run.jsonl          # traced run: JSONL trace + metrics
    repro stream --rounds 1000000   # unbounded arrivals, bounded memory,
                                    #   periodic checkpoints, resumable
    repro trace run.jsonl           # render a recorded trace as a timeline
    repro stats run.jsonl           # aggregate statistics of a recorded run
    repro alerts example            # starter alert-rule file (JSON)
    repro alerts check s.jsonl ...  # evaluate rules over a recorded series
    repro alerts watch URL          # poll a live /alerts endpoint
    repro obs monitor               # run with live invariant monitors attached
    repro obs diff a.jsonl b.jsonl  # first divergence + cost attribution
    repro obs export SRC --chrome=… # Perfetto / Prometheus exporters
    repro runs list                 # persistent run registry: recent runs
    repro runs show RUN_ID          # one run record in full
    repro runs diff RUN_A RUN_B     # field/cost diff of two runs
    repro serve --port 9100         # live ops HTTP: /metrics /health /runs
    repro demo                      # 30-second tour on a random workload

``repro record|search|offline`` take ``--registry-dir DIR`` to append
each invocation to the persistent run registry the ``runs`` and
``serve`` commands read.

Reports are printed as fixed-width tables plus ASCII series; pass
``--output PATH`` to also write the rendered report to a file.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path


#: Where ``--registry-dir`` points when passed without a value.
DEFAULT_REGISTRY_DIR = ".repro/runs"


def _recorder_for(args: argparse.Namespace):
    """RegistrySink for ``--registry-dir``, or None when not requested."""
    registry_dir = getattr(args, "registry_dir", None)
    if registry_dir is None:
        return None
    from repro.obs.registry import RegistrySink

    return RegistrySink(registry_dir)


def _open_registry(registry_dir: str):
    """Open an existing registry for reading, or None (caller exits 1)."""
    from repro.obs.registry import RunRegistry

    root = Path(registry_dir)
    if not root.is_dir() or not any(root.glob("seg-*.jsonl")):
        print(
            f"error: no run registry at {registry_dir} — record runs first "
            "with `repro record|search|offline --registry-dir "
            f"{registry_dir}`",
            file=sys.stderr,
        )
        return None
    return RunRegistry(root)


def _load_trace(path: str, label: str = "trace"):
    """Load a JSONL trace for a command, or None (caller exits 1).

    Missing files, empty files, and truncated/corrupt JSONL all fail
    with one clear line on stderr instead of a traceback.
    """
    from repro.obs.tracing import read_jsonl_trace

    target = Path(path)
    if not target.is_file():
        print(f"error: {label} file {path} does not exist", file=sys.stderr)
        return None
    try:
        records = read_jsonl_trace(target)
    except ValueError as error:
        print(
            f"error: {label} file is truncated or corrupt — {error}\n"
            "(a torn trailing line from a crashed writer can be skipped "
            "with read_jsonl_trace(..., strict=False))",
            file=sys.stderr,
        )
        return None
    if not records:
        print(
            f"error: {label} file {path} contains no trace records",
            file=sys.stderr,
        )
        return None
    return records


def _cmd_list(_: argparse.Namespace) -> int:
    from repro.experiments.registry import EXPERIMENTS

    width = max(len(k) for k in EXPERIMENTS)
    for experiment_id in sorted(EXPERIMENTS):
        exp = EXPERIMENTS[experiment_id]
        print(f"{experiment_id.ljust(width)}  {exp.title}")
    return 0


def _emit(report, output: str | None) -> None:
    text = report.render()
    print(text)
    if output:
        Path(output).write_text(text + "\n")
        print(f"\n[written to {output}]")


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.experiments.registry import run_experiment

    report = run_experiment(args.experiment_id, quick=args.quick)
    _emit(report, args.output)
    return 0


def _cmd_run_all(args: argparse.Namespace) -> int:
    from repro.experiments.registry import EXPERIMENTS

    chunks = []
    for experiment_id in sorted(EXPERIMENTS):
        report = EXPERIMENTS[experiment_id].run(quick=args.quick)
        chunks.append(report.render())
        print(chunks[-1])
        print()
    if args.output:
        Path(args.output).write_text("\n\n".join(chunks) + "\n")
        print(f"[written to {args.output}]")
    return 0


def _cmd_export(args: argparse.Namespace) -> int:
    from repro.analysis.export import save_report
    from repro.experiments.registry import run_experiment

    report = run_experiment(args.experiment_id, quick=args.quick)
    paths = save_report(report, args.dir)
    for kind, path in sorted(paths.items()):
        print(f"{kind}: {path}")
    return 0


_SCHEME_CHOICES = {
    "dlru": "repro.algorithms.dlru:DeltaLRU",
    "edf": "repro.algorithms.edf:EDF",
    "dlru-edf": "repro.algorithms.dlru_edf:DeltaLRUEDF",
}


def _cmd_search(args: argparse.Namespace) -> int:
    import importlib

    from repro.analysis.adversary_search import SearchConfig, search_adversary
    from repro.runtime import ParallelRunner

    module_name, class_name = _SCHEME_CHOICES[args.scheme].split(":")
    scheme_factory = getattr(importlib.import_module(module_name), class_name)
    config = SearchConfig(
        iterations=args.iterations,
        restarts=args.restarts,
        seed=args.seed,
        horizon=args.horizon,
        shared_cache=args.shared_cache,
    )
    # Restarts are pre-seeded, so parallel results match serial exactly.
    runner = (
        ParallelRunner(max_workers=args.jobs)
        if args.jobs is not None
        else ParallelRunner.from_env(default_workers=1)
    )
    result = search_adversary(
        scheme_factory, config, runner=runner, recorder=_recorder_for(args)
    )
    print(f"scheme:       {args.scheme}")
    print(f"evaluations:  {result.evaluations}")
    print(f"best ratio:   {result.best_ratio:.3f} (vs hindsight OFF)")
    print(f"instance:     {result.best_instance.describe()}")
    if args.save:
        from repro.workloads.traces import save_instance

        save_instance(result.best_instance, args.save)
        print(f"saved to:     {args.save}")
    return 0


def _cmd_offline(args: argparse.Namespace) -> int:
    import time

    from repro.offline.optimal import (
        SearchSpaceExceeded,
        optimal_offline,
        optimal_offline_exhaustive,
    )
    from repro.workloads.random_batched import random_general

    instance = random_general(
        args.colors,
        args.resources,
        args.horizon,
        seed=args.seed,
        rate=args.rate,
        bound_choices=tuple(args.bounds),
    )
    tracer = None
    sink = None
    if args.trace:
        from repro.obs import JsonlSink, Tracer

        sink = JsonlSink(args.trace)
        tracer = Tracer(sink)
    started = time.perf_counter()
    try:
        result = optimal_offline(
            instance,
            args.resources,
            method=args.method,
            max_states=args.max_states,
            tracer=tracer,
            recorder=_recorder_for(args),
        )
    except SearchSpaceExceeded as exc:
        print(
            f"search space exceeded after {exc.nodes_expanded} nodes "
            f"(best incumbent {exc.best_incumbent}, "
            f"top bound source {exc.bound_source}); raise --max-states"
        )
        return 1
    finally:
        if sink is not None:
            sink.close()
    elapsed = time.perf_counter() - started
    print(f"instance:       {instance.name} (horizon {instance.horizon})")
    print(f"method:         {result.method}")
    print(f"optimal cost:   {result.cost}")
    print(
        f"breakdown:      {result.num_reconfigs} reconfigs, "
        f"{result.num_drops} drops"
    )
    print(f"nodes expanded: {result.nodes_expanded}")
    print(f"pruned:         {result.candidates_pruned}")
    if result.warm_start_cost is not None:
        print(f"warm start:     {result.warm_start_cost}")
    if result.bound_source_histogram:
        hist = result.bound_source_histogram
        parts = [
            f"{name}: {hist[name]}"
            for name in sorted(hist, key=hist.get, reverse=True)
        ]
        print("bound sources:  " + "  ".join(parts))
    print(f"wall clock:     {elapsed:.3f}s")
    if args.check:
        check = (
            optimal_offline_exhaustive(instance, args.resources)
            if args.check == "exhaustive"
            else optimal_offline(
                instance,
                args.resources,
                method=args.check,
                max_states=args.max_states,
            )
        )
        agree = check.cost == result.cost
        print(
            f"cross-check:    {args.check} cost {check.cost} "
            f"({check.nodes_expanded} nodes) — "
            + ("agreement" if agree else "MISMATCH")
        )
        if not agree:
            return 1
    if args.trace:
        print(f"trace written to {args.trace}")
    return 0


def _cmd_record(args: argparse.Namespace) -> int:
    import importlib

    from repro.obs import (
        JsonlSink,
        MetricsRegistry,
        PhaseProfiler,
        Tracer,
        flame_table,
        render_metrics,
    )
    from repro.simulation.engine import simulate
    from repro.workloads.random_batched import random_batched

    module_name, class_name = _SCHEME_CHOICES[args.scheme].split(":")
    scheme_factory = getattr(importlib.import_module(module_name), class_name)
    if args.epochs and args.record != "full":
        print("--epochs needs the full event trace; pass --record full")
        return 2
    instance = random_batched(
        args.colors,
        args.delta,
        args.horizon,
        seed=args.seed,
        load=args.load,
        name=f"record-seed{args.seed}",
    )
    if args.sample is not None and args.epochs:
        print("--epochs reads the full trace; it cannot ride a sampled one")
        return 2
    registry = MetricsRegistry()
    profiler = PhaseProfiler() if args.profile else None
    with JsonlSink(args.out) as sink:
        if args.sample is not None:
            from repro.obs.sampling import SamplingController, SamplingTracer

            if args.sample == "adaptive":
                controller = SamplingController(
                    target_overhead=args.sample_target, seed=args.seed
                )
            else:
                try:
                    probability = float(args.sample)
                except ValueError:
                    print(
                        "--sample takes a keep probability in [0, 1] "
                        "or 'adaptive'"
                    )
                    return 2
                controller = SamplingController(
                    probability=probability, seed=args.seed
                )
            tracer = SamplingTracer(sink, controller=controller)
        else:
            tracer = Tracer(sink)
        result = simulate(
            instance,
            scheme_factory(),
            args.resources,
            speed=args.speed,
            record=args.record,
            engine=args.engine,
            tracer=tracer,
            registry=registry,
            profiler=profiler,
        )
        if args.epochs:
            from repro.analysis.epochs import analyze_epochs, annotate_epochs

            analysis = analyze_epochs(
                result.trace, threshold=max(1, args.resources // 4)
            )
            emitted = annotate_epochs(analysis, tracer)
            print(f"annotated {emitted} epoch/super-epoch boundaries")
    recorder = _recorder_for(args)
    if recorder is not None:
        record = recorder.record_simulate(
            result,
            engine=args.engine,
            seed=args.seed,
            metrics_snapshot=registry.snapshot(),
            extra={"trace_path": str(args.out)},
        )
        print(f"recorded as run {record.run_id} in {args.registry_dir}")
    print(
        f"{instance.name}: total cost {result.total_cost} "
        f"(reconfig {result.cost.reconfig_cost}, drops {result.cost.drop_cost})"
    )
    print(f"trace written to {args.out}")
    if args.sample is not None:
        stats = tracer.controller.stats()
        print(
            f"sampling: kept {stats['rounds_kept']}/{stats['rounds_seen']} "
            f"rounds at p={stats['probability']} "
            f"({stats['records_emitted']} records emitted, "
            f"{stats['records_suppressed']} suppressed)"
        )
    print()
    print(render_metrics(registry.snapshot()))
    if profiler is not None:
        print()
        print(flame_table(profiler))
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.obs.render import render_trace_timeline

    records = _load_trace(args.trace)
    if records is None:
        return 1
    print(render_trace_timeline(records, max_rounds=args.rounds))
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    from repro.obs.render import render_trace_stats

    records = _load_trace(args.trace)
    if records is None:
        return 1
    print(render_trace_stats(records))
    return 0


def _cmd_obs_monitor(args: argparse.Namespace) -> int:
    import importlib
    import json

    from repro.obs import (
        JsonlSink,
        MemorySink,
        MetricsRegistry,
        MonitorError,
        TeeSink,
        Tracer,
        standard_monitors,
    )
    from repro.simulation.engine import simulate
    from repro.workloads.random_batched import random_batched

    module_name, class_name = _SCHEME_CHOICES[args.scheme].split(":")
    scheme_factory = getattr(importlib.import_module(module_name), class_name)
    instance = random_batched(
        args.colors,
        args.delta,
        args.horizon,
        seed=args.seed,
        load=args.load,
        name=f"monitor-seed{args.seed}",
    )
    registry = MetricsRegistry()
    monitors = standard_monitors(instance, policy=args.policy, registry=registry)
    sinks = [JsonlSink(args.out)] if args.out else [MemorySink()]
    tracer = Tracer(TeeSink(*sinks, *monitors))
    try:
        result = simulate(
            instance,
            scheme_factory(),
            args.resources,
            speed=args.speed,
            record="costs",
            engine=args.engine,
            tracer=tracer,
            registry=registry,
        )
        tracer.close()
    except MonitorError as error:
        print(f"VIOLATION (policy=raise): {error}")
        return 1
    print(
        f"{instance.name}: total cost {result.total_cost} "
        f"(reconfig {result.cost.reconfig_cost}, drops {result.cost.drop_cost})"
    )
    failures = 0
    for monitor in monitors:
        if monitor.ok:
            extra = ""
            if monitor.name == "ratio" and monitor.ratio is not None:
                extra = (
                    f"  (cost x{monitor.ratio:.2f} of lower bound "
                    f"{monitor.lower_bound})"
                )
            print(f"  {monitor.name}: ok ({monitor.records_seen} records){extra}")
        else:
            failures += len(monitor.violations)
            for violation in monitor.violations:
                print(f"  {violation}")
    if args.out:
        print(f"trace written to {args.out}")
    if args.metrics_out:
        Path(args.metrics_out).write_text(
            json.dumps(registry.snapshot(), indent=2) + "\n"
        )
        print(f"metrics snapshot written to {args.metrics_out}")
    if failures:
        print(f"{failures} violation(s)")
        return 1
    return 0


def _cmd_obs_diff(args: argparse.Namespace) -> int:
    from repro.obs import diff_traces, render_trace_diff

    records_a = _load_trace(args.trace_a, label="baseline trace")
    if records_a is None:
        return 1
    records_b = _load_trace(args.trace_b, label="candidate trace")
    if records_b is None:
        return 1
    diff = diff_traces(records_a, records_b, num_ranges=args.ranges)
    print(render_trace_diff(diff))
    return 0 if diff.identical else 1


def _cmd_obs_export(args: argparse.Namespace) -> int:
    import json

    if (args.chrome is None) == (args.prom is None):
        print("pass exactly one of --chrome or --prom")
        return 2
    if args.chrome:
        from repro.obs import read_jsonl_trace, write_chrome_trace

        count = write_chrome_trace(read_jsonl_trace(args.source), args.chrome)
        print(f"{count} trace events written to {args.chrome}")
        print("open in https://ui.perfetto.dev or chrome://tracing")
        return 0
    from repro.obs import prometheus_text

    snapshot = json.loads(Path(args.source).read_text())
    text = prometheus_text(snapshot)
    Path(args.prom).write_text(text)
    print(f"{len(text.splitlines())} exposition lines written to {args.prom}")
    return 0


def _cmd_describe(args: argparse.Namespace) -> int:
    from repro.workloads.stats import describe_workload
    from repro.workloads.traces import instance_from_csv, load_instance

    path = Path(args.trace)
    if path.suffix == ".csv":
        instance = instance_from_csv(path.read_text())
    else:
        instance = load_instance(path)
    print(describe_workload(instance))
    return 0


def _cmd_runs_list(args: argparse.Namespace) -> int:
    from repro.obs.registry import render_run_list

    registry = _open_registry(args.registry_dir)
    if registry is None:
        return 1
    print(render_run_list(registry.last(args.limit, kind=args.kind)))
    if registry.skipped_lines:
        print(
            f"({registry.skipped_lines} torn trailing line(s) skipped "
            "— crash debris)"
        )
    return 0


def _cmd_runs_show(args: argparse.Namespace) -> int:
    from repro.obs.registry import render_run

    registry = _open_registry(args.registry_dir)
    if registry is None:
        return 1
    try:
        record = registry.get(args.run_id)
    except KeyError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    print(render_run(record))
    return 0


def _cmd_runs_diff(args: argparse.Namespace) -> int:
    from repro.obs.registry import diff_runs, render_run_diff

    registry = _open_registry(args.registry_dir)
    if registry is None:
        return 1
    try:
        record_a = registry.get(args.run_a)
        record_b = registry.get(args.run_b)
    except KeyError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    diff = diff_runs(record_a, record_b)
    print(render_run_diff(diff))
    return 0 if diff.identical_outcome else 1


def _cmd_serve(args: argparse.Namespace) -> int:
    import time

    from repro.obs.registry import RegistrySink, RunRegistry
    from repro.obs.service import OpsService, OpsState

    run_registry = (
        RunRegistry(args.registry_dir) if args.registry_dir else None
    )
    state = OpsState(run_registry=run_registry)
    service = OpsService(state, host=args.host, port=args.port)
    service.start()
    print(f"serving on {service.url}")
    print("endpoints: /metrics  /health  /runs  /runs/<id>")
    try:
        if args.demo:
            from repro.algorithms import DeltaLRU, DeltaLRUEDF, EDF
            from repro.experiments.sweeps import run_matrix
            from repro.runtime import ParallelRunner
            from repro.workloads.random_batched import random_batched

            instances = [
                random_batched(
                    6, 4, 256, seed=seed, load=0.5, name=f"serve-seed{seed}"
                )
                for seed in range(4)
            ]
            recorder = (
                RegistrySink(run_registry) if run_registry is not None else None
            )
            sweep = run_matrix(
                instances,
                [DeltaLRUEDF, DeltaLRU, EDF],
                8,
                record="costs",
                runner=ParallelRunner.from_env(default_workers=2),
                recorder=recorder,
                publish=state.publish_snapshot,
            )
            if recorder is not None:
                state.note_run_recorded(recorder.recorded)
            print(
                "demo matrix done: "
                + ", ".join(
                    f"{name}={cost:.0f}"
                    for name, cost in sweep.mean_cost_per_scheme().items()
                )
            )
        if args.ttl is not None:
            time.sleep(args.ttl)
        else:
            while True:
                time.sleep(3600)
    except KeyboardInterrupt:
        print("\nshutting down")
    finally:
        service.stop()
        if run_registry is not None:
            run_registry.close()
    return 0


def _cmd_stream(args: argparse.Namespace) -> int:
    import importlib

    from repro.obs.metrics import MetricsRegistry, render_metrics
    from repro.streaming import (
        AdmissionPolicy,
        StreamSession,
        rate_limited_source,
    )
    from repro.streaming.checkpoint import CheckpointError

    module_name, class_name = _SCHEME_CHOICES[args.scheme].split(":")
    scheme_factory = getattr(importlib.import_module(module_name), class_name)

    def make_source():
        return rate_limited_source(
            args.colors, args.delta, seed=args.seed, load=args.load
        )

    policy = (
        AdmissionPolicy(queue_cap=args.queue_cap)
        if args.queue_cap is not None
        else None
    )
    service = None
    state = None
    if args.serve is not None:
        from repro.obs.service import OpsService, OpsState

        state = OpsState()
        service = OpsService(state, port=args.serve).start()
        print(
            f"serving on {service.url} "
            "(endpoints: /metrics /stream /series /alerts /health)"
        )
        registry = state.metrics
    else:
        registry = MetricsRegistry()

    recorder = None
    if args.series is not None or args.rules is not None or state is not None:
        from repro.obs.timeseries import SeriesRecorder

        rules = None
        if args.rules is not None:
            from repro.obs.alerts import load_rules

            try:
                rules = load_rules(args.rules)
            except ValueError as error:
                print(f"error: {error}", file=sys.stderr)
                if service is not None:
                    service.stop()
                return 2
        recorder = SeriesRecorder(
            registry, capacity=args.series_capacity, rules=rules
        )

    try:
        if args.resume:
            if args.checkpoint is None:
                print(
                    "error: --resume needs --checkpoint PATH",
                    file=sys.stderr,
                )
                return 2
            session = StreamSession.resume(
                make_source(),
                scheme_factory(),
                args.checkpoint,
                policy=policy,
                registry=registry,
                recorder=recorder,
                segment_rounds=args.segment,
            )
            print(f"resumed from {args.checkpoint} at round {session.round}")
        else:
            session = StreamSession(
                make_source(),
                scheme_factory(),
                args.resources,
                engine=args.engine,
                speed=args.speed,
                policy=policy,
                registry=registry,
                recorder=recorder,
                segment_rounds=args.segment,
            )
    except CheckpointError as error:
        print(f"error: {error}", file=sys.stderr)
        if service is not None:
            service.stop()
        return 1

    def publish(_checkpoint=None) -> None:
        if state is None:
            return
        result = session.result()
        state.publish_stream(
            {
                "round": result.rounds,
                "total_cost": result.total_cost,
                "offered": result.offered,
                "admitted": result.admitted,
                "rejected": result.rejected,
                "rejection_rate": result.rejection_rate,
                "rejected_by_color": {
                    str(color): count
                    for color, count in sorted(
                        session.ingest.rejected_by_color.items()
                    )
                },
                "checkpoints_written": result.checkpoints_written,
                "last_checkpoint_round": session.last_checkpoint_round,
                "last_checkpoint_path": session.last_checkpoint_path,
            }
        )
        if recorder is not None:
            state.publish_series(recorder.snapshot())
            if recorder.alerts is not None:
                state.publish_alerts(recorder.alerts.payload())

    remaining = args.rounds - session.round
    if remaining < 0:
        print(
            f"error: checkpoint is already at round {session.round}, past "
            f"the --rounds target {args.rounds}",
            file=sys.stderr,
        )
        if service is not None:
            service.stop()
        return 1
    try:
        result = session.run(
            remaining,
            checkpoint_every=args.checkpoint_every
            if args.checkpoint is not None
            else None,
            checkpoint_path=args.checkpoint,
            on_checkpoint=publish,
        )
    except KeyboardInterrupt:
        if args.checkpoint is not None:
            if session.last_checkpoint_round != session.round:
                session.save_checkpoint(args.checkpoint)
            print(
                f"\ninterrupted at round {session.round}; checkpoint saved "
                f"to {args.checkpoint} (resume with --resume)"
            )
        else:
            print(f"\ninterrupted at round {session.round}; no checkpoint")
        if service is not None:
            service.stop()
        return 130
    if args.checkpoint is not None:
        # Skip the save if the periodic cadence already checkpointed this
        # exact round: a redundant write would bump the checkpoint
        # counter, making a killed-and-resumed run's stream.checkpoints
        # series diverge from an uninterrupted one's.
        if session.last_checkpoint_round != session.round:
            session.save_checkpoint(args.checkpoint)
            print(f"final checkpoint saved to {args.checkpoint}")
        else:
            print(f"checkpoint already current at round {session.round}")
    publish()
    if args.series is not None and recorder is not None:
        from repro.obs.timeseries import write_series_jsonl

        write_series_jsonl(recorder, args.series)
        print(
            f"series written to {args.series} "
            f"({len(recorder.names())} series, {recorder.samples} samples)"
        )
    print(
        f"{result.name}: {result.rounds} rounds, total cost "
        f"{result.total_cost} (reconfig {result.cost.reconfig_cost}, "
        f"drops {result.cost.drop_cost})"
    )
    print(
        f"ingestion: offered {result.offered}, admitted {result.admitted}, "
        f"rejected {result.rejected} "
        f"(rate {result.rejection_rate:.3f})"
    )
    if result.rounds_per_second:
        print(f"throughput: {result.rounds_per_second:,.0f} rounds/s")
    if recorder is not None and recorder.alerts is not None:
        engine = recorder.alerts
        for event in engine.events:
            print(f"alert: {event}")
        if engine.firing:
            print(f"alerts still firing: {', '.join(engine.firing)}")
    print()
    print(render_metrics(registry.snapshot(prefix="stream.")))
    if recorder is not None and recorder.series:
        from repro.obs.render import render_series

        base = [
            name
            for name in recorder.names()
            if name.startswith("stream.")
            and not name.endswith((".delta", ".rate", ".ewma"))
        ]
        if base:
            print()
            print(render_series(recorder, names=base))
    if service is not None:
        if args.serve_ttl:
            import time as _time

            try:
                _time.sleep(args.serve_ttl)
            except KeyboardInterrupt:
                pass
        service.stop()
    return 0


def _cmd_alerts_example(args: argparse.Namespace) -> int:
    from repro.obs.alerts import example_rules, rules_to_json

    text = rules_to_json(example_rules(delay_bound=args.delay_bound))
    if args.out:
        Path(args.out).write_text(text)
        print(f"example rules written to {args.out}")
    else:
        print(text, end="")
    return 0


def _cmd_alerts_check(args: argparse.Namespace) -> int:
    from repro.obs.alerts import evaluate_rules, load_rules
    from repro.obs.timeseries import read_series_jsonl

    try:
        rules = load_rules(args.rules)
        snapshot = read_series_jsonl(args.series)
    except (OSError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    engine = evaluate_rules(rules, snapshot["series"])
    print(
        f"{args.series}: {len(snapshot['series'])} series, "
        f"{engine.samples_seen} sample rounds, {len(rules)} rule(s)"
    )
    for event in engine.events:
        print(f"  {event}")
    if engine.events_dropped:
        print(f"  ({engine.events_dropped} older event(s) dropped)")
    if engine.firing:
        print(f"firing at end of series: {', '.join(engine.firing)}")
        return 1
    print("no alerts firing at end of series")
    return 0


def _cmd_alerts_watch(args: argparse.Namespace) -> int:
    import json as _json
    import time as _time
    from urllib.error import URLError
    from urllib.request import urlopen

    url = args.url.rstrip("/")
    if not url.startswith("http"):
        url = f"http://{url}"
    endpoint = f"{url}/alerts"
    deadline = (
        _time.monotonic() + args.ttl if args.ttl is not None else None
    )
    seen_events = 0
    last_firing: list[str] | None = None
    exit_code = 0
    try:
        while True:
            try:
                with urlopen(endpoint, timeout=5) as response:
                    payload = _json.loads(response.read().decode("utf-8"))
            except (URLError, OSError, ValueError) as error:
                print(f"error: cannot poll {endpoint}: {error}", file=sys.stderr)
                return 2
            if not payload.get("active"):
                print(f"{endpoint}: no alert engine published yet")
            else:
                events = payload.get("events", [])
                for event in events[seen_events:]:
                    glyph = (
                        "FIRING" if event["kind"] == "fired" else "resolved"
                    )
                    print(
                        f"[{event['severity']}] {event['rule']} {glyph} "
                        f"at round {event['round']} "
                        f"(value {event['value']:g})"
                    )
                seen_events = len(events)
                firing = list(payload.get("firing", []))
                if firing != last_firing:
                    print(
                        "firing now: " + (", ".join(firing) or "(none)")
                    )
                    last_firing = firing
                exit_code = 1 if firing else 0
            if deadline is not None and _time.monotonic() >= deadline:
                return exit_code
            _time.sleep(args.interval)
    except KeyboardInterrupt:
        return exit_code


def _cmd_demo(_: argparse.Namespace) -> int:
    from repro import DeltaLRU, DeltaLRUEDF, EDF, simulate
    from repro.analysis.competitive import best_effort_ratio
    from repro.analysis.report import format_table
    from repro.workloads import random_rate_limited

    instance = random_rate_limited(
        6, 3, 64, seed=7, load=0.7, bound_choices=(2, 4, 8)
    )
    print(instance.describe(), "\n")
    rows = []
    for scheme in (DeltaLRUEDF(), DeltaLRU(), EDF()):
        result = simulate(instance, scheme, 16)
        estimate = best_effort_ratio(instance, result.total_cost, 2)
        rows.append(
            (
                scheme.name,
                result.total_cost,
                result.cost.reconfig_cost,
                result.cost.drop_cost,
                round(estimate.ratio, 3),
            )
        )
    print(
        format_table(
            "Three reconfiguration schemes, 16 resources vs OFF with 2",
            ("scheme", "total", "reconfig", "drops", "ratio vs OFF"),
            rows,
        )
    )
    return 0


def _add_registry_dir(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--registry-dir",
        nargs="?",
        const=DEFAULT_REGISTRY_DIR,
        default=None,
        metavar="DIR",
        help="append this invocation to the persistent run registry "
        f"(default dir when passed bare: {DEFAULT_REGISTRY_DIR})",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reconfigurable resource scheduling with variable delay "
        "bounds: experiments and demos.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_list = sub.add_parser("list", help="list registered experiments")
    p_list.set_defaults(func=_cmd_list)

    p_run = sub.add_parser("run", help="run one experiment")
    p_run.add_argument("experiment_id", help="experiment id, e.g. EXP-A")
    p_run.add_argument("--quick", action="store_true", help="reduced sweep")
    p_run.add_argument("--output", help="also write the report to this path")
    p_run.set_defaults(func=_cmd_run)

    p_all = sub.add_parser("run-all", help="run every experiment")
    p_all.add_argument("--quick", action="store_true", help="reduced sweeps")
    p_all.add_argument("--output", help="also write the combined report")
    p_all.set_defaults(func=_cmd_run_all)

    p_export = sub.add_parser(
        "export", help="run an experiment and write txt/json/csv files"
    )
    p_export.add_argument("experiment_id", help="experiment id, e.g. EXP-A")
    p_export.add_argument("--dir", default="reports", help="output directory")
    p_export.add_argument("--quick", action="store_true", help="reduced sweep")
    p_export.set_defaults(func=_cmd_export)

    p_search = sub.add_parser(
        "search", help="hill-climb for an adversarial input against a scheme"
    )
    p_search.add_argument("scheme", choices=sorted(_SCHEME_CHOICES))
    p_search.add_argument("--iterations", type=int, default=200)
    p_search.add_argument("--restarts", type=int, default=3)
    p_search.add_argument("--seed", type=int, default=0)
    p_search.add_argument("--horizon", type=int, default=64)
    p_search.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes for restarts (default: REPRO_PARALLEL or 1)",
    )
    p_search.add_argument("--save", help="write the found instance as JSON")
    p_search.add_argument(
        "--shared-cache",
        action="store_true",
        help="share the score cache across restarts (serial climbs; "
        "identical results, higher hit rate)",
    )
    _add_registry_dir(p_search)
    p_search.set_defaults(func=_cmd_search)

    p_offline = sub.add_parser(
        "offline",
        help="solve a seeded workload to the exact offline optimum",
    )
    p_offline.add_argument("--colors", type=int, default=3)
    p_offline.add_argument("--resources", type=int, default=2)
    p_offline.add_argument("--horizon", type=int, default=48)
    p_offline.add_argument("--seed", type=int, default=0)
    p_offline.add_argument("--rate", type=float, default=0.4)
    p_offline.add_argument(
        "--bounds",
        type=int,
        nargs="+",
        default=(2, 4),
        help="delay-bound choices for the random workload",
    )
    p_offline.add_argument(
        "--method",
        choices=("rds", "legacy", "exhaustive"),
        default="rds",
        help="solver: rds (banded suffix-bounded search, default), "
        "legacy branch-and-bound, or exhaustive",
    )
    p_offline.add_argument(
        "--max-states", type=int, default=2_000_000, help="node budget"
    )
    p_offline.add_argument(
        "--check",
        choices=("exhaustive", "legacy"),
        default=None,
        help="cross-check the optimum against a second solver",
    )
    p_offline.add_argument(
        "--trace", default=None, help="write the offline_solve span as JSONL"
    )
    _add_registry_dir(p_offline)
    p_offline.set_defaults(func=_cmd_offline)

    p_describe = sub.add_parser(
        "describe", help="summarize a saved trace (.json or .csv)"
    )
    p_describe.add_argument("trace", help="path to a saved instance")
    p_describe.set_defaults(func=_cmd_describe)

    p_record = sub.add_parser(
        "record",
        help="run a seeded workload with the trace bus on, writing JSONL",
    )
    p_record.add_argument("out", help="JSONL trace output path")
    p_record.add_argument(
        "--scheme", choices=sorted(_SCHEME_CHOICES), default="dlru-edf"
    )
    p_record.add_argument("--colors", type=int, default=8)
    p_record.add_argument("--delta", type=int, default=4)
    p_record.add_argument("--horizon", type=int, default=256)
    p_record.add_argument("--seed", type=int, default=7)
    p_record.add_argument(
        "--load", type=float, default=0.35, help="offered load (default 0.35)"
    )
    p_record.add_argument("--resources", type=int, default=8)
    p_record.add_argument("--speed", type=int, default=1)
    p_record.add_argument(
        "--engine",
        choices=("sparse", "dense", "vectorized"),
        default="sparse",
        help="engine backend (vectorized needs the repro[vec] extra)",
    )
    p_record.add_argument(
        "--record", choices=("costs", "full"), default="costs"
    )
    p_record.add_argument(
        "--epochs",
        action="store_true",
        help="annotate epoch/super-epoch boundaries (needs --record full)",
    )
    p_record.add_argument(
        "--profile",
        action="store_true",
        help="attach the phase profiler and print its flame table",
    )
    p_record.add_argument(
        "--sample",
        default=None,
        metavar="P|adaptive",
        help="downsample round-level trace detail: a fixed keep "
        "probability in [0, 1], or 'adaptive' to hold tracing overhead "
        "under --sample-target (monitor events are never sampled away)",
    )
    p_record.add_argument(
        "--sample-target",
        type=float,
        default=0.05,
        help="adaptive sampling overhead target as a fraction of wall "
        "clock (default 0.05)",
    )
    _add_registry_dir(p_record)
    p_record.set_defaults(func=_cmd_record)

    p_stream = sub.add_parser(
        "stream",
        help="run a scheme over an unbounded arrival stream with "
        "bounded memory and periodic checkpoints",
    )
    p_stream.add_argument(
        "--rounds",
        type=int,
        required=True,
        help="global round to stream to (with --resume: the same total "
        "target, not an increment)",
    )
    p_stream.add_argument(
        "--scheme", choices=sorted(_SCHEME_CHOICES), default="dlru-edf"
    )
    p_stream.add_argument("--colors", type=int, default=8)
    p_stream.add_argument("--delta", type=int, default=32)
    p_stream.add_argument("--seed", type=int, default=7)
    p_stream.add_argument(
        "--load", type=float, default=0.5, help="offered load (default 0.5)"
    )
    p_stream.add_argument("--resources", type=int, default=8)
    p_stream.add_argument("--speed", type=int, default=1)
    p_stream.add_argument(
        "--engine",
        choices=("sparse", "dense", "vectorized"),
        default="sparse",
        help="engine backend (streaming always runs the faithful scalar "
        "core, even under vectorized)",
    )
    p_stream.add_argument(
        "--segment",
        type=int,
        default=4096,
        metavar="ROUNDS",
        help="segment width; bounds the arrival window held in memory "
        "(cost-transparent, default 4096)",
    )
    p_stream.add_argument(
        "--queue-cap",
        type=int,
        default=None,
        metavar="N",
        help="per-color pending-queue cap; excess arrivals are rejected "
        "at the door (unbounded when omitted)",
    )
    p_stream.add_argument(
        "--checkpoint",
        default=None,
        metavar="PATH",
        help="checkpoint file (atomic overwrite); written every "
        "--checkpoint-every rounds, at the end, and on Ctrl-C",
    )
    p_stream.add_argument(
        "--checkpoint-every",
        type=int,
        default=None,
        metavar="ROUNDS",
        help="checkpoint cadence in rounds (needs --checkpoint)",
    )
    p_stream.add_argument(
        "--resume",
        action="store_true",
        help="resume from --checkpoint; engine/resources/speed come "
        "from the checkpoint's config echo",
    )
    p_stream.add_argument(
        "--serve",
        nargs="?",
        type=int,
        const=0,
        default=None,
        metavar="PORT",
        help="expose live /metrics and /stream over HTTP while the "
        "session runs (bare flag picks an ephemeral port)",
    )
    p_stream.add_argument(
        "--serve-ttl",
        type=float,
        default=0.0,
        metavar="SECONDS",
        help="keep the HTTP service up this long after the run finishes",
    )
    p_stream.add_argument(
        "--series",
        default=None,
        metavar="PATH",
        help="record per-segment metric time-series and write them as "
        "schema-tagged JSONL at the end (evaluate later with "
        "`repro alerts check`)",
    )
    p_stream.add_argument(
        "--series-capacity",
        type=int,
        default=256,
        metavar="N",
        help="ring capacity per series; older points compact pairwise "
        "when full (default 256)",
    )
    p_stream.add_argument(
        "--rules",
        default=None,
        metavar="PATH",
        help="alert-rule JSON file (see `repro alerts example`) "
        "evaluated live on the recorded series; firing state rides "
        "checkpoints and /alerts",
    )
    p_stream.set_defaults(func=_cmd_stream)

    p_alerts = sub.add_parser(
        "alerts",
        help="deterministic alerting: example rules, offline evaluation, "
        "live watching",
    )
    alerts_sub = p_alerts.add_subparsers(dest="alerts_command", required=True)

    p_aex = alerts_sub.add_parser(
        "example", help="print (or write) a starter alert-rule file"
    )
    p_aex.add_argument(
        "--delay-bound",
        type=int,
        default=32,
        metavar="D",
        help="delay bound the backlog-age rule scales with (default 32)",
    )
    p_aex.add_argument("--out", help="write the rule file here instead")
    p_aex.set_defaults(func=_cmd_alerts_example)

    p_ach = alerts_sub.add_parser(
        "check",
        help="evaluate a rule file over a recorded series JSONL; exits 1 "
        "if any rule is firing at the end",
    )
    p_ach.add_argument("series", help="series JSONL from `repro stream --series`")
    p_ach.add_argument(
        "--rules", required=True, metavar="PATH", help="alert-rule JSON file"
    )
    p_ach.set_defaults(func=_cmd_alerts_check)

    p_awa = alerts_sub.add_parser(
        "watch",
        help="poll a live ops service's /alerts endpoint, printing events "
        "as they appear",
    )
    p_awa.add_argument("url", help="service base URL, e.g. http://127.0.0.1:9100")
    p_awa.add_argument(
        "--interval",
        type=float,
        default=2.0,
        metavar="SECONDS",
        help="poll cadence (default 2s)",
    )
    p_awa.add_argument(
        "--ttl",
        type=float,
        default=None,
        metavar="SECONDS",
        help="stop after this long (default: watch until Ctrl-C); exits 1 "
        "if rules are firing at the last poll",
    )
    p_awa.set_defaults(func=_cmd_alerts_watch)

    p_trace = sub.add_parser(
        "trace", help="render a recorded JSONL trace as a round timeline"
    )
    p_trace.add_argument("trace", help="path to a JSONL trace from `record`")
    p_trace.add_argument(
        "--rounds",
        type=int,
        default=None,
        help="cap on rendered rounds with events (default: all)",
    )
    p_trace.set_defaults(func=_cmd_trace)

    p_stats = sub.add_parser(
        "stats", help="aggregate statistics of a recorded JSONL trace"
    )
    p_stats.add_argument("trace", help="path to a JSONL trace from `record`")
    p_stats.set_defaults(func=_cmd_stats)

    p_obs = sub.add_parser(
        "obs", help="live monitors, trace diffing, and exporters"
    )
    obs_sub = p_obs.add_subparsers(dest="obs_command", required=True)

    p_mon = obs_sub.add_parser(
        "monitor",
        help="run a seeded workload with all invariant monitors attached",
    )
    p_mon.add_argument(
        "--scheme", choices=sorted(_SCHEME_CHOICES), default="dlru-edf"
    )
    p_mon.add_argument("--colors", type=int, default=8)
    p_mon.add_argument("--delta", type=int, default=4)
    p_mon.add_argument("--horizon", type=int, default=256)
    p_mon.add_argument("--seed", type=int, default=7)
    p_mon.add_argument(
        "--load", type=float, default=0.35, help="offered load (default 0.35)"
    )
    p_mon.add_argument("--resources", type=int, default=8)
    p_mon.add_argument("--speed", type=int, default=1)
    p_mon.add_argument(
        "--engine",
        choices=("sparse", "dense", "vectorized"),
        default="sparse",
        help="engine backend (vectorized needs the repro[vec] extra)",
    )
    p_mon.add_argument(
        "--policy",
        choices=("collect", "raise"),
        default="collect",
        help="collect violations (default) or raise at the offending record",
    )
    p_mon.add_argument("--out", help="also tee the trace to this JSONL path")
    p_mon.add_argument(
        "--metrics-out", help="write the metrics snapshot JSON to this path"
    )
    p_mon.set_defaults(func=_cmd_obs_monitor)

    p_diff = obs_sub.add_parser(
        "diff",
        help="first diverging record + cost attribution of two JSONL traces",
    )
    p_diff.add_argument("trace_a", help="baseline JSONL trace")
    p_diff.add_argument("trace_b", help="candidate JSONL trace")
    p_diff.add_argument(
        "--ranges",
        type=int,
        default=8,
        help="round-range buckets for the attribution (default 8)",
    )
    p_diff.set_defaults(func=_cmd_obs_diff)

    p_oexp = obs_sub.add_parser(
        "export",
        help="convert a JSONL trace to Perfetto JSON or a metrics snapshot "
        "to Prometheus text",
    )
    p_oexp.add_argument(
        "source",
        help="JSONL trace (--chrome) or metrics snapshot JSON (--prom)",
    )
    p_oexp.add_argument("--chrome", help="write Chrome trace-event JSON here")
    p_oexp.add_argument("--prom", help="write Prometheus text exposition here")
    p_oexp.set_defaults(func=_cmd_obs_export)

    p_runs = sub.add_parser(
        "runs", help="query the persistent run registry"
    )
    runs_sub = p_runs.add_subparsers(dest="runs_command", required=True)

    p_rlist = runs_sub.add_parser("list", help="recent runs, one per line")
    p_rlist.add_argument(
        "--registry-dir", default=DEFAULT_REGISTRY_DIR, metavar="DIR"
    )
    p_rlist.add_argument(
        "--limit", type=int, default=20, help="most recent N runs (default 20)"
    )
    p_rlist.add_argument(
        "--kind",
        choices=("simulate", "matrix", "search", "offline", "experiment"),
        default=None,
        help="only runs of this kind",
    )
    p_rlist.set_defaults(func=_cmd_runs_list)

    p_rshow = runs_sub.add_parser("show", help="one run record in full")
    p_rshow.add_argument("run_id", help="run id (abbreviations allowed)")
    p_rshow.add_argument(
        "--registry-dir", default=DEFAULT_REGISTRY_DIR, metavar="DIR"
    )
    p_rshow.set_defaults(func=_cmd_runs_show)

    p_rdiff = runs_sub.add_parser(
        "diff", help="field/cost diff of two recorded runs"
    )
    p_rdiff.add_argument("run_a", help="baseline run id")
    p_rdiff.add_argument("run_b", help="candidate run id")
    p_rdiff.add_argument(
        "--registry-dir", default=DEFAULT_REGISTRY_DIR, metavar="DIR"
    )
    p_rdiff.set_defaults(func=_cmd_runs_diff)

    p_serve = sub.add_parser(
        "serve",
        help="HTTP ops service: /metrics (Prometheus), /health, /runs",
    )
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument(
        "--port", type=int, default=0, help="0 binds an ephemeral port"
    )
    p_serve.add_argument(
        "--registry-dir",
        default=DEFAULT_REGISTRY_DIR,
        metavar="DIR",
        help="run registry served under /runs (created if missing)",
    )
    p_serve.add_argument(
        "--demo",
        action="store_true",
        help="run a small parallel matrix while serving, publishing "
        "live metrics and registry records",
    )
    p_serve.add_argument(
        "--ttl",
        type=float,
        default=None,
        metavar="SECONDS",
        help="exit after this many seconds (default: serve until Ctrl-C)",
    )
    p_serve.set_defaults(func=_cmd_serve)

    p_demo = sub.add_parser("demo", help="30-second tour")
    p_demo.set_defaults(func=_cmd_demo)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
