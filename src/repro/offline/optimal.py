"""Exact offline optimum by memoized exhaustive search.

For small instances this computes the true ``Cost_OFF`` the paper's
ratios are defined against.  The search space is kept finite by three
facts about the problem:

* **Configuration timing is free**: reconfiguring costs ``Δ`` whenever it
  happens, and the reconfiguration phase precedes the execution phase of
  the same round, so an optimal schedule exists that only ever configures
  colors with currently pending jobs (pre-configuring for the future
  cannot help).
* **EDF within a color is optimal**: once the round's configuration is
  fixed, executing each slot's earliest-deadline pending job of that
  color dominates any other choice.
* **State is summarizable**: at the start of round ``k`` the future
  depends only on the cache multiset and the pending multiset
  ``{(color, deadline) -> count}``.

The search memoizes ``(round, cache, pending) -> (min future cost, best
configuration)`` and replays the decisions to emit a feasible
:class:`~repro.core.schedule.Schedule` checked by the shared verifier.
A ``max_states`` guard protects against accidental use on large
instances.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from itertools import combinations_with_replacement
from typing import Iterator

from repro.core.cost import CostBreakdown
from repro.core.instance import Instance
from repro.core.job import BLACK, Job
from repro.core.schedule import Schedule
from repro.core.validation import verify_schedule

#: pending is a sorted tuple of ((color, deadline), count).
PendingKey = tuple[tuple[tuple[int, int], int], ...]
CacheKey = tuple[int, ...]


class SearchSpaceExceeded(RuntimeError):
    """Raised when the memo table outgrows ``max_states``."""


@dataclass(frozen=True)
class OptimalResult:
    """Exact optimum plus a witness schedule."""

    cost: int
    schedule: Schedule
    breakdown: CostBreakdown
    states_explored: int

    @property
    def num_reconfigs(self) -> int:
        return self.breakdown.num_reconfigs

    @property
    def num_drops(self) -> int:
        return self.breakdown.num_drops


def _arrivals_by_round(instance: Instance) -> dict[int, dict[tuple[int, int], int]]:
    grouped: dict[int, dict[tuple[int, int], int]] = {}
    for job in instance.sequence:
        per_round = grouped.setdefault(job.arrival, {})
        key = (job.color, job.deadline)
        per_round[key] = per_round.get(key, 0) + 1
    return grouped


def _candidate_caches(
    current: CacheKey, pending_colors: tuple[int, ...], m: int
) -> list[CacheKey]:
    """All useful *physical* slot-color multisets reachable from ``current``.

    The cache is always a full multiset of ``m`` slot colors, with
    :data:`~repro.core.job.BLACK` marking never-reconfigured slots.  A
    transition may only recolor slots to non-black colors, so the BLACK
    count never increases.  New colors are only ever drawn from the
    pending colors (recoloring to a color with no pending jobs is
    dominated); keeping a current color is free.
    """
    old_black = sum(1 for c in current if c == BLACK)
    pool = tuple(sorted((set(pending_colors) | set(current)) - {BLACK}))
    seen: set[CacheKey] = set()
    out: list[CacheKey] = []
    for non_black_size in range(max(0, m - old_black), m + 1):
        pad = (BLACK,) * (m - non_black_size)
        for combo in combinations_with_replacement(pool, non_black_size):
            key = tuple(sorted(pad + combo))
            if key not in seen:
                seen.add(key)
                out.append(key)
    if current not in seen:
        out.append(current)
    return out


def _reconfig_count(old: CacheKey, new: CacheKey) -> int:
    """Slots recolored turning full multiset ``old`` into ``new``.

    Matching identical colors maximally, the recolored slots are exactly
    the non-black assignments not covered: ``Σ_c max(0, new(c) - old(c))``
    over non-black colors.
    """
    old_counts = Counter(old)
    new_counts = Counter(new)
    return sum(
        max(0, new_counts[c] - old_counts.get(c, 0))
        for c in new_counts
        if c != BLACK
    )


def _drop_and_arrive(
    k: int,
    pending: PendingKey,
    arrivals: dict[int, dict[tuple[int, int], int]],
) -> tuple[int, PendingKey]:
    """Apply the drop and arrival phases; return (dropped count, pending)."""
    items = dict(pending)
    dropped = 0
    for (color, deadline), count in list(items.items()):
        if deadline <= k:
            dropped += count
            del items[(color, deadline)]
    for key, count in arrivals.get(k, {}).items():
        items[key] = items.get(key, 0) + count
    return dropped, tuple(sorted(items.items()))


def _execute_abstract(cache: CacheKey, pending: PendingKey) -> PendingKey:
    """Each slot executes its color's earliest-deadline pending job."""
    items = dict(pending)
    for color, width in Counter(cache).items():
        if color == BLACK:
            continue
        for _ in range(width):
            deadlines = [d for (c, d) in items if c == color]
            if not deadlines:
                break
            key = (color, min(deadlines))
            items[key] -= 1
            if items[key] == 0:
                del items[key]
    return tuple(sorted(items.items()))


def optimal_offline(
    instance: Instance,
    num_resources: int,
    *,
    max_states: int = 2_000_000,
) -> OptimalResult:
    """Compute the exact optimal offline cost and a witness schedule."""
    if num_resources <= 0:
        raise ValueError("need at least one resource")
    m = num_resources
    delta = instance.spec.reconfig_cost
    drop_cost = instance.spec.cost.drop_cost
    horizon = instance.horizon
    arrivals = _arrivals_by_round(instance)

    memo: dict[tuple[int, CacheKey, PendingKey], tuple[int, CacheKey]] = {}

    def solve(k: int, cache: CacheKey, pending: PendingKey) -> int:
        if k >= horizon:
            # The horizon extends past every deadline, so nothing pends.
            return sum(count for _, count in pending) * drop_cost
        state = (k, cache, pending)
        cached_entry = memo.get(state)
        if cached_entry is not None:
            return cached_entry[0]
        if len(memo) >= max_states:
            raise SearchSpaceExceeded(
                f"optimal_offline exceeded {max_states} states; the "
                f"instance is too large for exact search"
            )
        dropped, pending2 = _drop_and_arrive(k, pending, arrivals)
        phase_cost = dropped * drop_cost
        pending_colors = tuple(sorted({c for ((c, _), _) in pending2}))
        best_cost: int | None = None
        best_cache: CacheKey = cache
        for candidate in _candidate_caches(cache, pending_colors, m):
            reconfig = _reconfig_count(cache, candidate) * delta
            if best_cost is not None and phase_cost + reconfig >= best_cost:
                # Reconfiguration alone already exceeds the incumbent;
                # future cost is nonnegative, so prune.
                continue
            after = _execute_abstract(candidate, pending2)
            total = phase_cost + reconfig + solve(k + 1, candidate, after)
            if best_cost is None or total < best_cost:
                best_cost = total
                best_cache = candidate
        assert best_cost is not None
        memo[state] = (best_cost, best_cache)
        return best_cost

    import sys

    initial_cache: CacheKey = (BLACK,) * m
    old_limit = sys.getrecursionlimit()
    sys.setrecursionlimit(max(old_limit, horizon * 4 + 1000))
    try:
        total_cost = solve(0, initial_cache, ())
    finally:
        sys.setrecursionlimit(old_limit)

    schedule = _replay(instance, m, memo, arrivals)
    breakdown = schedule.cost(instance.sequence.jobs, instance.cost_model)
    if breakdown.total != total_cost:
        raise AssertionError(
            f"replayed schedule cost {breakdown.total} != search cost {total_cost}"
        )
    verify_schedule(instance, schedule).raise_if_invalid()
    return OptimalResult(total_cost, schedule, breakdown, len(memo))


def _replay(
    instance: Instance,
    m: int,
    memo: dict[tuple[int, CacheKey, PendingKey], tuple[int, CacheKey]],
    arrivals: dict[int, dict[tuple[int, int], int]],
) -> Schedule:
    """Rebuild the witness schedule by replaying memoized decisions.

    Tracks the abstract pre-phase state exactly as ``solve`` does, while
    maintaining concrete job queues and slot assignments to emit events.
    """
    schedule = Schedule(m)
    cache: CacheKey = (BLACK,) * m
    pending: PendingKey = ()
    slot_colors: list[int] = [BLACK] * m

    # Concrete queues, FIFO by jid within a (color, deadline) class.
    queues: dict[tuple[int, int], list[Job]] = {}
    stacks: dict[tuple[int, int, int], list[Job]] = {}
    for job in sorted(instance.sequence, key=lambda j: j.jid, reverse=True):
        stacks.setdefault((job.arrival, job.color, job.deadline), []).append(job)

    for k in range(instance.horizon):
        entry = memo.get((k, cache, pending))
        if entry is None:
            raise KeyError(f"optimal path lost at round {k}")
        _, new_cache = entry

        # Drop + arrival phases (abstract and concrete in lockstep).
        _, pending2 = _drop_and_arrive(k, pending, arrivals)
        for key in [key for key in queues if key[1] <= k]:
            del queues[key]
        for (color, deadline), count in arrivals.get(k, {}).items():
            stack = stacks[(k, color, deadline)]
            queues.setdefault((color, deadline), []).extend(
                stack.pop() for _ in range(count)
            )

        # Reconfiguration phase: realize the multiset transition on the
        # physical slots — keep matching colors in place, recolor the rest.
        old_counts = Counter(cache)
        new_counts = Counter(new_cache)
        keep_budget = dict(old_counts & new_counts)
        active = [False] * m
        free_slots: list[int] = []
        for index, color in enumerate(slot_colors):
            if keep_budget.get(color, 0) > 0:
                keep_budget[color] -= 1
                active[index] = color != BLACK
            else:
                free_slots.append(index)
        for color, extra in sorted((new_counts - old_counts).items()):
            if color == BLACK:
                raise AssertionError("transitions must never add BLACK slots")
            for _ in range(extra):
                index = free_slots.pop(0)
                schedule.reconfigure(k, index, color)
                slot_colors[index] = color
                active[index] = True

        # Execution phase: EDF within each active slot's color. Slots
        # whose color left the abstract multiset stay physically colored
        # but voluntarily idle, matching the abstract accounting.
        for index in range(m):
            if not active[index]:
                continue
            color = slot_colors[index]
            candidates = [key for key in queues if key[0] == color]
            if not candidates:
                continue
            key = min(candidates, key=lambda key: key[1])
            job = queues[key].pop(0)
            if not queues[key]:
                del queues[key]
            schedule.execute(k, index, job)

        cache = new_cache
        pending = _execute_abstract(new_cache, pending2)
    return schedule
