"""Exact offline optimum by memoized branch-and-bound search.

For small instances this computes the true ``Cost_OFF`` the paper's
ratios are defined against.  The search space is kept finite by three
facts about the problem:

* **Configuration timing is free**: reconfiguring costs ``Δ`` whenever it
  happens, and the reconfiguration phase precedes the execution phase of
  the same round, so an optimal schedule exists that only ever configures
  colors with currently pending jobs (pre-configuring for the future
  cannot help).
* **EDF within a color is optimal**: once the round's configuration is
  fixed, executing each slot's earliest-deadline pending job of that
  color dominates any other choice.
* **State is summarizable**: at the start of round ``k`` the future
  depends only on the cache multiset and the pending multiset
  ``{(color, deadline) -> count}``.

:func:`optimal_offline` runs an *iterative* depth-first branch-and-bound:
candidate configurations at each node are ordered by an optimistic cost
(reconfiguration plus an admissible suffix lower bound from
:mod:`repro.offline.lower_bounds`), so a good incumbent is found early
and provably-dominated candidates are cut without expanding their
subtrees.  Rounds with nothing pending fast-forward to the next arrival.
The pruning is per-node — a candidate is cut only when its optimistic
cost cannot beat the node's own incumbent — so every memoized value
``(round, cache, pending) -> (min future cost, best configuration)``
stays exact and the decisions replay into a feasible
:class:`~repro.core.schedule.Schedule` checked by the shared verifier.
A ``max_states`` guard protects against accidental use on large
instances.  :func:`optimal_offline_exhaustive` keeps the original
recursive exhaustive search for cross-checking.
"""

from __future__ import annotations

from bisect import bisect_right
from collections import Counter
from dataclasses import dataclass
from itertools import combinations_with_replacement
from typing import Iterator

from repro.core.cost import CostBreakdown
from repro.core.instance import Instance
from repro.core.job import BLACK, Job
from repro.core.schedule import Schedule
from repro.core.validation import verify_schedule
from repro.offline.lower_bounds import pending_drop_floor, pending_reconfig_floor

#: pending is a sorted tuple of ((color, deadline), count).
PendingKey = tuple[tuple[tuple[int, int], int], ...]
CacheKey = tuple[int, ...]


class SearchSpaceExceeded(RuntimeError):
    """Raised when the memo table outgrows ``max_states``."""


@dataclass(frozen=True)
class OptimalResult:
    """Exact optimum plus a witness schedule.

    ``candidates_pruned`` counts candidate configurations cut without
    expanding their subtrees (sorted-order cutoffs plus admissible
    suffix-bound cuts) — the branch-and-bound's effectiveness metric,
    exported to the ``offline.*`` telemetry instruments.
    """

    cost: int
    schedule: Schedule
    breakdown: CostBreakdown
    states_explored: int
    candidates_pruned: int = 0

    @property
    def num_reconfigs(self) -> int:
        return self.breakdown.num_reconfigs

    @property
    def num_drops(self) -> int:
        return self.breakdown.num_drops


def _arrivals_by_round(instance: Instance) -> dict[int, dict[tuple[int, int], int]]:
    grouped: dict[int, dict[tuple[int, int], int]] = {}
    for job in instance.sequence:
        per_round = grouped.setdefault(job.arrival, {})
        key = (job.color, job.deadline)
        per_round[key] = per_round.get(key, 0) + 1
    return grouped


def _candidate_caches(
    current: CacheKey, pending_colors: tuple[int, ...], m: int
) -> list[CacheKey]:
    """All useful *physical* slot-color multisets reachable from ``current``.

    The cache is always a full multiset of ``m`` slot colors, with
    :data:`~repro.core.job.BLACK` marking never-reconfigured slots.  A
    transition may only recolor slots to non-black colors, so the BLACK
    count never increases.  New colors are only ever drawn from the
    pending colors (recoloring to a color with no pending jobs is
    dominated); keeping a current color is free.
    """
    old_black = sum(1 for c in current if c == BLACK)
    pool = tuple(sorted((set(pending_colors) | set(current)) - {BLACK}))
    seen: set[CacheKey] = set()
    out: list[CacheKey] = []
    for non_black_size in range(max(0, m - old_black), m + 1):
        pad = (BLACK,) * (m - non_black_size)
        for combo in combinations_with_replacement(pool, non_black_size):
            key = tuple(sorted(pad + combo))
            if key not in seen:
                seen.add(key)
                out.append(key)
    if current not in seen:
        out.append(current)
    return out


def _reconfig_count(old: CacheKey, new: CacheKey) -> int:
    """Slots recolored turning full multiset ``old`` into ``new``.

    Matching identical colors maximally, the recolored slots are exactly
    the non-black assignments not covered: ``Σ_c max(0, new(c) - old(c))``
    over non-black colors.
    """
    old_counts = Counter(old)
    new_counts = Counter(new)
    return sum(
        max(0, new_counts[c] - old_counts.get(c, 0))
        for c in new_counts
        if c != BLACK
    )


def _drop_and_arrive(
    k: int,
    pending: PendingKey,
    arrivals: dict[int, dict[tuple[int, int], int]],
) -> tuple[int, PendingKey]:
    """Apply the drop and arrival phases; return (dropped count, pending)."""
    items = dict(pending)
    dropped = 0
    for (color, deadline), count in list(items.items()):
        if deadline <= k:
            dropped += count
            del items[(color, deadline)]
    for key, count in arrivals.get(k, {}).items():
        items[key] = items.get(key, 0) + count
    return dropped, tuple(sorted(items.items()))


def _execute_abstract(cache: CacheKey, pending: PendingKey) -> PendingKey:
    """Each slot executes its color's earliest-deadline pending job."""
    items = dict(pending)
    for color, width in Counter(cache).items():
        if color == BLACK:
            continue
        for _ in range(width):
            deadlines = [d for (c, d) in items if c == color]
            if not deadlines:
                break
            key = (color, min(deadlines))
            items[key] -= 1
            if items[key] == 0:
                del items[key]
    return tuple(sorted(items.items()))


def _future_arrivals_by_color(
    arrivals: dict[int, dict[tuple[int, int], int]],
) -> dict[int, tuple[list[int], list[int]]]:
    """Per color: sorted arrival rounds and suffix job totals.

    ``suffix[i]`` is the number of the color's jobs arriving at or after
    ``rounds[i]`` — the lookup behind the future-aware reconfiguration
    floor of the branch-and-bound suffix bound.
    """
    per_color: dict[int, dict[int, int]] = {}
    for k, batch in arrivals.items():
        for (color, _), count in batch.items():
            rounds = per_color.setdefault(color, {})
            rounds[k] = rounds.get(k, 0) + count
    out: dict[int, tuple[list[int], list[int]]] = {}
    for color, by_round in per_color.items():
        rounds = sorted(by_round)
        suffix = [0] * len(rounds)
        acc = 0
        for i in range(len(rounds) - 1, -1, -1):
            acc += by_round[rounds[i]]
            suffix[i] = acc
        out[color] = (rounds, suffix)
    return out


class _Frame:
    """One open node of the iterative depth-first branch-and-bound."""

    __slots__ = (
        "key",
        "phase_cost",
        "cands",
        "idx",
        "best_cost",
        "best_cache",
        "pending2",
    )

    def __init__(self, key, phase_cost, cands, best_cache, pending2=()):
        self.key = key
        self.phase_cost = phase_cost
        #: ``None`` marks a fast-forward frame (nothing pending).
        #: Otherwise ``[reconfig_cost, candidate, after-or-None]`` rows
        #: sorted by reconfiguration cost; ``after`` is filled lazily.
        self.cands = cands
        self.idx = 0
        self.best_cost: int | None = None
        self.best_cache: CacheKey = best_cache
        #: Post-drop/arrival pending state (for lazy execution).
        self.pending2: PendingKey = pending2


def optimal_offline(
    instance: Instance,
    num_resources: int,
    *,
    max_states: int = 2_000_000,
    tracer=None,
    registry=None,
) -> OptimalResult:
    """Compute the exact optimal offline cost and a witness schedule.

    Iterative depth-first branch-and-bound; see the module docstring.
    ``states_explored`` counts expanded decision nodes, so it is directly
    comparable to (and strictly smaller on pruned instances than) the
    memo size of :func:`optimal_offline_exhaustive`.

    Optional observability: a ``tracer`` records an ``offline_solve``
    span (instance, resources → cost, states, prunes); a metrics
    ``registry`` accumulates ``offline.states_expanded`` and
    ``offline.candidates_pruned`` counters.
    """
    if num_resources <= 0:
        raise ValueError("need at least one resource")
    active_tracer = (
        tracer
        if tracer is not None and getattr(tracer, "enabled", True)
        else None
    )
    if active_tracer is not None:
        active_tracer.begin(
            "offline_solve",
            instance=instance.name or "instance",
            resources=num_resources,
            horizon=instance.horizon,
        )
    m = num_resources
    delta = instance.spec.reconfig_cost
    drop_cost = instance.spec.cost.drop_cost
    horizon = instance.horizon
    arrivals = _arrivals_by_round(instance)
    arrival_rounds = sorted(arrivals)
    future_by_color = _future_arrivals_by_color(arrivals)

    memo: dict[tuple[int, CacheKey, PendingKey], tuple[int, CacheKey]] = {}
    expanded = 0
    pruned = 0

    def suffix_bound(start_round: int, cache: CacheKey, pending: PendingKey) -> int:
        """Admissible bound on the cost-to-go from a search state.

        Maximum of the capacity drop floor over the pending jobs and the
        per-color reconfiguration floor over pending *plus future* jobs:
        an uncached color's jobs — whenever they arrive — still force a
        recoloring (``>= Δ``) or their drops, so counting them keeps the
        bound admissible while making it decisive near the root.
        """
        per_color: dict[int, int] = {}
        for (color, _), count in pending:
            per_color[color] = per_color.get(color, 0) + count
        for color, (rounds, suffix) in future_by_color.items():
            i = bisect_right(rounds, start_round - 1)
            if i < len(rounds):
                per_color[color] = per_color.get(color, 0) + suffix[i]
        merged = [((color, 0), count) for color, count in per_color.items()]
        floor = pending_reconfig_floor(merged, set(cache), delta, drop_cost)
        if pending:
            floor = max(
                floor, pending_drop_floor(pending, start_round, m, drop_cost)
            )
        return floor

    def expand(key: tuple[int, CacheKey, PendingKey]) -> _Frame:
        nonlocal expanded
        expanded += 1
        if expanded > max_states:
            raise SearchSpaceExceeded(
                f"optimal_offline exceeded {max_states} states; the "
                f"instance is too large for exact search"
            )
        k, cache, pending = key
        dropped, pending2 = _drop_and_arrive(k, pending, arrivals)
        phase_cost = dropped * drop_cost
        if not pending2:
            # Inactive stretch: with nothing pending, keeping the current
            # configuration dominates (configuration timing is free), so
            # the node fast-forwards to the next arrival round.
            return _Frame(key, phase_cost, None, cache)
        pending_colors = tuple(sorted({c for ((c, _), _) in pending2}))
        # Cheapest reconfigurations first: a good incumbent early makes
        # the sorted-order cutoff in the main loop cheap and decisive.
        # The post-execution state and suffix bound are computed lazily,
        # only for candidates that survive the reconfiguration cutoff.
        cands = [
            [_reconfig_count(cache, candidate) * delta, candidate, None]
            for candidate in _candidate_caches(cache, pending_colors, m)
        ]
        cands.sort(key=lambda entry: (entry[0], entry[1]))
        return _Frame(key, phase_cost, cands, cache, pending2)

    root = (0, (BLACK,) * m, ())
    stack = [expand(root)]
    ret: int | None = None  # value bubbling up from a finished child

    while stack:
        fr = stack[-1]
        k = fr.key[0]

        if fr.cands is None:
            # Fast-forward frame: value = phase drops + cost from the
            # next arrival round with the same cache.
            cache = fr.key[1]
            nxt = bisect_right(arrival_rounds, k)
            if nxt == len(arrival_rounds):
                next_k, value = horizon, 0
            elif ret is not None:
                next_k, value = arrival_rounds[nxt], ret
                ret = None
            else:
                next_k = arrival_rounds[nxt]
                child_key = (next_k, cache, ())
                entry = memo.get(child_key)
                if entry is None:
                    stack.append(expand(child_key))
                    continue
                value = entry[0]
            # Fill the skipped rounds so schedule replay (which walks
            # every round) still finds its decisions.
            for j in range(k + 1, next_k):
                memo[(j, cache, ())] = (value, cache)
            memo[fr.key] = (fr.phase_cost + value, cache)
            ret = fr.phase_cost + value
            stack.pop()
            continue

        if ret is not None:
            # A child just finished: fold its value into the incumbent.
            row = fr.cands[fr.idx]
            total = fr.phase_cost + row[0] + ret
            ret = None
            if fr.best_cost is None or total < fr.best_cost:
                fr.best_cost = total
                fr.best_cache = row[1]
            fr.idx += 1

        descended = False
        while fr.idx < len(fr.cands):
            row = fr.cands[fr.idx]
            reconfig, candidate = row[0], row[1]
            have_incumbent = fr.best_cost is not None
            if have_incumbent and fr.phase_cost + reconfig >= fr.best_cost:
                # Candidates are sorted by reconfiguration cost and the
                # suffix cost is nonnegative: every remaining candidate
                # is dominated by the incumbent.
                pruned += len(fr.cands) - fr.idx
                fr.idx = len(fr.cands)
                break
            after = row[2]
            if after is None:
                after = row[2] = _execute_abstract(candidate, fr.pending2)
            if k + 1 >= horizon:
                # Horizon extends past every deadline: leftovers drop.
                value = sum(count for _, count in after) * drop_cost
            else:
                child_key = (k + 1, candidate, after)
                entry = memo.get(child_key)
                if entry is None:
                    if have_incumbent and (
                        fr.phase_cost
                        + reconfig
                        + suffix_bound(k + 1, candidate, after)
                        >= fr.best_cost
                    ):
                        # Admissible bound: the candidate provably cannot
                        # beat the incumbent — cut its unexpanded subtree.
                        pruned += 1
                        fr.idx += 1
                        continue
                    stack.append(expand(child_key))
                    descended = True
                    break
                value = entry[0]
            total = fr.phase_cost + reconfig + value
            if fr.best_cost is None or total < fr.best_cost:
                fr.best_cost = total
                fr.best_cache = candidate
            fr.idx += 1
        if descended:
            continue

        assert fr.best_cost is not None
        memo[fr.key] = (fr.best_cost, fr.best_cache)
        ret = fr.best_cost
        stack.pop()

    assert ret is not None
    total_cost = ret
    schedule = _replay(instance, m, memo, arrivals)
    breakdown = schedule.cost(instance.sequence.jobs, instance.cost_model)
    if breakdown.total != total_cost:
        raise AssertionError(
            f"replayed schedule cost {breakdown.total} != search cost {total_cost}"
        )
    verify_schedule(instance, schedule).raise_if_invalid()
    if registry is not None:
        registry.counter("offline.states_expanded").inc(expanded)
        registry.counter("offline.candidates_pruned").inc(pruned)
    if active_tracer is not None:
        active_tracer.end(
            "offline_solve",
            cost=total_cost,
            states_explored=expanded,
            candidates_pruned=pruned,
        )
    return OptimalResult(total_cost, schedule, breakdown, expanded, pruned)


def optimal_offline_exhaustive(
    instance: Instance,
    num_resources: int,
    *,
    max_states: int = 2_000_000,
) -> OptimalResult:
    """Original recursive memoized exhaustive search.

    Kept as the reference implementation: the property tests cross-check
    :func:`optimal_offline`'s branch-and-bound answers against it.
    """
    if num_resources <= 0:
        raise ValueError("need at least one resource")
    m = num_resources
    delta = instance.spec.reconfig_cost
    drop_cost = instance.spec.cost.drop_cost
    horizon = instance.horizon
    arrivals = _arrivals_by_round(instance)

    memo: dict[tuple[int, CacheKey, PendingKey], tuple[int, CacheKey]] = {}
    pruned = 0

    def solve(k: int, cache: CacheKey, pending: PendingKey) -> int:
        nonlocal pruned
        if k >= horizon:
            # The horizon extends past every deadline, so nothing pends.
            return sum(count for _, count in pending) * drop_cost
        state = (k, cache, pending)
        cached_entry = memo.get(state)
        if cached_entry is not None:
            return cached_entry[0]
        if len(memo) >= max_states:
            raise SearchSpaceExceeded(
                f"optimal_offline exceeded {max_states} states; the "
                f"instance is too large for exact search"
            )
        dropped, pending2 = _drop_and_arrive(k, pending, arrivals)
        phase_cost = dropped * drop_cost
        pending_colors = tuple(sorted({c for ((c, _), _) in pending2}))
        best_cost: int | None = None
        best_cache: CacheKey = cache
        for candidate in _candidate_caches(cache, pending_colors, m):
            reconfig = _reconfig_count(cache, candidate) * delta
            if best_cost is not None and phase_cost + reconfig >= best_cost:
                # Reconfiguration alone already exceeds the incumbent;
                # future cost is nonnegative, so prune.
                pruned += 1
                continue
            after = _execute_abstract(candidate, pending2)
            total = phase_cost + reconfig + solve(k + 1, candidate, after)
            if best_cost is None or total < best_cost:
                best_cost = total
                best_cache = candidate
        assert best_cost is not None
        memo[state] = (best_cost, best_cache)
        return best_cost

    import sys

    initial_cache: CacheKey = (BLACK,) * m
    old_limit = sys.getrecursionlimit()
    sys.setrecursionlimit(max(old_limit, horizon * 4 + 1000))
    try:
        total_cost = solve(0, initial_cache, ())
    finally:
        sys.setrecursionlimit(old_limit)

    schedule = _replay(instance, m, memo, arrivals)
    breakdown = schedule.cost(instance.sequence.jobs, instance.cost_model)
    if breakdown.total != total_cost:
        raise AssertionError(
            f"replayed schedule cost {breakdown.total} != search cost {total_cost}"
        )
    verify_schedule(instance, schedule).raise_if_invalid()
    return OptimalResult(total_cost, schedule, breakdown, len(memo), pruned)


def _replay(
    instance: Instance,
    m: int,
    memo: dict[tuple[int, CacheKey, PendingKey], tuple[int, CacheKey]],
    arrivals: dict[int, dict[tuple[int, int], int]],
) -> Schedule:
    """Rebuild the witness schedule by replaying memoized decisions.

    Tracks the abstract pre-phase state exactly as ``solve`` does, while
    maintaining concrete job queues and slot assignments to emit events.
    """
    schedule = Schedule(m)
    cache: CacheKey = (BLACK,) * m
    pending: PendingKey = ()
    slot_colors: list[int] = [BLACK] * m

    # Concrete queues, FIFO by jid within a (color, deadline) class.
    queues: dict[tuple[int, int], list[Job]] = {}
    stacks: dict[tuple[int, int, int], list[Job]] = {}
    for job in sorted(instance.sequence, key=lambda j: j.jid, reverse=True):
        stacks.setdefault((job.arrival, job.color, job.deadline), []).append(job)

    for k in range(instance.horizon):
        entry = memo.get((k, cache, pending))
        if entry is None:
            raise KeyError(f"optimal path lost at round {k}")
        _, new_cache = entry

        # Drop + arrival phases (abstract and concrete in lockstep).
        _, pending2 = _drop_and_arrive(k, pending, arrivals)
        for key in [key for key in queues if key[1] <= k]:
            del queues[key]
        for (color, deadline), count in arrivals.get(k, {}).items():
            stack = stacks[(k, color, deadline)]
            queues.setdefault((color, deadline), []).extend(
                stack.pop() for _ in range(count)
            )

        # Reconfiguration phase: realize the multiset transition on the
        # physical slots — keep matching colors in place, recolor the rest.
        old_counts = Counter(cache)
        new_counts = Counter(new_cache)
        keep_budget = dict(old_counts & new_counts)
        active = [False] * m
        free_slots: list[int] = []
        for index, color in enumerate(slot_colors):
            if keep_budget.get(color, 0) > 0:
                keep_budget[color] -= 1
                active[index] = color != BLACK
            else:
                free_slots.append(index)
        for color, extra in sorted((new_counts - old_counts).items()):
            if color == BLACK:
                raise AssertionError("transitions must never add BLACK slots")
            for _ in range(extra):
                index = free_slots.pop(0)
                schedule.reconfigure(k, index, color)
                slot_colors[index] = color
                active[index] = True

        # Execution phase: EDF within each active slot's color. Slots
        # whose color left the abstract multiset stay physically colored
        # but voluntarily idle, matching the abstract accounting.
        for index in range(m):
            if not active[index]:
                continue
            color = slot_colors[index]
            candidates = [key for key in queues if key[0] == color]
            if not candidates:
                continue
            key = min(candidates, key=lambda key: key[1])
            job = queues[key].pop(0)
            if not queues[key]:
                del queues[key]
            schedule.execute(k, index, job)

        cache = new_cache
        pending = _execute_abstract(new_cache, pending2)
    return schedule
