"""Exact offline optimum by Russian Doll Search over nested suffixes.

For small instances this computes the true ``Cost_OFF`` the paper's
ratios are defined against.  The search space is kept finite by three
facts about the problem:

* **Configuration timing is free**: reconfiguring costs ``Δ`` whenever it
  happens, and the reconfiguration phase precedes the execution phase of
  the same round, so an optimal schedule exists that only ever configures
  colors with currently pending jobs (pre-configuring for the future
  cannot help).
* **EDF within a color is optimal**: once the round's configuration is
  fixed, executing each slot's earliest-deadline pending job of that
  color dominates any other choice.
* **State is summarizable**: at the start of round ``k`` the future
  depends only on the cache multiset and the pending multiset
  ``{(color, deadline) -> count}``.

:func:`optimal_offline` defaults to **Russian Doll Search** (Verfaillie,
Lemaitre & Schiex) over a *banded layered forward DP*:

1. a **suffix pass** solves the nested suffix subproblems
   ``[r, horizon)`` in decreasing ``r`` at the instance's *renewal
   rounds* (arrival rounds every earlier deadline precedes, so pending
   is provably empty there under any schedule), each from a wild root —
   any cache reachable for free — and records their exact optima; the
   recorded values become the admissible ``rds_bound(k) +
   transition_floor`` layer of the bound oracle, and each solve is
   itself banded by the values recorded before it (the nesting that
   names the method);
2. a **warm-started incumbent** seeds the band: the ΔLRU-EDF replay
   through the fast engine
   (:func:`~repro.offline.lower_bounds.warm_start_incumbent`), tightened
   by a width-2 beam walk of the DP itself whose terminal cost is a
   certified feasible schedule cost;
3. the **main solve** sweeps the state space one round-layer at a time
   (topological, so every state's minimal prefix cost ``g`` is final
   when expanded — no re-expansion thrash), keeping only states whose
   ``g +`` admissible bound fits under the incumbent and pruning
   layer-mates that are *dominated* — same cache, no cheaper prefix,
   and pending at least as large and urgent colorwise (a coupling
   argument makes their cost-to-go no smaller).  The admissible bound
   is the max of the legacy per-color floors, the
   :class:`~repro.offline.lower_bounds.ColorPhaseBound` phase
   decomposition, the recorded Russian Doll values, and the fractional
   :class:`~repro.offline.lower_bounds.IntervalPackingRelaxation`.

The optimal path always survives the band (its ``g`` plus any admissible
bound never exceeds the optimum, which never exceeds a certified
incumbent), so the terminal minimum is exact and its back-pointer chain
replays into a feasible :class:`~repro.core.schedule.Schedule` checked
by the shared verifier.

``method="legacy"`` keeps the previous iterative branch-and-bound
(per-node incumbents, suffix floors only) and ``method="exhaustive"``
the original recursive exhaustive search — both used by tests and the
offline bench to cross-check costs node-for-node.  A ``max_states``
guard protects against accidental use on large instances; when it fires,
:class:`SearchSpaceExceeded` now carries the nodes expanded, the best
incumbent found, and the dominant bound source, so truncated solves are
diagnosable instead of opaque.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from collections import Counter
from dataclasses import dataclass, field
from itertools import combinations_with_replacement
from time import perf_counter

from repro.core.cost import CostBreakdown
from repro.core.instance import Instance
from repro.core.job import BLACK, Job
from repro.core.schedule import Schedule
from repro.core.validation import verify_schedule
from repro.offline.lower_bounds import (
    ColorPhaseBound,
    IntervalPackingRelaxation,
    pending_drop_floor,
    pending_reconfig_floor,
    warm_start_incumbent,
)

#: pending is a sorted tuple of ((color, deadline), count).
PendingKey = tuple[tuple[tuple[int, int], int], ...]
CacheKey = tuple[int, ...]

_HUGE = 1 << 60

#: Recognized ``optimal_offline(..., method=)`` values.
OFFLINE_METHODS = ("rds", "legacy", "exhaustive")


class SearchSpaceExceeded(RuntimeError):
    """Raised when the search outgrows ``max_states``.

    Carries enough context to diagnose a truncated solve:
    ``nodes_expanded`` (decision nodes expanded before the guard fired),
    ``best_incumbent`` (cost of the best feasible schedule known so far,
    ``None`` if none), and ``bound_source`` (the bound layer that did the
    most pruning up to the truncation, ``"none"`` before any prune).
    """

    def __init__(
        self,
        message: str,
        *,
        nodes_expanded: int | None = None,
        best_incumbent: int | None = None,
        bound_source: str = "none",
    ) -> None:
        super().__init__(message)
        self.nodes_expanded = nodes_expanded
        self.best_incumbent = best_incumbent
        self.bound_source = bound_source


@dataclass(frozen=True)
class OptimalResult:
    """Exact optimum plus a witness schedule.

    ``candidates_pruned`` counts states and edges cut without expansion;
    ``bound_source_histogram`` attributes those cuts to the filter that
    made them (``rds``, ``relaxation``, ``phase``, ``drop_floor``,
    ``reconfig_floor``, ``dominance``, ``terminal``) — the effectiveness
    metrics exported to the ``offline.*`` telemetry instruments and
    surfaced by ``repro stats``.
    """

    cost: int
    schedule: Schedule
    breakdown: CostBreakdown
    states_explored: int
    candidates_pruned: int = 0
    bound_source_histogram: dict[str, int] = field(default_factory=dict)
    method: str = "legacy"
    warm_start_cost: int | None = None

    @property
    def nodes_expanded(self) -> int:
        """Decision nodes expanded (alias of ``states_explored``)."""
        return self.states_explored

    @property
    def num_reconfigs(self) -> int:
        return self.breakdown.num_reconfigs

    @property
    def num_drops(self) -> int:
        return self.breakdown.num_drops


def _arrivals_by_round(instance: Instance) -> dict[int, dict[tuple[int, int], int]]:
    grouped: dict[int, dict[tuple[int, int], int]] = {}
    for job in instance.sequence:
        per_round = grouped.setdefault(job.arrival, {})
        key = (job.color, job.deadline)
        per_round[key] = per_round.get(key, 0) + 1
    return grouped


def _candidate_caches(
    current: CacheKey, pending_colors: tuple[int, ...], m: int
) -> list[CacheKey]:
    """All useful *physical* slot-color multisets reachable from ``current``.

    The cache is always a full multiset of ``m`` slot colors, with
    :data:`~repro.core.job.BLACK` marking never-reconfigured slots.  A
    transition may only recolor slots to non-black colors, so the BLACK
    count never increases.  New colors are only ever drawn from the
    pending colors (recoloring to a color with no pending jobs is
    dominated); keeping a current color is free.
    """
    old_black = sum(1 for c in current if c == BLACK)
    pool = tuple(sorted((set(pending_colors) | set(current)) - {BLACK}))
    seen: set[CacheKey] = set()
    out: list[CacheKey] = []
    for non_black_size in range(max(0, m - old_black), m + 1):
        pad = (BLACK,) * (m - non_black_size)
        for combo in combinations_with_replacement(pool, non_black_size):
            key = tuple(sorted(pad + combo))
            if key not in seen:
                seen.add(key)
                out.append(key)
    if current not in seen:
        out.append(current)
    return out


def _reconfig_count(old: CacheKey, new: CacheKey) -> int:
    """Slots recolored turning full multiset ``old`` into ``new``.

    Matching identical colors maximally, the recolored slots are exactly
    the non-black assignments not covered: ``Σ_c max(0, new(c) - old(c))``
    over non-black colors.
    """
    old_counts = Counter(old)
    new_counts = Counter(new)
    return sum(
        max(0, new_counts[c] - old_counts.get(c, 0))
        for c in new_counts
        if c != BLACK
    )


def _drop_and_arrive(
    k: int,
    pending: PendingKey,
    arrivals: dict[int, dict[tuple[int, int], int]],
) -> tuple[int, PendingKey]:
    """Apply the drop and arrival phases; return (dropped count, pending)."""
    items = dict(pending)
    dropped = 0
    for (color, deadline), count in list(items.items()):
        if deadline <= k:
            dropped += count
            del items[(color, deadline)]
    for key, count in arrivals.get(k, {}).items():
        items[key] = items.get(key, 0) + count
    return dropped, tuple(sorted(items.items()))


def _execute_abstract(cache: CacheKey, pending: PendingKey) -> PendingKey:
    """Each slot executes its color's earliest-deadline pending job."""
    items = dict(pending)
    for color, width in Counter(cache).items():
        if color == BLACK:
            continue
        for _ in range(width):
            deadlines = [d for (c, d) in items if c == color]
            if not deadlines:
                break
            key = (color, min(deadlines))
            items[key] -= 1
            if items[key] == 0:
                del items[key]
    return tuple(sorted(items.items()))


def _future_arrivals_by_color(
    arrivals: dict[int, dict[tuple[int, int], int]],
) -> dict[int, tuple[list[int], list[int]]]:
    """Per color: sorted arrival rounds and suffix job totals.

    ``suffix[i]`` is the number of the color's jobs arriving at or after
    ``rounds[i]`` — the lookup behind the future-aware reconfiguration
    floor of the branch-and-bound suffix bound.
    """
    per_color: dict[int, dict[int, int]] = {}
    for k, batch in arrivals.items():
        for (color, _), count in batch.items():
            rounds = per_color.setdefault(color, {})
            rounds[k] = rounds.get(k, 0) + count
    out: dict[int, tuple[list[int], list[int]]] = {}
    for color, by_round in per_color.items():
        rounds = sorted(by_round)
        suffix = [0] * len(rounds)
        acc = 0
        for i in range(len(rounds) - 1, -1, -1):
            acc += by_round[rounds[i]]
            suffix[i] = acc
        out[color] = (rounds, suffix)
    return out


class _BoundOracle:
    """Layered admissible bounds on the cost-to-go, with attribution.

    :meth:`bound` returns the maximum of three independently admissible
    layers and the name of the winning layer:

    * the **legacy suffix floors** — per-color reconfigure-or-drop over
      pending *plus future* jobs, max'd with the pending capacity drop
      floor (exactly the previous branch-and-bound's bound);
    * the **Russian Doll bound** — the recorded value of the nearest
      *solved* suffix subproblem at or after the state's round (suffix
      values bound the cost of the jobs they cover, so a later suffix
      still bounds an earlier state) plus
      a *transition floor* on the carried pending jobs: the capacity drop
      floor, max'd with a reconfigure-or-drop charge restricted to
      pending colors with **no future arrivals** — such colors are
      excisable from the suffix witness, so their charge is provably
      disjoint from the suffix optimum and the sum stays admissible;
    * the **interval-packing relaxation** — the fractional capacity LP
      over pending and future jobs jointly, the fallback where the
      suffix table is truncated.
    """

    __slots__ = (
        "m",
        "delta",
        "drop_cost",
        "future_by_color",
        "packing",
        "phases",
        "rds_rounds",
        "rds_values",
        "solved_indices",
    )

    def __init__(
        self,
        arrivals: dict[int, dict[tuple[int, int], int]],
        arrival_rounds: list[int],
        m: int,
        delta: int,
        drop_cost: int,
        horizon: int,
    ) -> None:
        self.m = m
        self.delta = delta
        self.drop_cost = drop_cost
        self.future_by_color = _future_arrivals_by_color(arrivals)
        self.packing = IntervalPackingRelaxation(arrivals, m, drop_cost)
        self.phases = ColorPhaseBound(arrivals, m, horizon, delta, drop_cost)
        self.rds_rounds = arrival_rounds
        self.rds_values: list[int] = [0] * len(arrival_rounds)
        #: Ascending arrival-round indices with a recorded suffix value.
        #: Suffix roots sit only at renewal rounds, so the solved set is a
        #: *sparse subset* of a tail — a bound lookup must hop to the next
        #: recorded index, not read the (zero) slot in between.
        self.solved_indices: list[int] = []

    def record_suffix(self, index: int, value: int) -> None:
        self.rds_values[index] = value
        # The pass records suffixes in strictly decreasing index order.
        self.solved_indices.insert(0, index)

    @property
    def suffixes_solved(self) -> int:
        return len(self.solved_indices)

    def has_solved_at_or_after(self, index: int) -> bool:
        return bool(self.solved_indices) and index <= self.solved_indices[-1]

    def rds_floor(self, start_round: int) -> int:
        """Value of the nearest recorded suffix at/after the round."""
        i = bisect_left(self.rds_rounds, start_round)
        j = bisect_left(self.solved_indices, i)
        if j == len(self.solved_indices):
            return 0
        return self.rds_values[self.solved_indices[j]]

    def _future_count(self, color: int, start_round: int) -> int:
        entry = self.future_by_color.get(color)
        if entry is None:
            return 0
        rounds, suffix = entry
        i = bisect_right(rounds, start_round - 1)
        return suffix[i] if i < len(rounds) else 0

    def legacy_floor(
        self, start_round: int, cache: CacheKey, pending: PendingKey
    ) -> tuple[int, str]:
        """The previous solver's suffix bound, with source attribution."""
        per_color: dict[int, int] = {}
        for (color, _), count in pending:
            per_color[color] = per_color.get(color, 0) + count
        for color in self.future_by_color:
            future = self._future_count(color, start_round)
            if future:
                per_color[color] = per_color.get(color, 0) + future
        merged = [((color, 0), count) for color, count in per_color.items()]
        floor = pending_reconfig_floor(
            merged, set(cache), self.delta, self.drop_cost
        )
        source = "reconfig_floor"
        if pending:
            drops = pending_drop_floor(
                pending, start_round, self.m, self.drop_cost
            )
            if drops > floor:
                floor, source = drops, "drop_floor"
        return floor, source

    def transition_floor(
        self, start_round: int, cache: CacheKey, pending: PendingKey
    ) -> int:
        """Admissible add-on to the suffix optimum for carried pending jobs.

        Capacity drops among the pending jobs (future jobs only shrink
        the capacity available to them), max'd with reconfigure-or-drop
        charges for uncached pending colors that never arrive again —
        both provably disjoint from the suffix subproblem's costs.
        """
        if not pending:
            return 0
        floor = pending_drop_floor(pending, start_round, self.m, self.drop_cost)
        stale = 0
        per_color: dict[int, int] = {}
        for (color, _), count in pending:
            per_color[color] = per_color.get(color, 0) + count
        cached = set(cache)
        for color, count in per_color.items():
            if color in cached:
                continue
            if self._future_count(color, start_round):
                continue
            stale += min(self.delta, count * self.drop_cost)
        return max(floor, stale)

    def cheap_bound(
        self, start_round: int, cache: CacheKey, pending: PendingKey
    ) -> tuple[int, str]:
        """Max of the O(|pending|) layers and the name of the winner.

        The packing relaxation is excluded — the solver evaluates it
        lazily, only on candidate rows these layers fail to prune.
        """
        best, source = self.legacy_floor(start_round, cache, pending)
        phased = self.phases.floor(start_round, cache, pending)
        if phased > best:
            best, source = phased, "phase"
        rds = self.rds_floor(start_round)
        if rds:
            layered = rds + self.transition_floor(start_round, cache, pending)
            if layered > best:
                best, source = layered, "rds"
        return best, source

    def bound(
        self, start_round: int, cache: CacheKey, pending: PendingKey
    ) -> tuple[int, str]:
        """Max of every layer and the name of the winner."""
        best, source = self.cheap_bound(start_round, cache, pending)
        packed = self.packing.floor(start_round, pending)
        if packed > best:
            best, source = packed, "relaxation"
        return best, source


def _deadline_profile(pending: PendingKey) -> dict[int, tuple[int, ...]]:
    """Per-color ascending deadline list of a pending multiset."""
    per_color: dict[int, list[int]] = {}
    for (color, deadline), count in pending:
        per_color.setdefault(color, []).extend((deadline,) * count)
    return {color: tuple(dls) for color, dls in per_color.items()}


def _at_least_as_hard(
    easy: dict[int, tuple[int, ...]], hard: dict[int, tuple[int, ...]]
) -> bool:
    """Whether ``hard`` colorwise covers ``easy`` with tighter deadlines.

    For every color, ``hard`` must hold at least as many jobs and its
    ``i``-th most urgent deadline must be at most ``easy``'s — i.e. for
    every ``d``, ``hard`` has at least as many jobs due by ``d``.  Then a
    coupling argument (run any schedule for ``hard``, execute the
    matched ``easy`` job whenever it executes a matched job, drop the
    match of every drop) shows the optimal cost-to-go from ``easy`` is
    no larger, so with no cheaper prefix the harder state is dominated.
    """
    for color, deadlines in easy.items():
        other = hard.get(color)
        if other is None or len(other) < len(deadlines):
            return False
        for d_hard, d_easy in zip(other, deadlines):
            if d_hard > d_easy:
                return False
    return True


class _RDSSolver:
    """Russian Doll Search over a banded layered forward DP.

    The engine (:meth:`_forward`) sweeps pre-phase states one round at a
    time.  Layers make the order topological — a state's minimal prefix
    cost ``g`` is final when its layer is processed, so nothing is ever
    re-expanded (the re-expansion thrash of allowance-propagating DFBB
    is what kept the legacy solver competitive despite weaker bounds).
    Three sound filters shrink each layer:

    * **banding** — an edge whose ``g`` + admissible child bound exceeds
      a *certified* incumbent (a feasible schedule's cost) is cut; the
      optimal path's ``g`` is its prefix cost, any admissible bound is
      at most its true tail, and their sum is at most the optimum ≤ the
      incumbent, so the optimal path always survives;
    * **dominance** — a layer-mate with the same cache, no cheaper
      prefix, and colorwise at-least-as-hard pending
      (:func:`_at_least_as_hard`) can never finish cheaper, so it is
      pruned before expansion;
    * **lazy-reconfiguration normal form** — some optimal schedule only
      recolors a slot in a round where the new color immediately
      executes, so candidates growing a color past its backlog are
      unreachable in the normal form and skipped.

    States with nothing pending fast-forward to the next arrival round
    (configuration timing is free, so keeping the cache dominates).  The
    terminal layer's minimum is the exact optimum and its back-pointer
    chain is the witness schedule.

    :meth:`run_suffix_pass` first solves wild-root suffix subproblems at
    **renewal rounds** (arrival rounds every earlier job's deadline
    precedes — pending is provably empty there under any schedule) in
    decreasing order with the same engine; each solve is banded by the
    drop-everything completion, the warm incumbent, and the values
    recorded before it, and its recorded optimum feeds the bound
    oracle's ``rds`` layer for every earlier solve — the nesting that
    gives Russian Doll Search its name.  Instances whose arrivals form
    one busy period have a single renewal (the first arrival round,
    owned by the main solve), so the pass is free exactly when it
    cannot help.  :meth:`_beam_incumbent` then walks the same DP at a
    fixed beam width; its terminal value is a real schedule's cost and
    usually tightens the ΔLRU-EDF warm start into a near-optimal band.
    """

    def __init__(
        self,
        instance: Instance,
        m: int,
        *,
        max_states: int,
        rds_budget: int | None = None,
        warm_cost: int | None = None,
    ) -> None:
        self.m = m
        self.delta = instance.spec.reconfig_cost
        self.drop_cost = instance.spec.cost.drop_cost
        self.horizon = instance.horizon
        self.arrivals = _arrivals_by_round(instance)
        self.arrival_rounds = sorted(self.arrivals)
        self.oracle = _BoundOracle(
            self.arrivals,
            self.arrival_rounds,
            m,
            self.delta,
            self.drop_cost,
            self.horizon,
        )
        #: Witness decisions on the optimal path only (replay reads the
        #: chosen cache and exactness flag; values are not consulted).
        self.memo: dict[
            tuple[int, CacheKey, PendingKey], tuple[int, CacheKey, bool]
        ] = {}
        self.max_states = max_states
        self.cap = max_states
        #: States kept per layer by the incumbent-seeding beam walk.  A
        #: narrow beam keeps the incumbent cost negligible; dominance
        #: pruning in the main sweep recovers what a wider beam would
        #: have saved.
        self.beam_width = 2
        #: Node budget reserved for the suffix pass (the rest belongs to
        #: the full solve; an early-finishing pass donates its remainder).
        #: The default keeps the pass proportional to the horizon: the
        #: deepest dolls — shortest, cheapest, and covering the rounds
        #: where every other floor is weakest — are solved first (the
        #: pass runs in decreasing ``r``), and truncating the rest costs
        #: only bound sharpness, never admissibility.
        self.rds_budget = (
            rds_budget
            if rds_budget is not None
            else max(64, min(max_states // 2, self.horizon))
        )
        self.expanded = 0
        self.pruned = 0
        self.bound_hist: dict[str, int] = {}
        self._parents: dict[
            tuple[int, CacheKey, PendingKey],
            tuple[int, CacheKey, PendingKey, CacheKey],
        ] = {}
        self.warm_cost = warm_cost
        self.incumbent = warm_cost
        self.rds_truncated = False
        # Per-arrival-round bookkeeping (indices align with
        # ``arrival_rounds``): batch sizes, suffix job totals (for the
        # drop-everything node upper bound), colors with any arrival at
        # or after the round (the wild-root candidate pool — restricting
        # it to currently-pending colors would inflate suffix values
        # above the true wild optimum, breaking admissibility), and the
        # renewal flags that place suffix roots.
        n = len(self.arrival_rounds)
        self.batch_sizes = [
            sum(self.arrivals[r].values()) for r in self.arrival_rounds
        ]
        self.suffix_jobs = [0] * (n + 1)
        for i in range(n - 1, -1, -1):
            self.suffix_jobs[i] = self.suffix_jobs[i + 1] + self.batch_sizes[i]
        self.colors_from: list[tuple[int, ...]] = []
        acc: set[int] = set()
        for r in reversed(self.arrival_rounds):
            for (color, _) in self.arrivals[r]:
                acc.add(color)
            self.colors_from.append(tuple(sorted(acc)))
        self.colors_from.reverse()
        # Renewal rounds: arrival rounds r with every earlier deadline
        # <= r, so pending is empty there under *any* schedule.  Suffix
        # roots live only here — one wild solve per busy period instead
        # of one per arrival round.
        self.renewal_indices: list[int] = []
        max_deadline = 0
        for i, r in enumerate(self.arrival_rounds):
            if max_deadline <= r:
                self.renewal_indices.append(i)
            for (_, deadline), _count in self.arrivals[r].items():
                if deadline > max_deadline:
                    max_deadline = deadline

    def _future_jobs_from(self, k: int) -> int:
        """Jobs arriving at any round >= k."""
        return self.suffix_jobs[bisect_left(self.arrival_rounds, k)]

    def _exceeded(self) -> SearchSpaceExceeded:
        source = "none"
        if self.bound_hist:
            source = max(self.bound_hist, key=self.bound_hist.get)
        return SearchSpaceExceeded(
            f"optimal_offline exceeded {self.cap} states "
            f"({self.expanded} nodes expanded, best incumbent "
            f"{self.incumbent}, dominant bound source {source}); the "
            f"instance is too large for exact search",
            nodes_expanded=self.expanded,
            best_incumbent=self.incumbent,
            bound_source=source,
        )

    def run_suffix_pass(self) -> None:
        """Solve renewal suffixes ``[r, horizon)`` in decreasing ``r``.

        Each suffix starts from the wild layer — every cache over the
        colors still to arrive, each at prefix cost zero (the best
        reachable abstraction of any state entering round ``r``) — so
        its value lower-bounds the cost-to-go of every concrete state
        there.  Later suffixes' recorded values band earlier solves via
        the oracle's ``rds`` layer — the nesting that gives Russian Doll
        Search its name.  The first renewal (always the first arrival
        round) belongs to the main solve and is skipped.  The pass stops
        early when its node budget runs out; recorded suffixes stay
        valid, and the sparse lookup in :meth:`_BoundOracle.rds_floor`
        keeps the partial table admissible.
        """
        self.cap = min(self.max_states, self.rds_budget)
        try:
            for index in reversed(self.renewal_indices[1:]):
                if self.expanded >= self.cap:
                    self.rds_truncated = True
                    break
                r = self.arrival_rounds[index]
                pool = self.colors_from[index]
                base: CacheKey = (BLACK,) * self.m
                init = {
                    (cand, ()): 0
                    for cand in _candidate_caches(base, pool, self.m)
                }
                # Only *certified* upper bounds may seed the band: the
                # drop-everything completion of the suffix, the warm
                # incumbent (any suffix wild value is <= the value of
                # some state on the warm schedule's trajectory <= the
                # warm cost), and a beam walk of the suffix itself —
                # whichever is tightest.
                cutoff = self.suffix_jobs[index] * self.drop_cost
                if self.warm_cost is not None and self.warm_cost < cutoff:
                    cutoff = self.warm_cost
                beam_ub = self._beam_incumbent(r, init)
                if beam_ub < cutoff:
                    cutoff = beam_ub
                value, _ = self._forward(r, init, cutoff, collect_path=False)
                self.oracle.record_suffix(index, value)
        except SearchSpaceExceeded:
            # Mid-solve truncation: every recorded suffix is still a
            # certified exact optimum; only the open solve is lost.
            self.rds_truncated = True
        finally:
            self.cap = self.max_states

    def run_main(self) -> int:
        """Beam incumbent, then the banded sweep from the black root."""
        beam_ub = self._beam_incumbent()
        cutoff = beam_ub
        if self.warm_cost is not None and self.warm_cost < cutoff:
            cutoff = self.warm_cost
        self.incumbent = cutoff
        root = ((BLACK,) * self.m, ())
        value, terminal = self._forward(
            0, {root: 0}, cutoff, collect_path=True
        )
        self.incumbent = value
        self._fill_memo(terminal)
        return value

    def run(self) -> tuple[int, int | None]:
        """Suffix pass, then the full solve from the all-black root."""
        self.run_suffix_pass()
        return self.run_main(), self.warm_cost

    def _prune_dominated(
        self, layer: dict[tuple[CacheKey, PendingKey], int]
    ) -> dict[tuple[CacheKey, PendingKey], int]:
        """Drop layer states dominated by a cheaper layer-mate.

        States are visited cheapest-``g`` (then smallest pending) first.
        A state is dominated when some already-kept state has colorwise
        easier pending (:func:`_at_least_as_hard`) and a prefix cheaper
        by at least ``Δ`` per slot color the dominated cache holds beyond
        the keeper's — the keeper can simulate any schedule of the
        dominated state, paying at most one recoloring per missing slot
        color, so the dominated state can never finish cheaper.  Kept
        states were expanded before any of their children exist, so no
        surviving back-pointer ever targets a pruned state.
        """
        items: list[tuple[int, int, PendingKey, CacheKey]] = []
        for (cache, pending), g in layer.items():
            size = sum(count for _, count in pending)
            items.append((g, size, pending, cache))
        items.sort()
        kept: list[
            tuple[int, dict[int, tuple[int, ...]], Counter]
        ] = []
        out: dict[tuple[CacheKey, PendingKey], int] = {}
        for g, _, pending, cache in items:
            profile = _deadline_profile(pending)
            counts = Counter(c for c in cache if c != BLACK)
            dominated = False
            for g0, profile0, counts0 in kept:
                if g0 >= g:
                    # Sorted ascending: keepers from here on are at best
                    # as cheap, and a positive recoloring surcharge only
                    # raises the bar further — same-``g`` mates with
                    # missing colors can never dominate.
                    break
                missing = sum(
                    max(0, count - counts0.get(color, 0))
                    for color, count in counts.items()
                )
                if g0 + self.delta * missing <= g and _at_least_as_hard(
                    profile0, profile
                ):
                    dominated = True
                    break
            if dominated:
                self.pruned += 1
                self.bound_hist["dominance"] = (
                    self.bound_hist.get("dominance", 0) + 1
                )
            else:
                kept.append((g, profile, counts))
                out[(cache, pending)] = g
        return out

    def _candidate_rows(
        self, cache: CacheKey, pending2: PendingKey
    ) -> list[tuple[int, CacheKey]]:
        """Lazy-normal-form candidates as ``(reconfig cost, cache)`` rows.

        Some optimal schedule only ever recolors a slot in a round where
        the new color executes a job immediately (postponing an idle
        recoloring — the slot keeps its old color, forced EDF can only
        execute *more*, and the deferred recoloring still costs at most
        Δ — never increases cost), so candidates where a strictly
        increased color count exceeds that color's post-arrival backlog
        are unreachable in the normal form and skipped outright.
        """
        pend_count: dict[int, int] = {}
        for (c, _), count in pending2:
            pend_count[c] = pend_count.get(c, 0) + count
        pending_colors = tuple(sorted(pend_count))
        rows: list[tuple[int, CacheKey]] = []
        for cand in _candidate_caches(cache, pending_colors, self.m):
            lazy = True
            for c in set(cand):
                if c == BLACK:
                    continue
                grown = cand.count(c)
                if grown > cache.count(c) and grown > pend_count.get(c, 0):
                    lazy = False
                    break
            if lazy:
                rows.append((_reconfig_count(cache, cand) * self.delta, cand))
        return rows

    def _forward(
        self,
        start: int,
        init: dict[tuple[CacheKey, PendingKey], int],
        cutoff: int,
        *,
        collect_path: bool,
    ) -> tuple[int, tuple[int, CacheKey, PendingKey] | None]:
        """Banded layered sweep from ``init`` at round ``start``.

        ``cutoff`` must be a *certified* upper bound on the optimum from
        ``init`` — the cost of some feasible completion — so the band
        ``g + bound <= cutoff`` provably keeps the optimal path and the
        terminal minimum is exact.  With ``collect_path`` the argmin
        terminal state and the back-pointer chain to it are retained
        (read by :meth:`_fill_memo`); the suffix pass skips both.
        """
        horizon = self.horizon
        drop = self.drop_cost
        oracle = self.oracle
        layers: dict[int, dict[tuple[CacheKey, PendingKey], int]] = {
            start: dict(init)
        }
        parents: dict[
            tuple[int, CacheKey, PendingKey],
            tuple[int, CacheKey, PendingKey, CacheKey],
        ] = {}

        def relax(
            round_: int,
            state: tuple[CacheKey, PendingKey],
            g: int,
            k: int,
            prev: tuple[CacheKey, PendingKey],
            chosen: CacheKey,
        ) -> None:
            tgt = layers.setdefault(round_, {})
            if g < tgt.get(state, _HUGE):
                tgt[state] = g
                if collect_path:
                    parents[(round_,) + state] = (k,) + prev + (chosen,)

        for k in range(start, horizon):
            layer = layers.pop(k, None)
            if not layer:
                continue
            if len(layer) > 1:
                layer = self._prune_dominated(layer)
            for state, g in layer.items():
                cache, pending = state
                self.expanded += 1
                if self.expanded > self.cap:
                    raise self._exceeded()
                dropped, pending2 = _drop_and_arrive(k, pending, self.arrivals)
                g2 = g + dropped * drop
                if not pending2:
                    # Inactive stretch: with nothing pending, keeping the
                    # configuration dominates (timing is free) — jump to
                    # the next arrival round in one step.
                    nxt = bisect_right(self.arrival_rounds, k)
                    if nxt == len(self.arrival_rounds):
                        next_k = horizon
                        bound = 0
                        source = "terminal"
                    else:
                        next_k = self.arrival_rounds[nxt]
                        bound, source = oracle.cheap_bound(next_k, cache, ())
                    if g2 + bound > cutoff:
                        self.pruned += 1
                        self.bound_hist[source] = (
                            self.bound_hist.get(source, 0) + 1
                        )
                        continue
                    relax(next_k, (cache, ()), g2, k, state, cache)
                    continue
                k1 = k + 1
                for reconfig, cand in self._candidate_rows(cache, pending2):
                    g3 = g2 + reconfig
                    after = _execute_abstract(cand, pending2)
                    if k1 >= horizon:
                        bound = sum(count for _, count in after) * drop
                        source = "terminal"
                    else:
                        bound, source = oracle.cheap_bound(k1, cand, after)
                        packed = oracle.packing.floor(k1, after)
                        if packed > bound:
                            bound, source = packed, "relaxation"
                    if g3 + bound > cutoff:
                        self.pruned += 1
                        self.bound_hist[source] = (
                            self.bound_hist.get(source, 0) + 1
                        )
                        continue
                    relax(k1, (cand, after), g3, k, state, cand)

        best: int | None = None
        best_state: tuple[int, CacheKey, PendingKey] | None = None
        for (cache, pending), g in layers.get(horizon, {}).items():
            # Past the horizon every leftover drops (it extends past all
            # deadlines, so nothing could still execute).
            value = g + sum(count for _, count in pending) * drop
            if best is None or value < best:
                best = value
                best_state = (horizon, cache, pending)
        # The optimal path survives the band under a certified cutoff.
        assert best is not None and best <= cutoff
        if collect_path:
            self._parents = parents
        return best, best_state

    def _beam_incumbent(
        self,
        start: int = 0,
        init: dict[tuple[CacheKey, PendingKey], int] | None = None,
    ) -> int:
        """Certified upper bound from a fixed-width walk of the DP.

        Identical transitions, no banding, but each layer is truncated
        to the :attr:`beam_width` states with the smallest ``g`` +
        cheap admissible bound.  Every surviving terminal is the cost of
        a concrete feasible schedule (from some ``init`` state), so the
        minimum is a certified incumbent for :meth:`_forward` over the
        same ``init`` — usually far tighter than the ΔLRU-EDF replay.
        """
        horizon = self.horizon
        drop = self.drop_cost
        oracle = self.oracle
        width = self.beam_width
        if init is None:
            init = {((BLACK,) * self.m, ()): 0}
        layers: dict[int, dict[tuple[CacheKey, PendingKey], int]] = {
            start: dict(init)
        }
        for k in range(start, horizon):
            layer = layers.pop(k, None)
            if not layer:
                continue
            if len(layer) > width:
                scored = sorted(
                    layer.items(),
                    key=lambda item: (
                        item[1] + oracle.cheap_bound(k, *item[0])[0],
                        item[0],
                    ),
                )
                layer = dict(scored[:width])
            for (cache, pending), g in layer.items():
                self.expanded += 1
                if self.expanded > self.cap:
                    raise self._exceeded()
                dropped, pending2 = _drop_and_arrive(k, pending, self.arrivals)
                g2 = g + dropped * drop
                if not pending2:
                    nxt = bisect_right(self.arrival_rounds, k)
                    next_k = (
                        self.arrival_rounds[nxt]
                        if nxt < len(self.arrival_rounds)
                        else horizon
                    )
                    tgt = layers.setdefault(next_k, {})
                    st = (cache, ())
                    if g2 < tgt.get(st, _HUGE):
                        tgt[st] = g2
                    continue
                for reconfig, cand in self._candidate_rows(cache, pending2):
                    after = _execute_abstract(cand, pending2)
                    tgt = layers.setdefault(k + 1, {})
                    st = (cand, after)
                    if g2 + reconfig < tgt.get(st, _HUGE):
                        tgt[st] = g2 + reconfig
        ub = min(
            (
                g + sum(count for _, count in pending) * drop
                for (_, pending), g in layers.get(horizon, {}).items()
            ),
            default=None,
        )
        # Keep-the-cache transitions always exist, so the beam never
        # dies before the horizon.
        assert ub is not None
        return ub

    def _fill_memo(
        self, terminal: tuple[int, CacheKey, PendingKey] | None
    ) -> None:
        """Write the argmin terminal's back-pointer chain into ``memo``.

        Replay walks every round, so fast-forward jumps fill the skipped
        (empty-pending) rounds with keep-the-cache decisions.  Memo
        values are never consulted by replay — only the chosen cache and
        the exactness flag — so they are stored as zero.
        """
        if terminal is None:
            return
        round_, cache, pending = terminal
        while True:
            link = self._parents.get((round_, cache, pending))
            if link is None:
                break
            prev_round, prev_cache, prev_pending, chosen = link
            self.memo[(prev_round, prev_cache, prev_pending)] = (
                0,
                chosen,
                True,
            )
            for j in range(prev_round + 1, round_):
                self.memo[(j, chosen, ())] = (0, chosen, True)
            round_, cache, pending = prev_round, prev_cache, prev_pending
        # Trailing arrival-free rounds after a jump straight to the
        # horizon are already filled by the loop above; nothing pends at
        # or past the horizon, so no terminal entry is needed.


def optimal_offline(
    instance: Instance,
    num_resources: int,
    *,
    max_states: int = 2_000_000,
    method: str = "rds",
    warm_start: bool = True,
    rds_budget: int | None = None,
    engine: str | None = None,
    tracer=None,
    registry=None,
    recorder=None,
) -> OptimalResult:
    """Compute the exact optimal offline cost and a witness schedule.

    ``method`` selects the solver:

    * ``"rds"`` (default) — Russian Doll Search over the banded layered
      forward DP: nested renewal-suffix solves, layered admissible
      bounds, dominance pruning, and a warm-started incumbent tightened
      by a beam walk (see the module docstring).  ``warm_start=False``
      skips the ΔLRU-EDF replay (the beam incumbent still seeds the
      band); ``rds_budget`` caps the nodes the suffix pass may spend
      (default: one node per horizon round, at most half of
      ``max_states``); ``engine`` picks the replay backend
      (``"vectorized"`` for numpy).
    * ``"legacy"`` — the previous iterative branch-and-bound with the
      suffix floors only, kept for benchmarking the RDS speedup.
    * ``"exhaustive"`` — the original recursive exhaustive search
      (:func:`optimal_offline_exhaustive`), the cross-check oracle.

    ``states_explored`` counts expanded decision nodes (for ``"rds"``
    including the suffix pass), so methods compare node-for-node.

    Optional observability: a ``tracer`` records an ``offline_solve``
    span (instance, resources → cost, nodes, prunes, bound sources) with
    a nested ``rds_pass`` span for the suffix solves; a metrics
    ``registry`` accumulates ``offline.*`` counters; a ``recorder``
    (:class:`~repro.obs.registry.RegistrySink`) appends the solve to the
    persistent run registry.
    """
    if num_resources <= 0:
        raise ValueError("need at least one resource")
    if method not in OFFLINE_METHODS:
        raise ValueError(
            f"unknown method {method!r}; expected one of {OFFLINE_METHODS}"
        )
    solve_started = perf_counter()
    if method == "exhaustive":
        result = optimal_offline_exhaustive(
            instance, num_resources, max_states=max_states
        )
        if recorder is not None:
            recorder.record_offline(
                result,
                instance,
                num_resources,
                wall_seconds=perf_counter() - solve_started,
            )
        return result
    active_tracer = (
        tracer
        if tracer is not None and getattr(tracer, "enabled", True)
        else None
    )
    if active_tracer is not None:
        active_tracer.begin(
            "offline_solve",
            instance=instance.name or "instance",
            resources=num_resources,
            horizon=instance.horizon,
            method=method,
        )
    m = num_resources

    if method == "legacy":
        total_cost, memo, expanded, pruned = _solve_legacy(
            instance, m, max_states
        )
        hist: dict[str, int] = {}
        warm_cost = None
    else:
        warm_cost = (
            warm_start_incumbent(instance, m, engine=engine)
            if warm_start
            else None
        )
        solver = _RDSSolver(
            instance,
            m,
            max_states=max_states,
            rds_budget=rds_budget,
            warm_cost=warm_cost,
        )
        if active_tracer is not None:
            active_tracer.begin(
                "rds_pass",
                suffixes=max(0, len(solver.renewal_indices) - 1),
                budget=solver.rds_budget,
            )
            try:
                solver.run_suffix_pass()
            finally:
                active_tracer.end(
                    "rds_pass",
                    suffixes_solved=solver.oracle.suffixes_solved,
                    truncated=solver.rds_truncated,
                    nodes=solver.expanded,
                )
            try:
                total_cost = solver.run_main()
            except SearchSpaceExceeded:
                active_tracer.end(
                    "offline_solve",
                    truncated=True,
                    states_explored=solver.expanded,
                )
                raise
        else:
            total_cost, _ = solver.run()
        memo = solver.memo
        expanded = solver.expanded
        pruned = solver.pruned
        hist = dict(solver.bound_hist)

    arrivals = _arrivals_by_round(instance)
    schedule = _replay(instance, m, memo, arrivals)
    breakdown = schedule.cost(instance.sequence.jobs, instance.cost_model)
    if breakdown.total != total_cost:
        raise AssertionError(
            f"replayed schedule cost {breakdown.total} != search cost {total_cost}"
        )
    if warm_cost is not None and total_cost > warm_cost:
        raise AssertionError(
            f"search cost {total_cost} exceeds the warm-start incumbent "
            f"{warm_cost} — the incumbent replay is not a feasible upper bound"
        )
    verify_schedule(instance, schedule).raise_if_invalid()
    if registry is not None:
        registry.counter("offline.states_expanded").inc(expanded)
        registry.counter("offline.candidates_pruned").inc(pruned)
        for source, count in hist.items():
            registry.counter(f"offline.bound.{source}").inc(count)
    if active_tracer is not None:
        active_tracer.end(
            "offline_solve",
            cost=total_cost,
            states_explored=expanded,
            candidates_pruned=pruned,
            bound_sources=hist,
            warm_start_cost=warm_cost,
        )
    result = OptimalResult(
        total_cost,
        schedule,
        breakdown,
        expanded,
        pruned,
        bound_source_histogram=hist,
        method=method,
        warm_start_cost=warm_cost,
    )
    if recorder is not None:
        recorder.record_offline(
            result,
            instance,
            num_resources,
            wall_seconds=perf_counter() - solve_started,
        )
    return result


class _Frame:
    """One open node of the legacy iterative branch-and-bound."""

    __slots__ = (
        "key",
        "phase_cost",
        "cands",
        "idx",
        "best_cost",
        "best_cache",
        "pending2",
    )

    def __init__(self, key, phase_cost, cands, best_cache, pending2=()):
        self.key = key
        self.phase_cost = phase_cost
        #: ``None`` marks a fast-forward frame (nothing pending).
        #: Otherwise ``[reconfig_cost, candidate, after-or-None]`` rows
        #: sorted by reconfiguration cost; ``after`` is filled lazily.
        self.cands = cands
        self.idx = 0
        self.best_cost: int | None = None
        self.best_cache: CacheKey = best_cache
        #: Post-drop/arrival pending state (for lazy execution).
        self.pending2: PendingKey = pending2


def _solve_legacy(
    instance: Instance, m: int, max_states: int
) -> tuple[int, dict, int, int]:
    """The pre-RDS iterative branch-and-bound (suffix floors only).

    Kept verbatim as the baseline the offline bench measures RDS
    against; per-node incumbents, candidates sorted by reconfiguration
    cost, lazy child-state construction.
    """
    delta = instance.spec.reconfig_cost
    drop_cost = instance.spec.cost.drop_cost
    horizon = instance.horizon
    arrivals = _arrivals_by_round(instance)
    arrival_rounds = sorted(arrivals)
    future_by_color = _future_arrivals_by_color(arrivals)

    memo: dict[tuple[int, CacheKey, PendingKey], tuple[int, CacheKey, bool]] = {}
    expanded = 0
    pruned = 0

    def suffix_bound(start_round: int, cache: CacheKey, pending: PendingKey) -> int:
        per_color: dict[int, int] = {}
        for (color, _), count in pending:
            per_color[color] = per_color.get(color, 0) + count
        for color, (rounds, suffix) in future_by_color.items():
            i = bisect_right(rounds, start_round - 1)
            if i < len(rounds):
                per_color[color] = per_color.get(color, 0) + suffix[i]
        merged = [((color, 0), count) for color, count in per_color.items()]
        floor = pending_reconfig_floor(merged, set(cache), delta, drop_cost)
        if pending:
            floor = max(
                floor, pending_drop_floor(pending, start_round, m, drop_cost)
            )
        return floor

    def expand(key: tuple[int, CacheKey, PendingKey]) -> _Frame:
        nonlocal expanded
        expanded += 1
        if expanded > max_states:
            raise SearchSpaceExceeded(
                f"optimal_offline exceeded {max_states} states; the "
                f"instance is too large for exact search",
                nodes_expanded=expanded,
                best_incumbent=None,
                bound_source="reconfig_floor",
            )
        k, cache, pending = key
        dropped, pending2 = _drop_and_arrive(k, pending, arrivals)
        phase_cost = dropped * drop_cost
        if not pending2:
            return _Frame(key, phase_cost, None, cache)
        pending_colors = tuple(sorted({c for ((c, _), _) in pending2}))
        cands = [
            [_reconfig_count(cache, candidate) * delta, candidate, None]
            for candidate in _candidate_caches(cache, pending_colors, m)
        ]
        cands.sort(key=lambda entry: (entry[0], entry[1]))
        return _Frame(key, phase_cost, cands, cache, pending2)

    root = (0, (BLACK,) * m, ())
    stack = [expand(root)]
    ret: int | None = None  # value bubbling up from a finished child

    while stack:
        fr = stack[-1]
        k = fr.key[0]

        if fr.cands is None:
            # Fast-forward frame: value = phase drops + cost from the
            # next arrival round with the same cache.
            cache = fr.key[1]
            nxt = bisect_right(arrival_rounds, k)
            if nxt == len(arrival_rounds):
                next_k, value = horizon, 0
            elif ret is not None:
                next_k, value = arrival_rounds[nxt], ret
                ret = None
            else:
                next_k = arrival_rounds[nxt]
                child_key = (next_k, cache, ())
                entry = memo.get(child_key)
                if entry is None:
                    stack.append(expand(child_key))
                    continue
                value = entry[0]
            for j in range(k + 1, next_k):
                memo[(j, cache, ())] = (value, cache, True)
            memo[fr.key] = (fr.phase_cost + value, cache, True)
            ret = fr.phase_cost + value
            stack.pop()
            continue

        if ret is not None:
            # A child just finished: fold its value into the incumbent.
            row = fr.cands[fr.idx]
            total = fr.phase_cost + row[0] + ret
            ret = None
            if fr.best_cost is None or total < fr.best_cost:
                fr.best_cost = total
                fr.best_cache = row[1]
            fr.idx += 1

        descended = False
        while fr.idx < len(fr.cands):
            row = fr.cands[fr.idx]
            reconfig, candidate = row[0], row[1]
            have_incumbent = fr.best_cost is not None
            if have_incumbent and fr.phase_cost + reconfig >= fr.best_cost:
                # Candidates are sorted by reconfiguration cost and the
                # suffix cost is nonnegative: every remaining candidate
                # is dominated by the incumbent.
                pruned += len(fr.cands) - fr.idx
                fr.idx = len(fr.cands)
                break
            after = row[2]
            if after is None:
                after = row[2] = _execute_abstract(candidate, fr.pending2)
            k_next = fr.key[0]
            if k_next + 1 >= horizon:
                # Horizon extends past every deadline: leftovers drop.
                value = sum(count for _, count in after) * drop_cost
            else:
                child_key = (k_next + 1, candidate, after)
                entry = memo.get(child_key)
                if entry is None:
                    if have_incumbent and (
                        fr.phase_cost
                        + reconfig
                        + suffix_bound(k_next + 1, candidate, after)
                        >= fr.best_cost
                    ):
                        # Admissible bound: the candidate provably cannot
                        # beat the incumbent — cut its unexpanded subtree.
                        pruned += 1
                        fr.idx += 1
                        continue
                    stack.append(expand(child_key))
                    descended = True
                    break
                value = entry[0]
            total = fr.phase_cost + reconfig + value
            if fr.best_cost is None or total < fr.best_cost:
                fr.best_cost = total
                fr.best_cache = candidate
            fr.idx += 1
        if descended:
            continue

        assert fr.best_cost is not None
        memo[fr.key] = (fr.best_cost, fr.best_cache, True)
        ret = fr.best_cost
        stack.pop()

    assert ret is not None
    return ret, memo, expanded, pruned


def optimal_offline_exhaustive(
    instance: Instance,
    num_resources: int,
    *,
    max_states: int = 2_000_000,
) -> OptimalResult:
    """Original recursive memoized exhaustive search.

    Kept as the reference implementation: the property tests cross-check
    :func:`optimal_offline`'s Russian Doll answers against it.
    """
    if num_resources <= 0:
        raise ValueError("need at least one resource")
    m = num_resources
    delta = instance.spec.reconfig_cost
    drop_cost = instance.spec.cost.drop_cost
    horizon = instance.horizon
    arrivals = _arrivals_by_round(instance)

    memo: dict[tuple[int, CacheKey, PendingKey], tuple[int, CacheKey, bool]] = {}
    pruned = 0

    def solve(k: int, cache: CacheKey, pending: PendingKey) -> int:
        nonlocal pruned
        if k >= horizon:
            # The horizon extends past every deadline, so nothing pends.
            return sum(count for _, count in pending) * drop_cost
        state = (k, cache, pending)
        cached_entry = memo.get(state)
        if cached_entry is not None:
            return cached_entry[0]
        if len(memo) >= max_states:
            raise SearchSpaceExceeded(
                f"optimal_offline exceeded {max_states} states; the "
                f"instance is too large for exact search",
                nodes_expanded=len(memo),
                best_incumbent=None,
            )
        dropped, pending2 = _drop_and_arrive(k, pending, arrivals)
        phase_cost = dropped * drop_cost
        pending_colors = tuple(sorted({c for ((c, _), _) in pending2}))
        best_cost: int | None = None
        best_cache: CacheKey = cache
        for candidate in _candidate_caches(cache, pending_colors, m):
            reconfig = _reconfig_count(cache, candidate) * delta
            if best_cost is not None and phase_cost + reconfig >= best_cost:
                # Reconfiguration alone already exceeds the incumbent;
                # future cost is nonnegative, so prune.
                pruned += 1
                continue
            after = _execute_abstract(candidate, pending2)
            total = phase_cost + reconfig + solve(k + 1, candidate, after)
            if best_cost is None or total < best_cost:
                best_cost = total
                best_cache = candidate
        assert best_cost is not None
        memo[state] = (best_cost, best_cache, True)
        return best_cost

    import sys

    initial_cache: CacheKey = (BLACK,) * m
    old_limit = sys.getrecursionlimit()
    sys.setrecursionlimit(max(old_limit, horizon * 4 + 1000))
    try:
        total_cost = solve(0, initial_cache, ())
    finally:
        sys.setrecursionlimit(old_limit)

    schedule = _replay(instance, m, memo, arrivals)
    breakdown = schedule.cost(instance.sequence.jobs, instance.cost_model)
    if breakdown.total != total_cost:
        raise AssertionError(
            f"replayed schedule cost {breakdown.total} != search cost {total_cost}"
        )
    verify_schedule(instance, schedule).raise_if_invalid()
    return OptimalResult(
        total_cost, schedule, breakdown, len(memo), pruned, method="exhaustive"
    )


def _replay(
    instance: Instance,
    m: int,
    memo: dict[tuple[int, CacheKey, PendingKey], tuple[int, CacheKey, bool]],
    arrivals: dict[int, dict[tuple[int, int], int]],
) -> Schedule:
    """Rebuild the witness schedule by replaying memoized decisions.

    Tracks the abstract pre-phase state exactly as the solvers do, while
    maintaining concrete job queues and slot assignments to emit events.
    Only exact memo entries are trusted — on the optimal path every
    decision was solved to exactness, so an inexact entry here means the
    path was lost.
    """
    schedule = Schedule(m)
    cache: CacheKey = (BLACK,) * m
    pending: PendingKey = ()
    slot_colors: list[int] = [BLACK] * m

    # Concrete queues, FIFO by jid within a (color, deadline) class.
    queues: dict[tuple[int, int], list[Job]] = {}
    stacks: dict[tuple[int, int, int], list[Job]] = {}
    for job in sorted(instance.sequence, key=lambda j: j.jid, reverse=True):
        stacks.setdefault((job.arrival, job.color, job.deadline), []).append(job)

    for k in range(instance.horizon):
        entry = memo.get((k, cache, pending))
        if entry is None or not entry[2]:
            raise KeyError(f"optimal path lost at round {k}")
        new_cache = entry[1]

        # Drop + arrival phases (abstract and concrete in lockstep).
        _, pending2 = _drop_and_arrive(k, pending, arrivals)
        for key in [key for key in queues if key[1] <= k]:
            del queues[key]
        for (color, deadline), count in arrivals.get(k, {}).items():
            stack = stacks[(k, color, deadline)]
            queues.setdefault((color, deadline), []).extend(
                stack.pop() for _ in range(count)
            )

        # Reconfiguration phase: realize the multiset transition on the
        # physical slots — keep matching colors in place, recolor the rest.
        old_counts = Counter(cache)
        new_counts = Counter(new_cache)
        keep_budget = dict(old_counts & new_counts)
        active = [False] * m
        free_slots: list[int] = []
        for index, color in enumerate(slot_colors):
            if keep_budget.get(color, 0) > 0:
                keep_budget[color] -= 1
                active[index] = color != BLACK
            else:
                free_slots.append(index)
        for color, extra in sorted((new_counts - old_counts).items()):
            if color == BLACK:
                raise AssertionError("transitions must never add BLACK slots")
            for _ in range(extra):
                index = free_slots.pop(0)
                schedule.reconfigure(k, index, color)
                slot_colors[index] = color
                active[index] = True

        # Execution phase: EDF within each active slot's color. Slots
        # whose color left the abstract multiset stay physically colored
        # but voluntarily idle, matching the abstract accounting.
        for index in range(m):
            if not active[index]:
                continue
            color = slot_colors[index]
            candidates = [key for key in queues if key[0] == color]
            if not candidates:
                continue
            key = min(candidates, key=lambda key: key[1])
            job = queues[key].pop(0)
            if not queues[key]:
                del queues[key]
            schedule.execute(k, index, job)

        cache = new_cache
        pending = _execute_abstract(new_cache, pending2)
    return schedule
