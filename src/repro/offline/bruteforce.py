"""Brute-force offline optimum for micro instances.

A second, independent implementation of the offline optimum: exhaustive
enumeration of per-round configuration choices with *no* state merging,
memoization, or dominance pruning beyond a cost cutoff.  Exponentially
slower than :func:`repro.offline.optimal.optimal_offline`, but its
simplicity makes it a trustworthy oracle — the test suite cross-checks
the two on batches of tiny random instances.
"""

from __future__ import annotations

from itertools import combinations_with_replacement

from repro.core.instance import Instance
from repro.core.job import BLACK


def bruteforce_optimal_cost(
    instance: Instance,
    num_resources: int,
    *,
    max_rounds: int = 12,
    max_jobs: int = 16,
) -> int:
    """Exact optimal cost by exhaustive search (micro instances only)."""
    if instance.horizon > max_rounds:
        raise ValueError(
            f"bruteforce refuses horizons beyond {max_rounds} rounds"
        )
    if len(instance.sequence) > max_jobs:
        raise ValueError(f"bruteforce refuses more than {max_jobs} jobs")
    m = num_resources
    delta = instance.spec.reconfig_cost
    drop_unit = instance.spec.cost.drop_cost
    colors = tuple(sorted(instance.spec.delay_bounds))

    arrivals: dict[int, list[tuple[int, int]]] = {}
    for job in instance.sequence:
        arrivals.setdefault(job.arrival, []).append((job.color, job.deadline))

    # All full slot-color assignments (multisets over colors + BLACK).
    all_configs = [
        tuple(sorted(combo))
        for combo in combinations_with_replacement((BLACK, *colors), m)
    ]

    best = [float("inf")]

    def recolor_cost(old: tuple[int, ...], new: tuple[int, ...]) -> int | None:
        from collections import Counter

        old_counts, new_counts = Counter(old), Counter(new)
        if new_counts[BLACK] > old_counts[BLACK]:
            return None  # cannot recolor back to black
        return sum(
            max(0, new_counts[c] - old_counts.get(c, 0))
            for c in new_counts
            if c != BLACK
        )

    def explore(k: int, config: tuple[int, ...], pending: tuple[tuple[int, int], ...], cost: int) -> None:
        if cost >= best[0]:
            return
        if k >= instance.horizon:
            total = cost + drop_unit * len(pending)
            if total < best[0]:
                best[0] = total
            return
        # Drop phase.
        alive = tuple(p for p in pending if p[1] > k)
        cost_after_drop = cost + drop_unit * (len(pending) - len(alive))
        if cost_after_drop >= best[0]:
            return
        # Arrival phase.
        current = tuple(sorted(alive + tuple(arrivals.get(k, ()))))
        for new_config in all_configs:
            extra = recolor_cost(config, new_config)
            if extra is None:
                continue
            step_cost = cost_after_drop + extra * delta
            if step_cost >= best[0]:
                continue
            # Execution: each slot runs its color's earliest deadline.
            remaining = list(current)
            for slot_color in new_config:
                if slot_color == BLACK:
                    continue
                candidates = [
                    idx
                    for idx, (c, _) in enumerate(remaining)
                    if c == slot_color
                ]
                if candidates:
                    chosen = min(candidates, key=lambda idx: remaining[idx][1])
                    remaining.pop(chosen)
            explore(k + 1, new_config, tuple(remaining), step_cost)

    explore(0, ((BLACK,) * m), (), 0)
    return int(best[0])
