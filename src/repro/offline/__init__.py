"""Offline algorithms: the OFF side of every competitive ratio.

The paper's OFF is an *optimal offline algorithm* whose existence is
assumed; to measure ratios we need computable stand-ins on both sides:

* :mod:`repro.offline.optimal` — exact optimum by memoized search, for
  small instances (certifies the online algorithms' constants in tests);
* :mod:`repro.offline.lower_bounds` — certified combinatorial lower
  bounds on OFF (per-color, Par-EDF drops, capacity windows), so measured
  competitive ratios are *upper bounds* on the true ratio;
* :mod:`repro.offline.heuristic` — hindsight schedules upper-bounding
  OFF (used as the denominator in the adversarial experiments, where a
  small OFF makes the online ratio *larger*);
* :mod:`repro.offline.handcrafted` — the explicit OFF schedules of
  Appendices A and B, built event-by-event and feasibility-checked.
"""

from repro.offline.handcrafted import (
    appendix_a_offline_schedule,
    appendix_b_offline_schedule,
)
from repro.offline.lower_bounds import (
    ColorPhaseBound,
    IntervalPackingRelaxation,
    capacity_lower_bound,
    combined_lower_bound,
    par_edf_drop_lower_bound,
    per_color_lower_bound,
    warm_start_incumbent,
)
from repro.offline.optimal import (
    OFFLINE_METHODS,
    OptimalResult,
    SearchSpaceExceeded,
    optimal_offline,
    optimal_offline_exhaustive,
)
from repro.offline.heuristic import LookaheadPolicy, best_offline_heuristic

__all__ = [
    "appendix_a_offline_schedule",
    "appendix_b_offline_schedule",
    "capacity_lower_bound",
    "combined_lower_bound",
    "par_edf_drop_lower_bound",
    "per_color_lower_bound",
    "ColorPhaseBound",
    "IntervalPackingRelaxation",
    "warm_start_incumbent",
    "OFFLINE_METHODS",
    "OptimalResult",
    "SearchSpaceExceeded",
    "optimal_offline",
    "optimal_offline_exhaustive",
    "LookaheadPolicy",
    "best_offline_heuristic",
]
