"""The explicit offline schedules of Appendices A and B.

Both appendices exhibit an offline algorithm OFF with **one** resource
whose cost stays small while the online algorithm's cost explodes.  We
build those schedules event-by-event as :class:`~repro.core.schedule.Schedule`
objects; the test suite runs them through the shared feasibility verifier,
and the adversarial experiments use their cost as the (upper-bounded)
denominator of the measured competitive ratio.
"""

from __future__ import annotations

from repro.core.cost import CostBreakdown
from repro.core.instance import Instance
from repro.core.job import Job
from repro.core.schedule import Schedule
from repro.workloads.adversarial import AppendixAConstruction, AppendixBConstruction


def appendix_a_offline_schedule(
    construction: AppendixAConstruction, instance: Instance
) -> tuple[Schedule, CostBreakdown]:
    """OFF for Appendix A: cache the long-term color throughout.

    One reconfiguration at round 0, then one long-term job per round for
    ``2^k`` rounds executes the entire backlog; every short-term job is
    dropped.  Cost: ``Δ + 2^{k-j-1} n Δ``.
    """
    schedule = Schedule(1)
    long_color = construction.long_color
    schedule.reconfigure(0, 0, long_color)
    long_jobs = sorted(
        (job for job in instance.sequence if job.color == long_color),
        key=lambda job: job.jid,
    )
    for round_index, job in enumerate(long_jobs):
        schedule.execute(round_index, 0, job)
    cost = schedule.cost(instance.sequence.jobs, instance.cost_model)
    return schedule, cost


def appendix_b_offline_schedule(
    construction: AppendixBConstruction, instance: Instance
) -> tuple[Schedule, CostBreakdown]:
    """OFF for Appendix B: serve the short color, then each long color.

    The short color is cached for rounds ``[0, 2^{k-1})`` and each batch
    of ``Δ`` jobs is executed within its ``2^j`` block (``Δ < 2^j``).
    Then the color with delay bound ``2^{k+p}`` is cached for rounds
    ``[2^{k+p-1}, 2^{k+p})``, exactly long enough to execute its
    ``2^{k+p-1}`` jobs before their deadline.  No drops; reconfiguration
    cost ``(n/2 + 1) Δ``.
    """
    schedule = Schedule(1)
    short = construction.short_color
    schedule.reconfigure(0, 0, short)
    by_color: dict[int, list[Job]] = {}
    for job in instance.sequence:
        by_color.setdefault(job.color, []).append(job)
    for color_jobs in by_color.values():
        color_jobs.sort(key=lambda job: (job.arrival, job.jid))

    for job_offset, job in enumerate(by_color.get(short, [])):
        # The i-th job of a batch runs in the i-th round of its block.
        offset = job_offset % construction.delta
        schedule.execute(job.arrival + offset, 0, job)

    for p in range(construction.num_long_colors):
        color = construction.long_color(p)
        start = 1 << (construction.k + p - 1)
        schedule.reconfigure(start, 0, color)
        for offset, job in enumerate(by_color.get(color, [])):
            schedule.execute(start + offset, 0, job)

    cost = schedule.cost(instance.sequence.jobs, instance.cost_model)
    return schedule, cost
