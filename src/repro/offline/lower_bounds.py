"""Certified lower bounds on the optimal offline cost.

Instance-level bounds, each valid on its own; :func:`combined_lower_bound`
takes their maximum:

* **Per-color** (the argument of Lemma 3.1 / Corollary 3.3): for every
  color, OFF either configures it at least once (``>= Δ``) or drops all
  its jobs (``>= N_ℓ``), so ``OFF >= Σ_ℓ min(Δ, N_ℓ)``.
* **Par-EDF drops** (Lemma 3.7): preemptive EDF on an ``m``-wide super
  resource minimizes drops among all ``m``-resource schedules, so
  ``Drop(OFF) >= Drop(Par-EDF)`` and hence ``OFF >= Drop(Par-EDF)``.
* **Capacity windows**: for any window ``[a, b)``, jobs confined to the
  window (arrival ``>= a``, deadline ``<= b``) exceed the execution
  capacity ``m * (b - a) * speed`` by an amount OFF must drop.

The module also hosts the *search-state* bound layers used by the
Russian Doll branch-and-bound in :mod:`repro.offline.optimal`:
:func:`pending_drop_floor` and :func:`pending_reconfig_floor` (the
legacy suffix floors), :class:`IntervalPackingRelaxation` (a fractional
interval-packing relaxation of future execution capacity), and
:func:`warm_start_incumbent` (a feasible-schedule upper bound that
opens the search with a tight incumbent instead of infinity).

Measured competitive ratios computed against these bounds are upper
bounds on the true ratio — conservative in the direction that matters for
validating the theorems.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Iterable, Mapping

import numpy as np

from repro.algorithms.par_edf import run_par_edf
from repro.core.instance import Instance


def per_color_lower_bound(instance: Instance) -> int:
    """``Σ_ℓ min(Δ, N_ℓ)`` over colors with at least one job."""
    delta = instance.spec.reconfig_cost
    drop = instance.spec.cost.drop_cost
    return sum(
        min(delta, count * drop)
        for count in instance.sequence.count_by_color().values()
    )


def par_edf_drop_lower_bound(instance: Instance, num_resources: int) -> int:
    """Drops of Par-EDF with ``num_resources``: a lower bound on OFF's drops."""
    return run_par_edf(instance, num_resources).num_drops * instance.spec.cost.drop_cost


def capacity_lower_bound(
    instance: Instance,
    num_resources: int,
    *,
    speed: int = 1,
    max_endpoints: int = 512,
) -> int:
    """Max over windows of (confined jobs - capacity), vectorized.

    Endpoint candidates are the distinct arrivals (window starts) and
    distinct deadlines (window ends); when there are more than
    ``max_endpoints`` of either, an even subsample is used (still a valid
    lower bound, possibly looser).
    """
    jobs = instance.sequence.jobs
    if not jobs:
        return 0
    arrivals = np.fromiter((j.arrival for j in jobs), dtype=np.int64, count=len(jobs))
    deadlines = np.fromiter((j.deadline for j in jobs), dtype=np.int64, count=len(jobs))

    starts = np.unique(arrivals)
    ends = np.unique(deadlines)
    if starts.shape[0] > max_endpoints:
        starts = starts[:: max(1, starts.shape[0] // max_endpoints)]
    if ends.shape[0] > max_endpoints:
        ends = ends[:: max(1, ends.shape[0] // max_endpoints)]

    capacity_per_round = num_resources * speed
    best = 0
    # For each window end b, count jobs with deadline <= b per arrival
    # bucket; the suffix sum over buckets >= a gives the confined count.
    order = np.argsort(deadlines, kind="stable")
    sorted_deadlines = deadlines[order]
    sorted_arrivals = arrivals[order]
    bucket_of = np.searchsorted(starts, sorted_arrivals, side="right") - 1
    for b in ends.tolist():
        upto = int(np.searchsorted(sorted_deadlines, b, side="right"))
        if upto == 0:
            continue
        counts = np.bincount(
            bucket_of[:upto][bucket_of[:upto] >= 0], minlength=starts.shape[0]
        )
        confined_from = np.cumsum(counts[::-1])[::-1]
        slack = confined_from - capacity_per_round * np.maximum(b - starts, 0)
        window_best = int(slack.max(initial=0))
        if window_best > best:
            best = window_best
    return best * instance.spec.cost.drop_cost


def pending_drop_floor(
    pending,
    start_round: int,
    capacity_per_round: int,
    drop_cost: int = 1,
) -> int:
    """Capacity floor on drops among ``pending`` jobs from ``start_round``.

    ``pending`` iterates ``((color, deadline), count)`` pairs.  Jobs with
    deadline ``d`` can only execute during rounds ``[start_round, d)`` —
    at most ``capacity_per_round * (d - start_round)`` of them in total —
    so any excess must be dropped.  Used as an admissible suffix bound by
    the branch-and-bound offline search: future arrivals can only raise
    the optimum, so a floor on the pending-only subproblem is valid.
    """
    per_deadline: dict[int, int] = {}
    for (_, deadline), count in pending:
        per_deadline[deadline] = per_deadline.get(deadline, 0) + count
    best = 0
    confined = 0
    for deadline in sorted(per_deadline):
        confined += per_deadline[deadline]
        slack = confined - capacity_per_round * max(0, deadline - start_round)
        if slack > best:
            best = slack
    return best * drop_cost


def pending_reconfig_floor(
    pending,
    cached_colors,
    delta: int,
    drop_cost: int = 1,
) -> int:
    """Per-color floor over pending colors outside ``cached_colors``.

    The state-level analogue of :func:`per_color_lower_bound`: each
    pending color not currently cached forces the schedule to either
    recolor a slot to it (``>= Δ``) or drop all of its pending jobs.
    The charges are disjoint across colors, so the sum is admissible.
    """
    per_color: dict[int, int] = {}
    for (color, _), count in pending:
        per_color[color] = per_color.get(color, 0) + count
    return sum(
        min(delta, count * drop_cost)
        for color, count in per_color.items()
        if color not in cached_colors
    )


class IntervalPackingRelaxation:
    """Fractional interval-packing relaxation of future execution capacity.

    Drop the colors, the reconfiguration charges, and the integrality of
    slot assignments: what remains is a transportation LP — each unit job
    with release ``r`` and deadline ``d`` may be (fractionally) assigned
    to rounds in ``[r, d)``, with at most ``capacity_per_round`` units
    per round.  By LP duality (the constraint matrix is an interval
    matrix, hence totally unimodular) the minimum number of dropped
    units equals the maximum over windows ``[a, b)`` of

        confined(a, b) - capacity_per_round * (b - a)

    where ``confined`` counts jobs with ``release >= a`` and
    ``deadline <= b``.  That maximum is what :meth:`floor` returns (times
    ``drop_cost``) — an admissible lower bound on the cost-to-go of any
    search state, covering the carried pending jobs *and* every future
    arrival jointly.  It is the fallback bound of the Russian Doll
    search: where truncated suffix solves leave no exact table entry,
    the relaxation still prices capacity overload.

    The future side is precomputed once per instance (``O(A * D)`` for
    ``A`` arrival rounds and ``D`` distinct deadlines); each
    :meth:`floor` call is then ``O((D + |pending|) log D)``.
    """

    def __init__(
        self,
        arrivals: Mapping[int, Mapping[tuple[int, int], int]],
        capacity_per_round: int,
        drop_cost: int = 1,
    ) -> None:
        self.capacity = capacity_per_round
        self.drop_cost = drop_cost
        self.rounds = sorted(arrivals)
        deadlines: set[int] = set()
        for batch in arrivals.values():
            for (_, deadline) in batch:
                deadlines.add(deadline)
        self.deadlines = sorted(deadlines)
        num_rounds = len(self.rounds)
        num_deadlines = len(self.deadlines)
        round_index = {a: i for i, a in enumerate(self.rounds)}
        deadline_index = {d: j for j, d in enumerate(self.deadlines)}
        # counts[i][j]: jobs arriving at rounds[i] with deadline deadlines[j].
        counts = [[0] * num_deadlines for _ in range(num_rounds)]
        for a, batch in arrivals.items():
            row = counts[round_index[a]]
            for (_, deadline), count in batch.items():
                row[deadline_index[deadline]] += count
        # confined[i][j]: jobs with arrival >= rounds[i], deadline <= deadlines[j].
        confined = [[0] * num_deadlines for _ in range(num_rounds)]
        for i in range(num_rounds - 1, -1, -1):
            acc = 0
            below = confined[i + 1] if i + 1 < num_rounds else None
            for j in range(num_deadlines):
                acc += counts[i][j]
                confined[i][j] = acc + (below[j] if below is not None else 0)
        self._confined = confined
        # best_from[i]: best future-only window slack over starts >= rounds[i].
        best_from = [0] * (num_rounds + 1)
        for i in range(num_rounds - 1, -1, -1):
            best_here = 0
            a = self.rounds[i]
            for j in range(num_deadlines):
                slack = confined[i][j] - capacity_per_round * max(
                    0, self.deadlines[j] - a
                )
                if slack > best_here:
                    best_here = slack
            best_from[i] = max(best_here, best_from[i + 1])
        self._best_from = best_from

    def _future_confined(self, i: int, b: int) -> int:
        """Jobs with arrival >= rounds[i] and deadline <= b."""
        if i >= len(self.rounds):
            return 0
        j = bisect_right(self.deadlines, b) - 1
        return self._confined[i][j] if j >= 0 else 0

    def floor(
        self,
        start_round: int,
        pending: Iterable[tuple[tuple[int, int], int]] = (),
    ) -> int:
        """Admissible drop floor from ``start_round`` with ``pending`` carried.

        ``pending`` iterates ``((color, deadline), count)`` pairs released
        at ``start_round``.  The maximum runs over windows starting at
        ``start_round`` (confining pending plus future jobs) and over
        later future-only windows (precomputed).
        """
        i0 = bisect_left(self.rounds, start_round)
        best = self._best_from[i0]
        per_deadline: dict[int, int] = {}
        for (_, deadline), count in pending:
            per_deadline[deadline] = per_deadline.get(deadline, 0) + count
        ends = sorted(
            set(per_deadline)
            | {d for d in self.deadlines if d >= start_round}
        )
        carried = 0
        for b in ends:
            carried += per_deadline.get(b, 0)
            slack = (
                carried
                + self._future_confined(i0, b)
                - self.capacity * max(0, b - start_round)
            )
            if slack > best:
                best = slack
        return best * self.drop_cost


class ColorPhaseBound:
    """Paging-style phase floor on reconfigure-or-drop cost over time.

    The per-color reconfigure floor charges each color *once* over the
    whole suffix and the packing relaxation prices only capacity drops,
    so on reconfiguration-dominated instances neither grows with the
    horizon.  This layer does: partition ``[start, horizon)`` into
    disjoint intervals and charge each interval for the colors it
    *encloses* (arrival and effective-deadline window both inside the
    interval).  A schedule that recolors ``j`` slot-units during an
    interval holds at most ``m + j`` distinct colors there, so with
    ``C`` enclosed colors it leaves at least ``C - m - j`` of them
    unconfigured for the entire interval and drops all their enclosed
    jobs.  The interval's certified charge is therefore

        min over j >= 0 of  j·Δ + drop · (sum of the C - m - j
                                          smallest enclosed color counts)

    Intervals are disjoint in both time and jobs, so the charges add,
    and the backward DP ``P[t] = max(P[t+1], max_e charge(t, e) +
    P[e+1])`` picks the partition that certifies the most — a floor that
    grows linearly with the horizon, exactly like the true cost.

    For a concrete search state the first interval is *cache-aware*: the
    configuration entering ``start`` is known, so only colors outside it
    count and a single un-cached enclosed demand already forces a charge
    (no need for ``m + 1`` distinct colors).  Two first-interval
    candidates are tried — the earliest un-cached enclosed demand
    (fastest handoff to the generic DP) and the interval enclosing every
    un-cached pending job (the full reconfigure-or-drop charge on the
    carried backlog) — and the best is chained onto ``P``.

    The generic DP is precomputed per instance in ``O(H · (H + J·C))``;
    each :meth:`floor` call is then ``O(|pending| + colors · log J)``.
    """

    def __init__(
        self,
        arrivals: Mapping[int, Mapping[tuple[int, int], int]],
        capacity_slots: int,
        horizon: int,
        reconfig_cost: int,
        drop_cost: int = 1,
    ) -> None:
        self.horizon = horizon
        self.m = capacity_slots
        self.delta = reconfig_cost
        self.drop_cost = drop_cost
        # (arrival, enclosure end, color) -> job count; a job with
        # deadline d is executable in rounds [arrival, d) and force-dropped
        # at the horizon, so its enclosure ends at min(d, horizon) - 1.
        demands: dict[tuple[int, int, int], int] = {}
        for a, batch in arrivals.items():
            for (color, deadline), count in batch.items():
                e = min(deadline, horizon) - 1
                if e >= a:
                    key = (a, e, color)
                    demands[key] = demands.get(key, 0) + count
        by_end = sorted(
            ((e, a, color, count) for (a, e, color), count in demands.items())
        )
        # P[t]: best certified charge packable into [t, horizon), by a
        # backward DP whose inner sweep grows the first interval [t, e]
        # over distinct enclosure ends, pricing each stop with the
        # j-recoloring exchange above.
        self._best_from = [0] * (horizon + 2)
        for t in range(horizon - 1, -1, -1):
            best = self._best_from[t + 1]
            counts: dict[int, int] = {}
            i = 0
            n = len(by_end)
            while i < n:
                e = by_end[i][0]
                while i < n and by_end[i][0] == e:
                    _, a, color, count = by_end[i]
                    if a >= t:
                        counts[color] = counts.get(color, 0) + count
                    i += 1
                if len(counts) > capacity_slots:
                    charge = self._exchange_charge(sorted(counts.values()))
                    if charge:
                        cand = charge + self._best_from[e + 1]
                        if cand > best:
                            best = cand
            self._best_from[t] = best
        # Per-color (arrivals ascending, suffix-min of enclosure ends) for
        # the cache-aware first interval.
        per_color: dict[int, list[tuple[int, int]]] = {}
        for (a, e, color) in demands:
            per_color.setdefault(color, []).append((a, e))
        self._color_arrivals: dict[int, tuple[list[int], list[int]]] = {}
        for color, pairs in per_color.items():
            pairs.sort()
            suffix_min = [0] * len(pairs)
            acc = horizon
            for i in range(len(pairs) - 1, -1, -1):
                acc = min(acc, pairs[i][1])
                suffix_min[i] = acc
            self._color_arrivals[color] = ([a for a, _ in pairs], suffix_min)

    def _exchange_charge(self, sorted_counts: list[int], covered: int | None = None) -> int:
        """``min_j j·Δ + drop · (sum of the C - covered - j smallest counts)``.

        ``covered`` defaults to ``m`` (a fixed configuration); the
        cache-aware first interval passes 0 because colors already in
        the cache were excluded from ``sorted_counts`` up front.
        """
        free = self.m if covered is None else covered
        excess = len(sorted_counts) - free
        if excess <= 0:
            return 0
        dropped = 0
        best = excess * self.delta  # j == excess: recolor everything in.
        for idx in range(excess):
            dropped += sorted_counts[idx]
            # Drop the idx+1 smallest colors, recolor the rest in.
            cand = dropped * self.drop_cost + (excess - idx - 1) * self.delta
            if cand < best:
                best = cand
        return best

    def _earliest_enclosed(self, color: int, start: int) -> int:
        """Earliest enclosure end of a ``color`` demand arriving >= start."""
        entry = self._color_arrivals.get(color)
        if entry is None:
            return self.horizon
        starts, suffix_min = entry
        i = bisect_left(starts, start)
        return suffix_min[i] if i < len(starts) else self.horizon

    def floor(
        self,
        start_round: int,
        cache_colors: Iterable[int] = (),
        pending: Iterable[tuple[tuple[int, int], int]] = (),
    ) -> int:
        """Admissible phase floor from ``start_round`` for a search state.

        ``cache_colors`` is the configuration entering the round (a
        ``"*"`` wildcard disables the cache-aware first interval);
        ``pending`` iterates ``((color, deadline), count)`` pairs carried
        into the round, which extend the first interval's demand set.
        """
        if start_round >= self.horizon:
            return 0
        best = self._best_from[start_round]
        cached = set(cache_colors)
        if "*" in cached:
            return best
        unit = min(self.delta, self.drop_cost)
        # Candidate A: hand off to the generic DP at the earliest
        # un-cached enclosed demand (one charge, fastest restart).
        first_end = self.horizon
        uncached_pending: dict[int, tuple[int, int]] = {}  # color -> (count, max end)
        for (color, deadline), count in pending:
            if color in cached:
                continue
            e = min(deadline, self.horizon) - 1
            if e < start_round:
                continue
            if e < first_end:
                first_end = e
            prev = uncached_pending.get(color)
            uncached_pending[color] = (
                count if prev is None else prev[0] + count,
                e if prev is None else max(prev[1], e),
            )
        for color in self._color_arrivals:
            if color in cached:
                continue
            e = self._earliest_enclosed(color, start_round)
            if e < first_end:
                first_end = e
        if unit and first_end < self.horizon:
            cand = unit + self._best_from[first_end + 1]
            if cand > best:
                best = cand
        # Candidate B: enclose the whole un-cached backlog and charge the
        # full reconfigure-or-drop exchange on it.
        if uncached_pending:
            last_end = max(e for _, e in uncached_pending.values())
            charge = self._exchange_charge(
                sorted(c for c, _ in uncached_pending.values()), covered=0
            )
            cand = charge + self._best_from[last_end + 1]
            if cand > best:
                best = cand
        return best


def warm_start_incumbent(
    instance: Instance,
    num_resources: int,
    *,
    engine: str | None = None,
) -> int:
    """Feasible-schedule upper bound on the offline optimum.

    Batched instances replay ΔLRU-EDF through the fast engine
    (``record="costs"`` skips schedule construction entirely; pass
    ``engine="vectorized"`` for the numpy backend); general instances
    replay the greedy-pending and short-window lookahead policies through
    the general engine and keep the cheaper.  Every replayed schedule is
    feasible, so its cost upper-bounds the optimum — the branch-and-bound
    opens with this incumbent instead of infinity, which lets the
    admissible bounds cut from the first node.
    """
    if len(instance.sequence) == 0:
        return 0
    if instance.spec.batch_mode.is_batched:
        from repro.algorithms.dlru_edf import DeltaLRUEDF
        from repro.simulation.engine import simulate

        # copies=1: the replay must run on exactly the search's
        # ``num_resources`` — augmented copies would undercut OPT(m) and
        # break the incumbent's upper-bound property.
        return simulate(
            instance,
            DeltaLRUEDF(),
            num_resources,
            copies=1,
            record="costs",
            engine=engine,
        ).total_cost
    from repro.algorithms.greedy import GreedyPendingPolicy
    from repro.offline.heuristic import LookaheadPolicy
    from repro.simulation.general import simulate_general

    return min(
        simulate_general(
            instance, GreedyPendingPolicy(), num_resources, record="costs"
        ).total_cost,
        simulate_general(
            instance, LookaheadPolicy(window=16), num_resources, record="costs"
        ).total_cost,
    )


def combined_lower_bound(
    instance: Instance,
    num_resources: int,
    *,
    speed: int = 1,
    use_capacity: bool = True,
) -> int:
    """Maximum of the three certified lower bounds."""
    best = max(
        per_color_lower_bound(instance),
        par_edf_drop_lower_bound(instance, num_resources * speed),
    )
    if use_capacity:
        best = max(
            best, capacity_lower_bound(instance, num_resources, speed=speed)
        )
    return best
