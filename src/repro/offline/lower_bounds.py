"""Certified lower bounds on the optimal offline cost.

Three bounds, each valid on its own; :func:`combined_lower_bound` takes
their maximum:

* **Per-color** (the argument of Lemma 3.1 / Corollary 3.3): for every
  color, OFF either configures it at least once (``>= Δ``) or drops all
  its jobs (``>= N_ℓ``), so ``OFF >= Σ_ℓ min(Δ, N_ℓ)``.
* **Par-EDF drops** (Lemma 3.7): preemptive EDF on an ``m``-wide super
  resource minimizes drops among all ``m``-resource schedules, so
  ``Drop(OFF) >= Drop(Par-EDF)`` and hence ``OFF >= Drop(Par-EDF)``.
* **Capacity windows**: for any window ``[a, b)``, jobs confined to the
  window (arrival ``>= a``, deadline ``<= b``) exceed the execution
  capacity ``m * (b - a) * speed`` by an amount OFF must drop.

Measured competitive ratios computed against these bounds are upper
bounds on the true ratio — conservative in the direction that matters for
validating the theorems.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.par_edf import run_par_edf
from repro.core.instance import Instance


def per_color_lower_bound(instance: Instance) -> int:
    """``Σ_ℓ min(Δ, N_ℓ)`` over colors with at least one job."""
    delta = instance.spec.reconfig_cost
    drop = instance.spec.cost.drop_cost
    return sum(
        min(delta, count * drop)
        for count in instance.sequence.count_by_color().values()
    )


def par_edf_drop_lower_bound(instance: Instance, num_resources: int) -> int:
    """Drops of Par-EDF with ``num_resources``: a lower bound on OFF's drops."""
    return run_par_edf(instance, num_resources).num_drops * instance.spec.cost.drop_cost


def capacity_lower_bound(
    instance: Instance,
    num_resources: int,
    *,
    speed: int = 1,
    max_endpoints: int = 512,
) -> int:
    """Max over windows of (confined jobs - capacity), vectorized.

    Endpoint candidates are the distinct arrivals (window starts) and
    distinct deadlines (window ends); when there are more than
    ``max_endpoints`` of either, an even subsample is used (still a valid
    lower bound, possibly looser).
    """
    jobs = instance.sequence.jobs
    if not jobs:
        return 0
    arrivals = np.fromiter((j.arrival for j in jobs), dtype=np.int64, count=len(jobs))
    deadlines = np.fromiter((j.deadline for j in jobs), dtype=np.int64, count=len(jobs))

    starts = np.unique(arrivals)
    ends = np.unique(deadlines)
    if starts.shape[0] > max_endpoints:
        starts = starts[:: max(1, starts.shape[0] // max_endpoints)]
    if ends.shape[0] > max_endpoints:
        ends = ends[:: max(1, ends.shape[0] // max_endpoints)]

    capacity_per_round = num_resources * speed
    best = 0
    # For each window end b, count jobs with deadline <= b per arrival
    # bucket; the suffix sum over buckets >= a gives the confined count.
    order = np.argsort(deadlines, kind="stable")
    sorted_deadlines = deadlines[order]
    sorted_arrivals = arrivals[order]
    bucket_of = np.searchsorted(starts, sorted_arrivals, side="right") - 1
    for b in ends.tolist():
        upto = int(np.searchsorted(sorted_deadlines, b, side="right"))
        if upto == 0:
            continue
        counts = np.bincount(
            bucket_of[:upto][bucket_of[:upto] >= 0], minlength=starts.shape[0]
        )
        confined_from = np.cumsum(counts[::-1])[::-1]
        slack = confined_from - capacity_per_round * np.maximum(b - starts, 0)
        window_best = int(slack.max(initial=0))
        if window_best > best:
            best = window_best
    return best * instance.spec.cost.drop_cost


def pending_drop_floor(
    pending,
    start_round: int,
    capacity_per_round: int,
    drop_cost: int = 1,
) -> int:
    """Capacity floor on drops among ``pending`` jobs from ``start_round``.

    ``pending`` iterates ``((color, deadline), count)`` pairs.  Jobs with
    deadline ``d`` can only execute during rounds ``[start_round, d)`` —
    at most ``capacity_per_round * (d - start_round)`` of them in total —
    so any excess must be dropped.  Used as an admissible suffix bound by
    the branch-and-bound offline search: future arrivals can only raise
    the optimum, so a floor on the pending-only subproblem is valid.
    """
    per_deadline: dict[int, int] = {}
    for (_, deadline), count in pending:
        per_deadline[deadline] = per_deadline.get(deadline, 0) + count
    best = 0
    confined = 0
    for deadline in sorted(per_deadline):
        confined += per_deadline[deadline]
        slack = confined - capacity_per_round * max(0, deadline - start_round)
        if slack > best:
            best = slack
    return best * drop_cost


def pending_reconfig_floor(
    pending,
    cached_colors,
    delta: int,
    drop_cost: int = 1,
) -> int:
    """Per-color floor over pending colors outside ``cached_colors``.

    The state-level analogue of :func:`per_color_lower_bound`: each
    pending color not currently cached forces the schedule to either
    recolor a slot to it (``>= Δ``) or drop all of its pending jobs.
    The charges are disjoint across colors, so the sum is admissible.
    """
    per_color: dict[int, int] = {}
    for (color, _), count in pending:
        per_color[color] = per_color.get(color, 0) + count
    return sum(
        min(delta, count * drop_cost)
        for color, count in per_color.items()
        if color not in cached_colors
    )


def combined_lower_bound(
    instance: Instance,
    num_resources: int,
    *,
    speed: int = 1,
    use_capacity: bool = True,
) -> int:
    """Maximum of the three certified lower bounds."""
    best = max(
        per_color_lower_bound(instance),
        par_edf_drop_lower_bound(instance, num_resources * speed),
    )
    if use_capacity:
        best = max(
            best, capacity_lower_bound(instance, num_resources, speed=speed)
        )
    return best
