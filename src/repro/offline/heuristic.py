"""Hindsight (offline) heuristics: feasible schedules upper-bounding OFF.

These are *valid schedules*, so their costs are upper bounds on the
optimal offline cost.  The adversarial experiments use them as
denominators (a smaller denominator makes the online ratio larger, so the
measured growth is conservative), and the tests use them to sandwich the
exact optimum: ``lower_bound <= optimal <= heuristic``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.algorithms.greedy import GreedyPendingPolicy
from repro.algorithms.static import StaticPartitionPolicy
from repro.core.instance import Instance
from repro.simulation.engine import RunResult
from repro.simulation.general import GeneralEngine, GeneralPolicy, simulate_general


class LookaheadPolicy(GeneralPolicy):
    """Greedy with a future window: an explicitly offline policy.

    At each round the policy scores every color by the work available in
    the next ``window`` rounds (current backlog plus *future arrivals*,
    read straight from the instance — legal offline) and keeps the
    top-capacity scorers cached, swapping only when a challenger's score
    beats the victim's by ``hysteresis * Δ``.
    """

    name = "offline-lookahead"

    def __init__(self, window: int = 64, hysteresis: float = 1.0) -> None:
        if window <= 0:
            raise ValueError("window must be positive")
        if hysteresis < 0:
            raise ValueError("hysteresis must be nonnegative")
        self.window = window
        self.hysteresis = hysteresis
        self._future: dict[int, list[int]] | None = None

    def setup(self, engine: GeneralEngine) -> None:
        # Precompute per-color cumulative arrival counts so the per-round
        # window score is two array lookups.
        horizon = engine.instance.horizon
        cumulative: dict[int, list[int]] = {
            color: [0] * (horizon + 1)
            for color in engine.instance.spec.delay_bounds
        }
        for job in engine.instance.sequence:
            cumulative[job.color][job.arrival + 1] += 1
        for series in cumulative.values():
            for i in range(1, horizon + 1):
                series[i] += series[i - 1]
        self._future = cumulative

    def _score(self, engine: GeneralEngine, color: int) -> int:
        assert self._future is not None
        k = engine.round_index
        horizon = engine.instance.horizon
        end = min(horizon, k + self.window)
        upcoming = self._future[color][end] - self._future[color][min(k + 1, horizon)]
        return engine.pending_count(color) + upcoming

    def reconfigure(self, engine: GeneralEngine) -> None:
        margin = self.hysteresis * engine.delta
        scores = {
            color: self._score(engine, color)
            for color in engine.instance.spec.delay_bounds
        }
        challengers = sorted(
            (c for c in scores if c not in engine.cache and scores[c] > 0),
            key=lambda c: (-scores[c], c),
        )
        for color in challengers:
            if not engine.cache.is_full():
                engine.cache_insert(color, section="lookahead")
                continue
            victim = min(
                engine.cache.cached_colors(), key=lambda c: (scores[c], c)
            )
            if scores[color] >= scores[victim] + margin:
                engine.cache_evict(victim)
                engine.cache_insert(color, section="lookahead")
            else:
                break


@dataclass(frozen=True)
class HeuristicOutcome:
    """Best heuristic schedule found and the candidates considered."""

    best: RunResult
    candidates: tuple[tuple[str, int], ...]

    @property
    def cost(self) -> int:
        return self.best.total_cost


def best_offline_heuristic(
    instance: Instance,
    num_resources: int,
    *,
    windows: tuple[int, ...] = (16, 64, 256),
    hysteresis_values: tuple[float, ...] = (0.5, 1.0, 2.0),
) -> HeuristicOutcome:
    """Run a small portfolio of hindsight policies; return the cheapest.

    The portfolio: lookahead greedy over a grid of windows and
    hysteresis values, plain (online) greedy, and a static partition
    weighted by total per-color demand.
    """
    candidates: list[tuple[str, RunResult]] = []
    for window in windows:
        for hysteresis in hysteresis_values:
            policy = LookaheadPolicy(window, hysteresis)
            label = f"lookahead(w={window},h={hysteresis})"
            candidates.append(
                (label, simulate_general(instance, policy, num_resources))
            )
    candidates.append(
        ("greedy", simulate_general(instance, GreedyPendingPolicy(), num_resources))
    )
    demand = instance.sequence.count_by_color()
    if demand:
        static = StaticPartitionPolicy(weights={c: float(n) for c, n in demand.items()})
        candidates.append(
            ("static-demand", simulate_general(instance, static, num_resources))
        )
    best_label, best = min(candidates, key=lambda pair: pair[1].total_cost)
    summary = tuple((label, run.total_cost) for label, run in candidates)
    outcome = HeuristicOutcome(best, summary)
    return outcome
