"""Unit jobs and the color domain.

The paper's jobs are *unit* jobs: executing one occupies one resource for
one execution phase.  A job is characterized by a non-black color, a
nonnegative integer arrival round, and a positive integer delay bound; its
deadline is ``arrival + delay_bound`` (Section 2).  A job may be executed in
the execution phase of any round ``r`` with ``arrival <= r < deadline``;
in the drop phase of round ``deadline`` it is dropped at unit cost.

Colors are plain nonnegative integers.  ``BLACK`` is the reserved sentinel
color that every resource starts configured to; no job may be black.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import count
from typing import Iterator

#: Sentinel color of a freshly provisioned (never reconfigured) resource.
#: Jobs must never carry this color.
BLACK: int = -1


@dataclass(frozen=True, slots=True, order=True)
class Job:
    """A unit job.

    Ordering is lexicographic on ``(arrival, color, jid)`` which gives a
    stable, deterministic order for jobs arriving in the same round.

    Attributes
    ----------
    arrival:
        Round in which the job arrives (arrival phase of that round).
    color:
        Nonnegative integer color; the job can only run on a resource
        configured to this color.
    delay_bound:
        Positive integer ``D``; the job's deadline is ``arrival + D``.
    jid:
        Unique identifier within a request sequence.  Used to match
        executions to jobs and to keep ordering deterministic.
    """

    arrival: int
    color: int
    delay_bound: int
    jid: int

    def __post_init__(self) -> None:
        if self.color == BLACK:
            raise ValueError("jobs cannot be colored BLACK")
        if self.color < 0:
            raise ValueError(f"color must be nonnegative, got {self.color}")
        if self.arrival < 0:
            raise ValueError(f"arrival must be nonnegative, got {self.arrival}")
        if self.delay_bound <= 0:
            raise ValueError(
                f"delay bound must be a positive integer, got {self.delay_bound}"
            )

    @property
    def deadline(self) -> int:
        """First round in which the job is no longer executable.

        The job may be executed in rounds ``arrival .. deadline - 1``
        inclusive and is dropped in the drop phase of round ``deadline``.
        """
        return self.arrival + self.delay_bound

    def executable_in(self, round_index: int) -> bool:
        """Whether the job may run in the execution phase of ``round_index``."""
        return self.arrival <= round_index < self.deadline

    def with_color(self, color: int) -> "Job":
        """Copy of this job recolored to ``color`` (used by reductions)."""
        return Job(self.arrival, color, self.delay_bound, self.jid)

    def with_arrival(self, arrival: int, delay_bound: int | None = None) -> "Job":
        """Copy of this job re-timed (used by the VarBatch reduction)."""
        return Job(
            arrival,
            self.color,
            self.delay_bound if delay_bound is None else delay_bound,
            self.jid,
        )


class JobFactory:
    """Mints jobs with sequentially unique ids.

    Workload generators use one factory per request sequence so that job
    ids are dense, deterministic, and collision-free.
    """

    def __init__(self, start: int = 0) -> None:
        self._ids = count(start)

    def make(self, arrival: int, color: int, delay_bound: int) -> Job:
        return Job(arrival, color, delay_bound, next(self._ids))

    def batch(self, arrival: int, color: int, delay_bound: int, n: int) -> list[Job]:
        """Mint ``n`` identical-shape jobs arriving together."""
        if n < 0:
            raise ValueError(f"batch size must be nonnegative, got {n}")
        return [self.make(arrival, color, delay_bound) for _ in range(n)]


def jobs_by_round(jobs: list[Job]) -> dict[int, list[Job]]:
    """Group jobs by arrival round, preserving deterministic order."""
    grouped: dict[int, list[Job]] = {}
    for job in sorted(jobs):
        grouped.setdefault(job.arrival, []).append(job)
    return grouped


def iter_colors(jobs: list[Job]) -> Iterator[int]:
    """Distinct colors appearing in ``jobs``, in ascending order."""
    return iter(sorted({job.color for job in jobs}))
