"""Cost model and cost accounting (Section 2, Section 3.2).

The paper's objective is ``total = Delta * #reconfigurations + #drops``
(unit drop cost).  The analysis of Section 3.2 additionally splits the drop
cost of ΔLRU-EDF into *eligible* and *ineligible* portions; the breakdown
here carries that split, plus per-color attribution used by the lower-bound
and credit-audit machinery.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field


@dataclass(frozen=True, slots=True)
class CostModel:
    """The ``[Δ | 1 | · | ·]`` cost parameters.

    Attributes
    ----------
    reconfig_cost:
        ``Δ``: cost of reconfiguring a single resource to a new color.
        The paper assumes a positive integer.
    drop_cost:
        Cost of dropping one job.  Fixed to 1 in this paper's variant but
        kept as a parameter so baselines and the companion variant (variable
        drop costs) remain expressible.
    """

    reconfig_cost: int
    drop_cost: int = 1

    def __post_init__(self) -> None:
        if self.reconfig_cost <= 0:
            raise ValueError(
                f"reconfiguration cost Δ must be positive, got {self.reconfig_cost}"
            )
        if self.drop_cost <= 0:
            raise ValueError(f"drop cost must be positive, got {self.drop_cost}")

    def total(self, num_reconfigs: int, num_drops: int) -> int:
        """Total cost of a schedule with the given event counts."""
        return self.reconfig_cost * num_reconfigs + self.drop_cost * num_drops


@dataclass(slots=True)
class CostBreakdown:
    """Mutable accumulator for the cost of one run.

    Tracks the reconfiguration/drop split, the eligible/ineligible drop
    split of Section 3.2, and per-color attributions.  The eligible split
    is only meaningful for runs of the Section 3 engine; for other
    algorithms all drops are recorded as eligible.
    """

    model: CostModel
    num_reconfigs: int = 0
    num_drops: int = 0
    num_eligible_drops: int = 0
    num_ineligible_drops: int = 0
    reconfigs_by_color: Counter = field(default_factory=Counter)
    drops_by_color: Counter = field(default_factory=Counter)
    executions: int = 0
    executions_by_color: Counter = field(default_factory=Counter)

    def record_reconfig(self, color: int, count: int = 1) -> None:
        """Record ``count`` single-resource reconfigurations *to* ``color``."""
        if count < 0:
            raise ValueError("reconfiguration count must be nonnegative")
        self.num_reconfigs += count
        self.reconfigs_by_color[color] += count

    def record_drop(self, color: int, count: int = 1, *, eligible: bool = True) -> None:
        """Record ``count`` dropped jobs of ``color``.

        ``eligible`` follows the Section 3.2 definition: a job is
        *ineligible* when it is dropped while its color is ineligible.
        """
        if count < 0:
            raise ValueError("drop count must be nonnegative")
        self.num_drops += count
        self.drops_by_color[color] += count
        if eligible:
            self.num_eligible_drops += count
        else:
            self.num_ineligible_drops += count

    def record_execution(self, color: int, count: int = 1) -> None:
        if count < 0:
            raise ValueError("execution count must be nonnegative")
        self.executions += count
        self.executions_by_color[color] += count

    @property
    def reconfig_cost(self) -> int:
        """Total reconfiguration cost ``Δ * #reconfigurations``."""
        return self.model.reconfig_cost * self.num_reconfigs

    @property
    def drop_cost(self) -> int:
        """Total drop cost."""
        return self.model.drop_cost * self.num_drops

    @property
    def eligible_drop_cost(self) -> int:
        """Drop cost attributed to eligible jobs (Section 3.2)."""
        return self.model.drop_cost * self.num_eligible_drops

    @property
    def ineligible_drop_cost(self) -> int:
        """Drop cost attributed to ineligible jobs (Section 3.2)."""
        return self.model.drop_cost * self.num_ineligible_drops

    @property
    def total(self) -> int:
        """Total cost: reconfiguration plus drop."""
        return self.reconfig_cost + self.drop_cost

    def merge(self, other: "CostBreakdown") -> "CostBreakdown":
        """Sum of two breakdowns under the same cost model."""
        if other.model != self.model:
            raise ValueError("cannot merge breakdowns with different cost models")
        merged = CostBreakdown(self.model)
        merged.num_reconfigs = self.num_reconfigs + other.num_reconfigs
        merged.num_drops = self.num_drops + other.num_drops
        merged.num_eligible_drops = self.num_eligible_drops + other.num_eligible_drops
        merged.num_ineligible_drops = (
            self.num_ineligible_drops + other.num_ineligible_drops
        )
        merged.reconfigs_by_color = self.reconfigs_by_color + other.reconfigs_by_color
        merged.drops_by_color = self.drops_by_color + other.drops_by_color
        merged.executions = self.executions + other.executions
        merged.executions_by_color = (
            self.executions_by_color + other.executions_by_color
        )
        return merged

    def summary(self) -> dict[str, int]:
        """Compact, JSON-friendly view used by the reporting layer."""
        return {
            "total": self.total,
            "reconfig_cost": self.reconfig_cost,
            "drop_cost": self.drop_cost,
            "num_reconfigs": self.num_reconfigs,
            "num_drops": self.num_drops,
            "num_eligible_drops": self.num_eligible_drops,
            "num_ineligible_drops": self.num_ineligible_drops,
            "executions": self.executions,
        }

    def to_dict(self) -> dict:
        """Lossless JSON-ready form (checkpoint/restore).

        Per-color counters keep their zero entries: the engines record a
        zero-count reconfiguration when an insert reuses a slot that
        already physically holds the color, and a restored breakdown must
        compare equal to the uninterrupted one under ``==``.
        """
        return {
            "model": [self.model.reconfig_cost, self.model.drop_cost],
            "num_reconfigs": self.num_reconfigs,
            "num_drops": self.num_drops,
            "num_eligible_drops": self.num_eligible_drops,
            "num_ineligible_drops": self.num_ineligible_drops,
            "reconfigs_by_color": {str(c): n for c, n in self.reconfigs_by_color.items()},
            "drops_by_color": {str(c): n for c, n in self.drops_by_color.items()},
            "executions": self.executions,
            "executions_by_color": {str(c): n for c, n in self.executions_by_color.items()},
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CostBreakdown":
        """Inverse of :meth:`to_dict`; ``==`` to the original breakdown."""
        out = cls(CostModel(*data["model"]))
        out.num_reconfigs = data["num_reconfigs"]
        out.num_drops = data["num_drops"]
        out.num_eligible_drops = data["num_eligible_drops"]
        out.num_ineligible_drops = data["num_ineligible_drops"]
        out.reconfigs_by_color = Counter(
            {int(c): n for c, n in data["reconfigs_by_color"].items()}
        )
        out.drops_by_color = Counter(
            {int(c): n for c, n in data["drops_by_color"].items()}
        )
        out.executions = data["executions"]
        out.executions_by_color = Counter(
            {int(c): n for c, n in data["executions_by_color"].items()}
        )
        return out
