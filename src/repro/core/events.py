"""Structured run traces.

The paper's proofs are statements about *runs*: counter wrapping events,
epochs ending, colors entering and leaving the cache.  The simulation
engine therefore emits a :class:`Trace` — an ordered log of typed events —
and the analysis layer (epoch tracking, credit audits, lemma checkers)
operates on traces as pure functions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Type, TypeVar


@dataclass(frozen=True, slots=True)
class ArrivalEvent:
    """A batch of jobs arrived (arrival phase)."""

    round_index: int
    color: int
    count: int


@dataclass(frozen=True, slots=True)
class DropEvent:
    """Jobs dropped at their deadline (drop phase).

    ``eligible`` records the color's eligibility at the start of the drop
    phase, which defines the eligible/ineligible job split of Section 3.2.
    """

    round_index: int
    color: int
    count: int
    eligible: bool


@dataclass(frozen=True, slots=True)
class WrapEvent:
    """A counter wrapping event of a color (arrival phase, Section 3.1)."""

    round_index: int
    color: int


@dataclass(frozen=True, slots=True)
class EligibleEvent:
    """A color transitioned ineligible -> eligible."""

    round_index: int
    color: int


@dataclass(frozen=True, slots=True)
class IneligibleEvent:
    """A color transitioned eligible -> ineligible (an epoch ends here)."""

    round_index: int
    color: int


@dataclass(frozen=True, slots=True)
class ReconfigEvent:
    """One resource reconfigured (reconfiguration phase)."""

    round_index: int
    mini_round: int
    resource: int
    old_color: int
    new_color: int


@dataclass(frozen=True, slots=True)
class ExecuteEvent:
    """One job executed (execution phase)."""

    round_index: int
    mini_round: int
    resource: int
    color: int
    jid: int


@dataclass(frozen=True, slots=True)
class CacheInEvent:
    """A color entered the cached set (possibly in multiple locations)."""

    round_index: int
    mini_round: int
    color: int
    section: str  # "lru", "edf", or "main"


@dataclass(frozen=True, slots=True)
class CacheOutEvent:
    """A color left the cached set entirely."""

    round_index: int
    mini_round: int
    color: int


@dataclass(frozen=True, slots=True)
class TimestampEvent:
    """A ΔLRU timestamp update event of a color (Section 3.4)."""

    round_index: int
    color: int
    timestamp: int


Event = (
    ArrivalEvent
    | DropEvent
    | WrapEvent
    | EligibleEvent
    | IneligibleEvent
    | ReconfigEvent
    | ExecuteEvent
    | CacheInEvent
    | CacheOutEvent
    | TimestampEvent
)

E = TypeVar("E")


class Trace:
    """Append-only ordered event log for one run."""

    def __init__(self) -> None:
        self._events: list[Event] = []

    def append(self, event: Event) -> None:
        self._events.append(event)

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[Event]:
        return iter(self._events)

    def of_type(self, event_type: Type[E]) -> list[E]:
        """All events of one type, in log order."""
        return [e for e in self._events if isinstance(e, event_type)]

    def for_color(self, color: int) -> list[Event]:
        """All events carrying a ``color`` attribute equal to ``color``."""
        return [
            e
            for e in self._events
            if getattr(e, "color", None) == color
            or getattr(e, "new_color", None) == color
            or getattr(e, "old_color", None) == color
        ]

    def rounds(self) -> range:
        """Range of rounds touched by the trace."""
        if not self._events:
            return range(0)
        last = max(e.round_index for e in self._events)
        return range(last + 1)
