"""Core problem model for reconfigurable resource scheduling.

This package implements Section 2 of the paper: unit jobs with per-color
delay bounds, request sequences, problem instances in the
``[reconfig | drop | delay | batch]`` notation, schedules, cost accounting,
round/block arithmetic, and a schedule feasibility verifier.

The core layer is pure data plus validation; it knows nothing about any
particular scheduling algorithm.
"""

from repro.core.job import BLACK, Job
from repro.core.rounds import (
    Block,
    block,
    block_index,
    block_of,
    half_block,
    half_block_index,
    is_multiple,
    is_power_of_two,
    next_multiple,
    next_power_of_two,
    prev_multiple,
)
from repro.core.cost import CostBreakdown, CostModel
from repro.core.instance import (
    BatchMode,
    Instance,
    ProblemSpec,
    RequestSequence,
)
from repro.core.schedule import Execution, Reconfiguration, Schedule
from repro.core.events import (
    ArrivalEvent,
    DropEvent,
    ExecuteEvent,
    ReconfigEvent,
    Trace,
    WrapEvent,
)
from repro.core.validation import ScheduleError, ValidationReport, verify_schedule

__all__ = [
    "BLACK",
    "Job",
    "Block",
    "block",
    "block_index",
    "block_of",
    "half_block",
    "half_block_index",
    "is_multiple",
    "is_power_of_two",
    "next_multiple",
    "next_power_of_two",
    "prev_multiple",
    "CostBreakdown",
    "CostModel",
    "BatchMode",
    "Instance",
    "ProblemSpec",
    "RequestSequence",
    "Execution",
    "Reconfiguration",
    "Schedule",
    "ArrivalEvent",
    "DropEvent",
    "ExecuteEvent",
    "ReconfigEvent",
    "WrapEvent",
    "Trace",
    "ScheduleError",
    "ValidationReport",
    "verify_schedule",
]
