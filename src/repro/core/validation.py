"""Schedule feasibility verification (Section 2 semantics).

Every schedule in this repository — online, offline optimal, handcrafted
adversary schedules, reduction outputs — is checked against the same rules:

1. every executed job exists in the request sequence and is executed at
   most once (enforced structurally by :class:`~repro.core.schedule.Schedule`);
2. a job is executed only in rounds ``arrival <= r < deadline``;
3. a job of color ℓ runs only on a resource configured to ℓ at that
   (mini-)round — reconfigurations in the same mini-round take effect
   before the execution phase;
4. each resource executes at most one job per mini-round;
5. round/resource indices are within range.

The verifier is deliberately independent of the simulation engine so it
can catch engine bugs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.instance import Instance
from repro.core.job import BLACK, Job
from repro.core.schedule import Schedule


class ScheduleError(Exception):
    """Raised by :func:`verify_schedule` in strict mode on the first violation."""


@dataclass
class ValidationReport:
    """Outcome of a feasibility check."""

    ok: bool
    violations: list[str] = field(default_factory=list)
    executed: int = 0
    dropped: int = 0

    def raise_if_invalid(self) -> None:
        if not self.ok:
            raise ScheduleError("; ".join(self.violations[:5]))


def verify_schedule(
    instance: Instance,
    schedule: Schedule,
    *,
    strict: bool = False,
) -> ValidationReport:
    """Check that ``schedule`` is feasible for ``instance``.

    Returns a :class:`ValidationReport`; with ``strict=True`` raises
    :class:`ScheduleError` on the first violation instead.
    """
    violations: list[str] = []

    def flag(message: str) -> None:
        if strict:
            raise ScheduleError(message)
        violations.append(message)

    jobs_by_id: dict[int, Job] = {job.jid: job for job in instance.sequence}

    # Reconstruct each resource's color as a function of (round, mini_round).
    # Reconfigurations are already sorted by (round, mini, resource).
    timelines: dict[int, list[tuple[int, int, int]]] = {}
    current_color: dict[int, int] = {}
    for event in schedule.reconfigurations:
        if event.round_index >= instance.horizon:
            flag(
                f"reconfiguration of resource {event.resource} at round "
                f"{event.round_index} is beyond the horizon {instance.horizon}"
            )
        prev = current_color.get(event.resource, BLACK)
        if prev == event.new_color:
            # Recoloring to the same color is legal but wasteful; it still
            # costs Δ, so surface it as a violation to catch engine bugs.
            flag(
                f"resource {event.resource} reconfigured to its current color "
                f"{event.new_color} at round {event.round_index}"
            )
        current_color[event.resource] = event.new_color
        timelines.setdefault(event.resource, []).append(
            (event.round_index, event.mini_round, event.new_color)
        )

    def color_at(resource: int, round_index: int, mini_round: int) -> int:
        color = BLACK
        for r_round, r_mini, r_color in timelines.get(resource, ()):
            if (r_round, r_mini) <= (round_index, mini_round):
                color = r_color
            else:
                break
        return color

    # Per (resource, round, mini) execution uniqueness + job window + color.
    occupied: set[tuple[int, int, int]] = set()
    for event in schedule.executions:
        job = jobs_by_id.get(event.jid)
        if job is None:
            flag(f"execution references unknown job {event.jid}")
            continue
        if job.color != event.color:
            flag(
                f"execution of job {event.jid} records color {event.color}, "
                f"job has color {job.color}"
            )
        if not job.executable_in(event.round_index):
            flag(
                f"job {event.jid} executed at round {event.round_index}, "
                f"outside its window [{job.arrival}, {job.deadline})"
            )
        slot = (event.resource, event.round_index, event.mini_round)
        if slot in occupied:
            flag(
                f"resource {event.resource} executes two jobs in round "
                f"{event.round_index} mini-round {event.mini_round}"
            )
        occupied.add(slot)
        resource_color = color_at(event.resource, event.round_index, event.mini_round)
        if resource_color != job.color:
            flag(
                f"job {event.jid} (color {job.color}) executed on resource "
                f"{event.resource} configured to {resource_color} at round "
                f"{event.round_index}"
            )

    executed = len(schedule.executed_jids)
    dropped = len(instance.sequence) - executed
    return ValidationReport(
        ok=not violations,
        violations=violations,
        executed=executed,
        dropped=dropped,
    )
