"""Problem instances in the ``[reconfig | drop | delay | batch]`` notation.

An :class:`Instance` bundles a :class:`ProblemSpec` (the cost parameters,
per-color delay bounds, and batch discipline) with a
:class:`RequestSequence` (the jobs).  Construction validates that the
sequence actually conforms to the declared batch mode:

* ``GENERAL``      — ``[Δ | 1 | D_ℓ | 1]``: arbitrary arrival rounds.
* ``BATCHED``      — ``[Δ | 1 | D_ℓ | D_ℓ]``: color-ℓ jobs arrive only at
  integral multiples of ``D_ℓ``.
* ``RATE_LIMITED`` — batched and additionally at most ``D_ℓ`` color-ℓ jobs
  per arrival round.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping, Sequence

from repro.core.cost import CostModel
from repro.core.job import Job, jobs_by_round
from repro.core.rounds import is_multiple, is_power_of_two


class BatchMode(enum.Enum):
    """The ``batch`` field of the ``[· | · | · | batch]`` notation."""

    GENERAL = "general"
    BATCHED = "batched"
    RATE_LIMITED = "rate_limited"

    @property
    def is_batched(self) -> bool:
        return self is not BatchMode.GENERAL


@dataclass(frozen=True)
class ProblemSpec:
    """Static problem parameters.

    Attributes
    ----------
    delay_bounds:
        Mapping color -> delay bound ``D_ℓ``.  Every job color in the
        instance must appear here with a matching bound.
    cost:
        The ``Δ`` / drop-cost pair.
    batch_mode:
        Declared batch discipline; validated against the sequence.
    require_power_of_two:
        When true (the default for the Section 3/4 problems) every delay
        bound must be a power of two.
    """

    delay_bounds: Mapping[int, int]
    cost: CostModel
    batch_mode: BatchMode = BatchMode.GENERAL
    require_power_of_two: bool = False

    def __post_init__(self) -> None:
        if not self.delay_bounds:
            raise ValueError("spec must define at least one color")
        for color, bound in self.delay_bounds.items():
            if color < 0:
                raise ValueError(f"colors must be nonnegative, got {color}")
            if bound <= 0:
                raise ValueError(
                    f"delay bound for color {color} must be positive, got {bound}"
                )
            if self.require_power_of_two and not is_power_of_two(bound):
                raise ValueError(
                    f"delay bound for color {color} must be a power of two, "
                    f"got {bound}"
                )
        # Freeze the mapping so the spec is hashable-by-value in practice.
        object.__setattr__(self, "delay_bounds", dict(self.delay_bounds))

    @property
    def reconfig_cost(self) -> int:
        """``Δ``, the per-resource reconfiguration cost."""
        return self.cost.reconfig_cost

    @property
    def colors(self) -> tuple[int, ...]:
        """All declared colors in ascending (consistent) order."""
        return tuple(sorted(self.delay_bounds))

    def delay_bound(self, color: int) -> int:
        try:
            return self.delay_bounds[color]
        except KeyError:
            raise KeyError(f"color {color} is not declared in the spec") from None

    def with_batch_mode(self, mode: BatchMode) -> "ProblemSpec":
        return ProblemSpec(
            self.delay_bounds, self.cost, mode, self.require_power_of_two
        )

    def with_delay_bounds(self, bounds: Mapping[int, int]) -> "ProblemSpec":
        return ProblemSpec(
            bounds, self.cost, self.batch_mode, self.require_power_of_two
        )


class RequestSequence:
    """An ordered multiset of jobs, indexable by arrival round.

    The *i*-th request of the paper is the (possibly empty) set of jobs
    arriving in round *i*.  The horizon is the number of rounds the
    simulation must run; it always extends past the last deadline so that
    every job is either executed or dropped by the end of a run.
    """

    def __init__(
        self,
        jobs: Iterable[Job],
        horizon: int | None = None,
        *,
        open_horizon: bool = False,
    ) -> None:
        self._jobs: tuple[Job, ...] = tuple(sorted(jobs))
        ids = [job.jid for job in self._jobs]
        if len(set(ids)) != len(ids):
            raise ValueError("job ids within a request sequence must be unique")
        self._by_round: dict[int, list[Job]] = jobs_by_round(list(self._jobs))
        self._open_horizon = bool(open_horizon)
        last_deadline = max((job.deadline for job in self._jobs), default=0)
        # The drop phase of round `last_deadline` is the final event that can
        # touch a job, so the minimal safe horizon is last_deadline + 1.
        # Streaming *segments* (``open_horizon=True``) are windows of a
        # longer run: jobs arriving near the window's end legitimately
        # carry deadlines past it (their drop round belongs to the next
        # segment), so the deadline check is waived there.
        min_horizon = last_deadline + 1 if self._jobs else 1
        self._horizon = min_horizon if horizon is None else horizon
        if self._horizon < 1:
            raise ValueError(f"horizon must be at least 1, got {self._horizon}")
        if not self._open_horizon and self._horizon < min_horizon:
            raise ValueError(
                f"horizon {self._horizon} ends before the last deadline; "
                f"need at least {min_horizon}"
            )
        if any(job.arrival >= self._horizon for job in self._jobs):
            raise ValueError(
                "jobs must arrive within the horizon (arrival < horizon)"
            )

    @property
    def jobs(self) -> tuple[Job, ...]:
        return self._jobs

    @property
    def horizon(self) -> int:
        """Number of rounds to simulate (rounds ``0 .. horizon - 1``)."""
        return self._horizon

    def __len__(self) -> int:
        return len(self._jobs)

    def __iter__(self) -> Iterator[Job]:
        return iter(self._jobs)

    @property
    def open_horizon(self) -> bool:
        """True for streaming segment views (deadlines may exceed horizon)."""
        return self._open_horizon

    def arrivals(self, round_index: int) -> Sequence[Job]:
        """Jobs arriving in ``round_index`` (the round's request).

        Contract: ``round_index`` must lie inside the materialized
        horizon, ``0 <= round_index < horizon``.  Out-of-range rounds
        raise :class:`IndexError` rather than silently returning an
        empty batch — a caller iterating past the horizon is reading
        rounds this sequence never materialized (the streaming layer is
        the API for unbounded runs), and the silent ``()`` used to turn
        that bug into quietly-wrong costs.  Streaming adapters preserve
        this contract (:class:`repro.streaming.sources.InstanceSource`).
        """
        if round_index < 0 or round_index >= self._horizon:
            raise IndexError(
                f"round {round_index} is outside the materialized horizon "
                f"[0, {self._horizon}); the request sequence has no such round"
            )
        return self._by_round.get(round_index, ())

    def arrival_rounds(self) -> tuple[int, ...]:
        """Rounds with at least one arrival, ascending."""
        return tuple(sorted(self._by_round))

    @property
    def colors(self) -> tuple[int, ...]:
        """Distinct job colors, ascending."""
        return tuple(sorted({job.color for job in self._jobs}))

    def count_by_color(self) -> dict[int, int]:
        counts: dict[int, int] = {}
        for job in self._jobs:
            counts[job.color] = counts.get(job.color, 0) + 1
        return counts

    def restricted_to(self, colors: Iterable[int]) -> "RequestSequence":
        """Subsequence containing only jobs of the given colors."""
        keep = set(colors)
        return RequestSequence(
            [job for job in self._jobs if job.color in keep],
            self._horizon,
            open_horizon=self._open_horizon,
        )

    def with_horizon(self, horizon: int) -> "RequestSequence":
        return RequestSequence(
            self._jobs, horizon, open_horizon=self._open_horizon
        )


@dataclass(frozen=True)
class Instance:
    """A validated (spec, sequence) pair."""

    spec: ProblemSpec
    sequence: RequestSequence
    name: str = ""

    def __post_init__(self) -> None:
        declared = set(self.spec.delay_bounds)
        for job in self.sequence:
            if job.color not in declared:
                raise ValueError(
                    f"job {job.jid} has undeclared color {job.color}"
                )
            bound = self.spec.delay_bounds[job.color]
            if job.delay_bound != bound:
                raise ValueError(
                    f"job {job.jid} of color {job.color} has delay bound "
                    f"{job.delay_bound}, spec declares {bound}"
                )
        self._validate_batch_mode()

    def _validate_batch_mode(self) -> None:
        mode = self.spec.batch_mode
        if mode is BatchMode.GENERAL:
            return
        per_round_color: dict[tuple[int, int], int] = {}
        for job in self.sequence:
            if not is_multiple(job.arrival, job.delay_bound):
                raise ValueError(
                    f"batched instance: job {job.jid} of color {job.color} "
                    f"arrives at round {job.arrival}, not a multiple of "
                    f"{job.delay_bound}"
                )
            key = (job.arrival, job.color)
            per_round_color[key] = per_round_color.get(key, 0) + 1
        if mode is BatchMode.RATE_LIMITED:
            for (arrival, color), count in per_round_color.items():
                bound = self.spec.delay_bounds[color]
                if count > bound:
                    raise ValueError(
                        f"rate-limited instance: {count} color-{color} jobs "
                        f"arrive at round {arrival}, exceeding D_ℓ = {bound}"
                    )

    @property
    def horizon(self) -> int:
        return self.sequence.horizon

    @property
    def cost_model(self) -> CostModel:
        return self.spec.cost

    @property
    def reconfig_cost(self) -> int:
        return self.spec.reconfig_cost

    def describe(self) -> str:
        """Short human-readable description for reports."""
        mode = {
            BatchMode.GENERAL: "1",
            BatchMode.BATCHED: "D_l",
            BatchMode.RATE_LIMITED: "D_l (rate-limited)",
        }[self.spec.batch_mode]
        label = self.name or "instance"
        return (
            f"{label}: [Δ={self.spec.reconfig_cost} | {self.spec.cost.drop_cost} "
            f"| D_l | {mode}] with {len(self.sequence)} jobs, "
            f"{len(self.sequence.colors)} colors, horizon {self.horizon}"
        )


def make_instance(
    jobs: Iterable[Job],
    delay_bounds: Mapping[int, int],
    reconfig_cost: int,
    *,
    batch_mode: BatchMode = BatchMode.GENERAL,
    horizon: int | None = None,
    require_power_of_two: bool = False,
    name: str = "",
) -> Instance:
    """Convenience constructor used throughout tests and workloads."""
    spec = ProblemSpec(
        delay_bounds,
        CostModel(reconfig_cost),
        batch_mode,
        require_power_of_two,
    )
    return Instance(spec, RequestSequence(jobs, horizon), name)
