"""Round, block, and half-block arithmetic (Sections 2, 3.3 and 5.1).

The paper's analysis is phrased in terms of *blocks* and *half-blocks* of a
delay bound ``p``:

* ``block(p, i)`` is the ``p`` rounds starting at round ``i * p``;
* ``halfBlock(p, i)`` is the ``p / 2`` rounds starting at ``i * p / 2``
  (only defined for even ``p``; the paper assumes power-of-two bounds
  greater than one when half-blocks are used).

All helpers here are pure integer arithmetic and are shared by the
simulation engine, the reductions, and the analysis layer.
"""

from __future__ import annotations

from dataclasses import dataclass


def is_power_of_two(x: int) -> bool:
    """True iff ``x`` is a positive integral power of two (1 counts)."""
    return x > 0 and (x & (x - 1)) == 0


def next_power_of_two(x: int) -> int:
    """Smallest power of two ``>= x`` (for ``x >= 1``)."""
    if x < 1:
        raise ValueError(f"expected x >= 1, got {x}")
    return 1 << (x - 1).bit_length()


def prev_power_of_two(x: int) -> int:
    """Largest power of two ``<= x`` (for ``x >= 1``)."""
    if x < 1:
        raise ValueError(f"expected x >= 1, got {x}")
    return 1 << (x.bit_length() - 1)


def is_multiple(round_index: int, period: int) -> bool:
    """Whether ``round_index`` is an integral multiple of ``period``."""
    if period <= 0:
        raise ValueError(f"period must be positive, got {period}")
    return round_index % period == 0


def prev_multiple(round_index: int, period: int) -> int:
    """Largest integral multiple of ``period`` that is ``<= round_index``."""
    if period <= 0:
        raise ValueError(f"period must be positive, got {period}")
    return (round_index // period) * period


def next_multiple(round_index: int, period: int) -> int:
    """Smallest integral multiple of ``period`` that is ``> round_index``."""
    return prev_multiple(round_index, period) + period


@dataclass(frozen=True, slots=True)
class Block:
    """A half-open interval of rounds ``[start, start + length)``."""

    start: int
    length: int

    @property
    def end(self) -> int:
        """One past the last round of the block."""
        return self.start + self.length

    def __contains__(self, round_index: int) -> bool:
        return self.start <= round_index < self.end

    def rounds(self) -> range:
        return range(self.start, self.end)

    def encloses(self, other: "Block") -> bool:
        """Whether ``other`` lies entirely within this block."""
        return self.start <= other.start and other.end <= self.end

    def overlaps(self, other: "Block") -> bool:
        return self.start < other.end and other.start < self.end


def block(p: int, i: int) -> Block:
    """``block(p, i)``: the ``p`` rounds starting from round ``i * p``."""
    if p <= 0:
        raise ValueError(f"delay bound must be positive, got {p}")
    if i < 0:
        raise ValueError(f"block index must be nonnegative, got {i}")
    return Block(i * p, p)


def block_index(p: int, round_index: int) -> int:
    """Index ``i`` such that ``round_index`` is in ``block(p, i)``."""
    if p <= 0:
        raise ValueError(f"delay bound must be positive, got {p}")
    if round_index < 0:
        raise ValueError(f"round must be nonnegative, got {round_index}")
    return round_index // p


def block_of(p: int, round_index: int) -> Block:
    """The block of delay bound ``p`` containing ``round_index``."""
    return block(p, block_index(p, round_index))


def half_block(p: int, i: int) -> Block:
    """``halfBlock(p, i)``: the ``p / 2`` rounds starting from ``i * p / 2``.

    Defined for even ``p`` (the paper uses power-of-two bounds ``> 1``).
    """
    if p <= 0 or p % 2 != 0:
        raise ValueError(f"half-blocks require an even positive delay bound, got {p}")
    if i < 0:
        raise ValueError(f"half-block index must be nonnegative, got {i}")
    half = p // 2
    return Block(i * half, half)


def half_block_index(p: int, round_index: int) -> int:
    """Index ``i`` such that ``round_index`` is in ``halfBlock(p, i)``."""
    if p <= 0 or p % 2 != 0:
        raise ValueError(f"half-blocks require an even positive delay bound, got {p}")
    if round_index < 0:
        raise ValueError(f"round must be nonnegative, got {round_index}")
    return round_index // (p // 2)


def blocks_within(p: int, horizon: int) -> list[Block]:
    """All blocks of delay bound ``p`` intersecting rounds ``[0, horizon)``."""
    if horizon < 0:
        raise ValueError(f"horizon must be nonnegative, got {horizon}")
    n_blocks = (horizon + p - 1) // p
    return [block(p, i) for i in range(n_blocks)]
