"""Schedule representation (Section 2).

A schedule specifies, for each round, the reconfigurations performed in
the reconfiguration phase and the job executions performed in the
execution phase.  Schedules are produced by the simulation engine (for
online algorithms), by the offline optimizer, and by the handcrafted
constructions in the appendices; all of them flow through the same
:func:`repro.core.validation.verify_schedule` feasibility checker.

Double-speed schedules (Section 3.3) interleave two *mini-rounds* per
round; ``mini_round`` is 0 for uni-speed events.
"""

from __future__ import annotations

from bisect import insort
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.core.cost import CostBreakdown, CostModel
from repro.core.job import BLACK, Job


@dataclass(frozen=True, slots=True, order=True)
class Reconfiguration:
    """One resource recolored in the reconfiguration phase of a round.

    ``new_color`` is excluded from ordering: a resource may legally be
    recolored twice in one reconfiguration phase (wasteful but allowed),
    and the *insertion* order must decide which color is final — sorting
    by color would silently reorder the timeline.
    """

    round_index: int
    mini_round: int
    resource: int
    new_color: int = field(compare=False)

    def __post_init__(self) -> None:
        if self.round_index < 0:
            raise ValueError("round index must be nonnegative")
        if self.mini_round not in (0, 1):
            raise ValueError("mini-round must be 0 or 1")
        if self.resource < 0:
            raise ValueError("resource index must be nonnegative")
        if self.new_color == BLACK:
            raise ValueError("cannot reconfigure a resource back to BLACK")


@dataclass(frozen=True, slots=True, order=True)
class Execution:
    """One job executed on one resource in the execution phase of a round."""

    round_index: int
    mini_round: int
    resource: int
    jid: int
    color: int

    def __post_init__(self) -> None:
        if self.round_index < 0:
            raise ValueError("round index must be nonnegative")
        if self.mini_round not in (0, 1):
            raise ValueError("mini-round must be 0 or 1")
        if self.resource < 0:
            raise ValueError("resource index must be nonnegative")


class Schedule:
    """An explicit schedule over ``num_resources`` resources.

    The schedule does not itself know which jobs were *dropped*; drops are
    derived by comparing against a request sequence (every job not executed
    by its deadline is dropped).  :meth:`cost` performs that derivation.
    """

    def __init__(
        self,
        num_resources: int,
        *,
        speed: int = 1,
        reconfigurations: Iterable[Reconfiguration] = (),
        executions: Iterable[Execution] = (),
    ) -> None:
        if num_resources <= 0:
            raise ValueError("a schedule needs at least one resource")
        if speed not in (1, 2):
            raise ValueError("only uni-speed (1) and double-speed (2) supported")
        self.num_resources = num_resources
        self.speed = speed
        self._reconfigs: list[Reconfiguration] = []
        self._executions: list[Execution] = []
        self._executed_jids: set[int] = set()
        for r in reconfigurations:
            self.add_reconfiguration(r)
        for e in executions:
            self.add_execution(e)

    # -- construction -----------------------------------------------------

    def add_reconfiguration(self, event: Reconfiguration) -> None:
        if event.resource >= self.num_resources:
            raise ValueError(
                f"resource {event.resource} out of range "
                f"(schedule has {self.num_resources})"
            )
        if event.mini_round >= self.speed:
            raise ValueError("mini-round exceeds schedule speed")
        # Engines emit in round order; append is the hot path (profiled),
        # insort only serves hand-built schedules added out of order.
        if not self._reconfigs or not (event < self._reconfigs[-1]):
            self._reconfigs.append(event)
        else:
            insort(self._reconfigs, event)

    def add_execution(self, event: Execution) -> None:
        if event.resource >= self.num_resources:
            raise ValueError(
                f"resource {event.resource} out of range "
                f"(schedule has {self.num_resources})"
            )
        if event.mini_round >= self.speed:
            raise ValueError("mini-round exceeds schedule speed")
        if event.jid in self._executed_jids:
            raise ValueError(f"job {event.jid} is executed twice")
        self._executed_jids.add(event.jid)
        if not self._executions or not (event < self._executions[-1]):
            self._executions.append(event)
        else:
            insort(self._executions, event)

    def reconfigure(
        self,
        round_index: int,
        resource: int,
        new_color: int,
        *,
        mini_round: int = 0,
    ) -> None:
        """Convenience wrapper for handcrafted schedule construction."""
        self.add_reconfiguration(
            Reconfiguration(round_index, mini_round, resource, new_color)
        )

    def execute(
        self,
        round_index: int,
        resource: int,
        job: Job,
        *,
        mini_round: int = 0,
    ) -> None:
        """Convenience wrapper for handcrafted schedule construction."""
        self.add_execution(
            Execution(round_index, mini_round, resource, job.jid, job.color)
        )

    # -- views ------------------------------------------------------------

    @property
    def reconfigurations(self) -> tuple[Reconfiguration, ...]:
        return tuple(self._reconfigs)

    @property
    def executions(self) -> tuple[Execution, ...]:
        return tuple(self._executions)

    @property
    def executed_jids(self) -> frozenset[int]:
        return frozenset(self._executed_jids)

    def executions_by_round(self) -> dict[int, list[Execution]]:
        grouped: dict[int, list[Execution]] = defaultdict(list)
        for event in self._executions:
            grouped[event.round_index].append(event)
        return dict(grouped)

    def reconfigurations_by_round(self) -> dict[int, list[Reconfiguration]]:
        grouped: dict[int, list[Reconfiguration]] = defaultdict(list)
        for event in self._reconfigs:
            grouped[event.round_index].append(event)
        return dict(grouped)

    def color_timeline(self, resource: int) -> list[tuple[int, int, int]]:
        """Reconfiguration history ``(round, mini_round, color)`` of a resource."""
        return [
            (r.round_index, r.mini_round, r.new_color)
            for r in self._reconfigs
            if r.resource == resource
        ]

    def color_at(self, resource: int, round_index: int, mini_round: int = 0) -> int:
        """Color of ``resource`` in the execution phase of a (mini-)round.

        Reconfigurations take effect in the same mini-round they occur
        (the reconfiguration phase precedes the execution phase).
        """
        color = BLACK
        for r_round, r_mini, r_color in self.color_timeline(resource):
            if (r_round, r_mini) <= (round_index, mini_round):
                color = r_color
            else:
                break
        return color

    # -- cost -------------------------------------------------------------

    def cost(self, jobs: Iterable[Job], model: CostModel) -> CostBreakdown:
        """Cost of this schedule against a job multiset.

        Every job not executed is dropped.  The eligible/ineligible split
        is not meaningful for raw schedules, so all drops register as
        eligible.
        """
        breakdown = CostBreakdown(model)
        for event in self._reconfigs:
            breakdown.record_reconfig(event.new_color)
        for event in self._executions:
            breakdown.record_execution(event.color)
        for job in jobs:
            if job.jid not in self._executed_jids:
                breakdown.record_drop(job.color)
        return breakdown

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Schedule(resources={self.num_resources}, speed={self.speed}, "
            f"reconfigs={len(self._reconfigs)}, executions={len(self._executions)})"
        )
