"""EXP-T2: Theorem 2 — Algorithm Distribute is resource competitive on
batched instances (rate limit violated by oversized batches).

Random batched workloads with bursts well above the rate limit are run
through Distribute → ΔLRU-EDF with ``n`` resources and measured against
the offline estimate with ``m = n/8``.  The table also reports the inner
(subcolored) cost to exhibit Lemma 4.2's ``outer <= inner`` inequality,
and the subcolor expansion factor of each instance.
"""

from __future__ import annotations

from repro.analysis.competitive import best_effort_ratio
from repro.analysis.report import Series, Table, geometric_mean
from repro.experiments.base import ExperimentReport
from repro.reductions.distribute import run_distribute
from repro.workloads.datacenter import motivation_scenario
from repro.workloads.random_batched import random_batched


def run(
    *,
    n: int = 16,
    delta_values: tuple[int, ...] = (2, 4),
    seeds: tuple[int, ...] = (0, 1, 2),
    horizon: int = 64,
    exact_state_budget: int = 200_000,
) -> ExperimentReport:
    if n % 8 != 0:
        raise ValueError("pass n divisible by 8")
    m = n // 8
    report = ExperimentReport(
        "EXP-T2",
        f"Theorem 2: Distribute with n={n} vs OFF with m={m} (batched arrivals)",
    )
    table = Table(
        "Distribute on oversized-batch workloads",
        (
            "workload",
            "outer cost",
            "inner cost",
            "subcolors",
            "colors",
            "OFF est.",
            "OFF kind",
            "ratio",
        ),
    )
    ratios = Series("Distribute measured ratio per workload", "workload", "ratio")

    def cases():
        for delta in delta_values:
            for seed in seeds:
                yield (
                    f"batched(Δ={delta},seed={seed})",
                    random_batched(
                        5,
                        delta,
                        horizon,
                        seed=seed,
                        load=0.8,
                        burst_factor=4.0,
                        bound_choices=(2, 4, 8),
                    ),
                )
        yield (
            "motivation",
            motivation_scenario(
                seed=0, horizon=128, long_bound=64, backlog=48, delta=4
            ),
        )

    for label, instance in cases():
        result = run_distribute(instance, n)
        estimate = best_effort_ratio(
            instance,
            result.total_cost,
            m,
            exact_state_budget=exact_state_budget,
        )
        num_colors = len(instance.sequence.colors)
        num_subcolors = len(result.inner.instance.sequence.colors)
        table.add_row(
            label,
            result.total_cost,
            result.inner.total_cost,
            num_subcolors,
            num_colors,
            estimate.offline_estimate,
            estimate.direction.value,
            estimate.ratio,
        )
        ratios.add(label, estimate.ratio)
        report.rows.append(
            {
                "workload": label,
                "outer_cost": result.total_cost,
                "inner_cost": result.inner.total_cost,
                "subcolors": num_subcolors,
                "colors": num_colors,
                "offline_estimate": estimate.offline_estimate,
                "offline_kind": estimate.direction.value,
                "ratio": estimate.ratio,
            }
        )
    report.tables.append(table)
    report.series.append(ratios)
    values = [row["ratio"] for row in report.rows]
    report.summary = {
        "max_ratio": round(max(values), 3),
        "geomean_ratio": round(geometric_mean(values), 3),
        "lemma_4_2_holds": all(
            row["outer_cost"] <= row["inner_cost"] for row in report.rows
        ),
    }
    return report
