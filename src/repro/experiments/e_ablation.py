"""EXP-ABL: ablations of ΔLRU-EDF's design choices.

Four sweeps, each isolating one knob the paper's design fixes:

1. **LRU/EDF capacity split** — ``lru_fraction`` from 0 (pure EDF) to 1
   (pure ΔLRU); the paper uses 0.5.  Run on a blend of both adversaries
   plus random load: the even split should be the only setting that is
   never terrible.
2. **Replication** — the paper caches every color in two locations;
   compare ``copies = 2`` against ``copies = 1`` (twice the distinct
   capacity) at equal resources.
3. **Resource augmentation** — sweep ``n/m``; Theorem 1 needs 8, the
   ratio should decay and flatten as augmentation grows.
4. **Speed** — uni- vs double-speed execution at equal resources.
"""

from __future__ import annotations

from repro.algorithms.dlru_edf import DeltaLRUEDF
from repro.analysis.competitive import best_effort_ratio
from repro.analysis.report import Series, Table, geometric_mean
from repro.experiments.base import ExperimentReport
from repro.simulation.engine import simulate
from repro.workloads.adversarial import appendix_a_instance, appendix_b_instance
from repro.workloads.random_batched import random_rate_limited


def _blend(n: int, horizon: int, seeds: tuple[int, ...]):
    for seed in seeds:
        yield (
            f"random(seed={seed})",
            random_rate_limited(
                6, 3, horizon, seed=seed, load=0.7, bound_choices=(2, 4, 8)
            ),
        )
    _, a = appendix_a_instance(n, 2)
    yield ("appendix-a", a)
    _, b = appendix_b_instance(min(n, 4))
    yield ("appendix-b", b)


def run(
    *,
    n: int = 16,
    seeds: tuple[int, ...] = (0, 1),
    horizon: int = 64,
    fractions: tuple[float, ...] = (0.0, 0.25, 0.5, 0.75, 1.0),
    augmentations: tuple[int, ...] = (2, 4, 8, 16),
    exact_state_budget: int = 150_000,
) -> ExperimentReport:
    report = ExperimentReport("EXP-ABL", "ΔLRU-EDF design-choice ablations")
    m = max(1, n // 8)

    # 1. capacity split.
    split_table = Table(
        "LRU/EDF capacity split (geomean cost ratio vs OFF estimate)",
        ("lru_fraction", *[label for label, _ in _blend(n, horizon, seeds)], "geomean"),
    )
    split_series = Series("Cost geomean vs LRU fraction", "lru_fraction", "geomean ratio")
    workloads = list(_blend(n, horizon, seeds))
    for fraction in fractions:
        ratios = []
        for _, instance in workloads:
            result = simulate(instance, DeltaLRUEDF(lru_fraction=fraction), n)
            estimate = best_effort_ratio(
                instance, result.total_cost, m, exact_state_budget=exact_state_budget
            )
            ratios.append(estimate.ratio)
        gm = geometric_mean(ratios)
        split_table.add_row(fraction, *[round(r, 2) for r in ratios], round(gm, 3))
        split_series.add(fraction, gm)
        report.rows.append(
            {"knob": "lru_fraction", "value": fraction, "geomean_ratio": gm}
        )
    report.tables.append(split_table)
    report.series.append(split_series)

    # 2. replication.
    repl_table = Table(
        "Replication ablation (equal total resources)",
        ("workload", "copies=2 cost", "copies=1 cost"),
    )
    for label, instance in workloads:
        two = simulate(instance, DeltaLRUEDF(), n, copies=2)
        one = simulate(instance, DeltaLRUEDF(), n, copies=1)
        repl_table.add_row(label, two.total_cost, one.total_cost)
        report.rows.append(
            {
                "knob": "replication",
                "workload": label,
                "copies2": two.total_cost,
                "copies1": one.total_cost,
            }
        )
    report.tables.append(repl_table)

    # 3. augmentation sweep.
    aug_table = Table(
        "Resource augmentation sweep (OFF fixed at m resources)",
        ("n/m", "n", *[label for label, _ in workloads], "geomean ratio"),
    )
    aug_series = Series("Ratio vs augmentation", "n/m", "geomean ratio")
    for factor in augmentations:
        n_alg = m * factor
        if n_alg % 4 != 0:
            n_alg = ((n_alg + 3) // 4) * 4
        ratios = []
        for _, instance in workloads:
            result = simulate(instance, DeltaLRUEDF(), n_alg)
            estimate = best_effort_ratio(
                instance, result.total_cost, m, exact_state_budget=exact_state_budget
            )
            ratios.append(estimate.ratio)
        gm = geometric_mean(ratios)
        aug_table.add_row(factor, n_alg, *[round(r, 2) for r in ratios], round(gm, 3))
        aug_series.add(factor, gm)
        report.rows.append(
            {"knob": "augmentation", "value": factor, "geomean_ratio": gm}
        )
    report.tables.append(aug_table)
    report.series.append(aug_series)

    # 4. speed.
    speed_table = Table(
        "Execution speed ablation",
        ("workload", "speed=1 cost", "speed=2 cost"),
    )
    for label, instance in workloads:
        uni = simulate(instance, DeltaLRUEDF(), n, speed=1)
        double = simulate(instance, DeltaLRUEDF(), n, speed=2)
        speed_table.add_row(label, uni.total_cost, double.total_cost)
        report.rows.append(
            {
                "knob": "speed",
                "workload": label,
                "speed1": uni.total_cost,
                "speed2": double.total_cost,
            }
        )
    report.tables.append(speed_table)

    # 5. determinism vs randomization.
    from repro.algorithms.randomized import RandomEvict, RandomizedMarking

    random_table = Table(
        "Deterministic combination vs randomized schemes (total cost)",
        ("workload", "dLRU-EDF", "randomized-marking", "random-evict"),
    )
    for label, instance in workloads:
        combined = simulate(instance, DeltaLRUEDF(), n).total_cost
        marking = simulate(instance, RandomizedMarking(seed=0), n).total_cost
        oblivious = simulate(instance, RandomEvict(seed=0), n).total_cost
        random_table.add_row(label, combined, marking, oblivious)
        report.rows.append(
            {
                "knob": "randomization",
                "workload": label,
                "dlru_edf": combined,
                "marking": marking,
                "random_evict": oblivious,
            }
        )
    report.tables.append(random_table)

    split_rows = [r for r in report.rows if r.get("knob") == "lru_fraction"]
    aug_rows = [r for r in report.rows if r.get("knob") == "augmentation"]
    report.summary = {
        "best_split": min(split_rows, key=lambda r: r["geomean_ratio"])["value"],
        "ratio_at_max_augmentation": round(aug_rows[-1]["geomean_ratio"], 3),
    }
    return report
