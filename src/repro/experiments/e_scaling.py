"""EXP-S: simulator throughput scaling.

An engineering baseline rather than a paper claim: rounds-per-second of
the batched engine across a (resources, colors, horizon) grid, so
performance regressions in the hot loop show up in benchmark history.

Each grid cell is timed in both record modes — ``"full"`` (schedule +
trace, the verification path) and ``"costs"`` (the fast path sweeps and
searches use) — so the fast-path speedup is itself a tracked number.
Cells are independent and dispatch through an optional
:class:`~repro.runtime.parallel.ParallelRunner`; per-cell workload seeds
are derived with :func:`~repro.runtime.seeding.derive_seed` so the grid
is reproducible regardless of execution order.  The measured rows feed
``BENCH_engine.json`` (see ``benchmarks/bench_engine_scaling.py``).
"""

from __future__ import annotations

from repro.algorithms.dlru_edf import DeltaLRUEDF
from repro.analysis.report import Series, Table, geometric_mean
from repro.experiments.base import ExperimentReport
from repro.runtime.parallel import ParallelRunner
from repro.runtime.seeding import derive_seed
from repro.simulation.engine import simulate
from repro.workloads.random_batched import random_rate_limited

DEFAULT_GRID: tuple[tuple[int, int, int], ...] = (
    (8, 4, 256),
    (16, 8, 256),
    (32, 16, 256),
    (16, 8, 1024),
    (16, 8, 4096),
)


def _scaling_cell(task: tuple) -> dict:
    """Time one (config, record mode) cell; module-level so it pickles."""
    resources, colors, horizon, delta, seed, record = task
    instance = random_rate_limited(
        colors,
        delta,
        horizon,
        seed=derive_seed(seed, resources, colors, horizon),
        load=0.6,
        bound_choices=(2, 4, 8, 16),
    )
    result = simulate(instance, DeltaLRUEDF(), resources, record=record)
    elapsed = result.wall_seconds
    return {
        "resources": resources,
        "colors": colors,
        "horizon": horizon,
        "jobs": len(instance.sequence),
        "record": record,
        "seconds": elapsed,
        "rounds_per_second": result.rounds_per_second,
        "jobs_per_second": len(instance.sequence) / elapsed if elapsed > 0 else 0.0,
        "total_cost": result.total_cost,
    }


def run(
    *,
    grid: tuple[tuple[int, int, int], ...] = DEFAULT_GRID,
    delta: int = 4,
    seed: int = 0,
    record_modes: tuple[str, ...] = ("full", "costs"),
    runner: ParallelRunner | None = None,
) -> ExperimentReport:
    report = ExperimentReport("EXP-S", "Simulator throughput scaling")
    tasks = [
        (resources, colors, horizon, delta, seed, record)
        for resources, colors, horizon in grid
        for record in record_modes
    ]
    rows = (
        runner.map(_scaling_cell, tasks)
        if runner is not None
        else [_scaling_cell(task) for task in tasks]
    )
    report.rows.extend(rows)

    by_config: dict[tuple[int, int, int], dict[str, dict]] = {}
    for row in rows:
        key = (row["resources"], row["colors"], row["horizon"])
        by_config.setdefault(key, {})[row["record"]] = row

    columns = ["resources", "colors", "horizon", "jobs"]
    for record in record_modes:
        columns += [f"{record} s", f"{record} rounds/s"]
    if {"full", "costs"} <= set(record_modes):
        columns.append("speedup")
    table = Table("ΔLRU-EDF engine throughput by record mode", tuple(columns))
    series = Series("Rounds per second by configuration", "config", "rounds/s")
    speedups = []
    for (resources, colors, horizon), cells in by_config.items():
        any_cell = next(iter(cells.values()))
        row_values = [resources, colors, horizon, any_cell["jobs"]]
        for record in record_modes:
            cell = cells[record]
            row_values += [
                round(cell["seconds"], 4),
                round(cell["rounds_per_second"]),
            ]
        if "full" in cells and "costs" in cells:
            full_s, costs_s = cells["full"]["seconds"], cells["costs"]["seconds"]
            speedup = full_s / costs_s if costs_s > 0 else 0.0
            speedups.append(speedup)
            row_values.append(round(speedup, 2))
        table.add_row(*row_values)
        label = f"n={resources},C={colors},H={horizon}"
        best = max(cell["rounds_per_second"] for cell in cells.values())
        series.add(label, best)
    report.tables.append(table)
    report.series.append(series)

    report.summary = {
        "min_rounds_per_second": round(
            min(r["rounds_per_second"] for r in rows)
        )
    }
    if speedups:
        report.summary["fast_path_speedup_geomean"] = round(
            geometric_mean(speedups), 3
        )
    return report
