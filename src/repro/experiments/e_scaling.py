"""EXP-S: simulator throughput scaling.

An engineering baseline rather than a paper claim: rounds-per-second of
the batched engine across a (resources, colors, horizon) grid, so
performance regressions in the hot loop show up in benchmark history.

Each grid cell is timed in both record modes — ``"full"`` (schedule +
trace, the verification path) and ``"costs"`` (the fast path sweeps and
searches use) — so the fast-path speedup is itself a tracked number.  A
second, sparse-friendly grid (many colors, large delay bounds, low load)
times the ``"costs"`` mode under both engine cores — ``dense`` (every
round simulated) and ``sparse`` (boundary calendar + inactive-stretch
fast-forward) — so the sparse-core speedup and the active-round fraction
are tracked too.  A third grid does the same head-to-head for the
*general* engine (per-job arrivals, ``engine="general-dense"`` vs
``"general-sparse"``), which gained the deadline calendar and
fixed-point fast-forward of the sparse core; its speedup geomean is the
tracked evidence that reduction pipelines run sparse end to end.  The
dense grid additionally runs a ``dense`` vs ``vectorized`` head-to-head
in costs mode (skipped when the ``repro[vec]`` numpy extra is missing);
the vectorized core's ≥10x speedup over the dense core on these cells is
a bench acceptance floor.  Cells
are independent and dispatch through an optional
:class:`~repro.runtime.parallel.ParallelRunner`; per-cell workload seeds
are derived with :func:`~repro.runtime.seeding.derive_seed` so the grid
is reproducible regardless of execution order.  The measured rows feed
``BENCH_engine.json`` (see ``benchmarks/bench_engine_scaling.py``).
"""

from __future__ import annotations

from repro.algorithms.dlru_edf import DeltaLRUEDF
from repro.analysis.report import Series, Table, geometric_mean
from repro.experiments.base import ExperimentReport
from repro.runtime.parallel import ParallelRunner
from repro.runtime.seeding import derive_seed
from repro.simulation.engine import simulate
from repro.workloads.random_batched import random_rate_limited

DEFAULT_GRID: tuple[tuple[int, int, int], ...] = (
    (8, 4, 256),
    (16, 8, 256),
    (32, 16, 256),
    (16, 8, 1024),
    (16, 8, 4096),
)

#: Sparse-friendly cells: many colors with large delay bounds at low
#: load, so most rounds are boundary-free and most queues drain — the
#: regime the sparse engine core fast-forwards through.
SPARSE_GRID: tuple[tuple[int, int, int], ...] = ((64, 128, 4096),)

#: General-engine cells (per-job arrivals): low Poisson rate with large
#: delay bounds leaves long arrival-free stretches for the deadline
#: calendar + fixed-point fast-forward to skip; capacity covers the
#: color universe so queues actually drain between arrivals.
GENERAL_GRID: tuple[tuple[int, int, int], ...] = ((16, 16, 512), (16, 16, 4096))

DENSE_WORKLOAD = {"load": 0.6, "bound_choices": (2, 4, 8, 16)}
SPARSE_WORKLOAD = {"load": 0.2, "bound_choices": (64, 128, 256)}
#: ``load`` doubles as the per-round Poisson rate for general cells.
GENERAL_WORKLOAD = {"load": 0.02, "bound_choices": (64, 128, 256)}


def _scaling_cell(task: tuple) -> dict:
    """Time one (config, record mode, engine) cell; module-level so it pickles."""
    resources, colors, horizon, delta, seed, record, load, bounds, engine = task
    cell_seed = derive_seed(seed, resources, colors, horizon)
    if engine.startswith("general"):
        from repro.algorithms.greedy import GreedyPendingPolicy
        from repro.simulation.general import simulate_general
        from repro.workloads.random_batched import random_general

        instance = random_general(
            colors,
            delta,
            horizon,
            seed=cell_seed,
            rate=load,
            bound_choices=bounds,
        )
        result = simulate_general(
            instance,
            GreedyPendingPolicy(),
            resources,
            record=record,
            sparse=(engine == "general-sparse"),
        )
    else:
        instance = random_rate_limited(
            colors,
            delta,
            horizon,
            seed=cell_seed,
            load=load,
            bound_choices=bounds,
        )
        result = simulate(
            instance,
            DeltaLRUEDF(),
            resources,
            record=record,
            engine=engine,
        )
    elapsed = result.wall_seconds
    return {
        "resources": resources,
        "colors": colors,
        "horizon": horizon,
        "jobs": len(instance.sequence),
        "record": record,
        "engine": engine,
        "load": load,
        "seconds": elapsed,
        "rounds_per_second": result.rounds_per_second,
        "jobs_per_second": len(instance.sequence) / elapsed if elapsed > 0 else 0.0,
        "active_round_fraction": result.active_round_fraction,
        "total_cost": result.total_cost,
    }


def run(
    *,
    grid: tuple[tuple[int, int, int], ...] = DEFAULT_GRID,
    sparse_grid: tuple[tuple[int, int, int], ...] = SPARSE_GRID,
    general_grid: tuple[tuple[int, int, int], ...] = GENERAL_GRID,
    delta: int = 4,
    seed: int = 0,
    record_modes: tuple[str, ...] = ("full", "costs"),
    runner: ParallelRunner | None = None,
) -> ExperimentReport:
    report = ExperimentReport("EXP-S", "Simulator throughput scaling")
    tasks = [
        (
            resources,
            colors,
            horizon,
            delta,
            seed,
            record,
            DENSE_WORKLOAD["load"],
            DENSE_WORKLOAD["bound_choices"],
            "sparse",
        )
        for resources, colors, horizon in grid
        for record in record_modes
    ]
    # Dense cells compare the vectorized core against the dense core head
    # to head on the fast path; the ≥10x floor on this speedup is a bench
    # acceptance gate.  Skipped cleanly when the repro[vec] extra (numpy)
    # is unavailable.
    from repro.simulation.vectorized import numpy_available

    if numpy_available():
        tasks += [
            (
                resources,
                colors,
                horizon,
                delta,
                seed,
                "costs",
                DENSE_WORKLOAD["load"],
                DENSE_WORKLOAD["bound_choices"],
                engine,
            )
            for resources, colors, horizon in grid
            for engine in ("dense", "vectorized")
        ]
    # Sparse-friendly cells compare the two engine cores head to head on
    # the fast path the sweeps and searches actually use.
    tasks += [
        (
            resources,
            colors,
            horizon,
            delta,
            seed,
            "costs",
            SPARSE_WORKLOAD["load"],
            SPARSE_WORKLOAD["bound_choices"],
            engine,
        )
        for resources, colors, horizon in sparse_grid
        for engine in ("dense", "sparse")
    ]
    # Same head-to-head for the general (per-job arrival) engine, which
    # is what the reduction pipelines ultimately drive.
    tasks += [
        (
            resources,
            colors,
            horizon,
            delta,
            seed,
            "costs",
            GENERAL_WORKLOAD["load"],
            GENERAL_WORKLOAD["bound_choices"],
            engine,
        )
        for resources, colors, horizon in general_grid
        for engine in ("general-dense", "general-sparse")
    ]
    rows = (
        runner.map(_scaling_cell, tasks)
        if runner is not None
        else [_scaling_cell(task) for task in tasks]
    )
    report.rows.extend(rows)

    general_rows = [
        row for row in rows if row["engine"].startswith("general")
    ]
    batched_rows = [
        row for row in rows if not row["engine"].startswith("general")
    ]
    grid_rows = [
        row for row in batched_rows if row["load"] == DENSE_WORKLOAD["load"]
    ]
    sparse_rows = [
        row for row in batched_rows if row["load"] == SPARSE_WORKLOAD["load"]
    ]
    # The dense grid carries two row families: record-mode rows on the
    # default (sparse) core, and the dense-vs-vectorized head-to-head.
    record_mode_rows = [r for r in grid_rows if r["engine"] == "sparse"]
    engine_dim_rows = [r for r in grid_rows if r["engine"] != "sparse"]

    by_config: dict[tuple[int, int, int], dict[str, dict]] = {}
    for row in record_mode_rows:
        key = (row["resources"], row["colors"], row["horizon"])
        by_config.setdefault(key, {})[row["record"]] = row

    columns = ["resources", "colors", "horizon", "jobs"]
    for record in record_modes:
        columns += [f"{record} s", f"{record} rounds/s"]
    if {"full", "costs"} <= set(record_modes):
        columns.append("speedup")
    table = Table("ΔLRU-EDF engine throughput by record mode", tuple(columns))
    series = Series("Rounds per second by configuration", "config", "rounds/s")
    speedups = []
    for (resources, colors, horizon), cells in by_config.items():
        any_cell = next(iter(cells.values()))
        row_values = [resources, colors, horizon, any_cell["jobs"]]
        for record in record_modes:
            cell = cells[record]
            row_values += [
                round(cell["seconds"], 4),
                round(cell["rounds_per_second"]),
            ]
        if "full" in cells and "costs" in cells:
            full_s, costs_s = cells["full"]["seconds"], cells["costs"]["seconds"]
            speedup = full_s / costs_s if costs_s > 0 else 0.0
            speedups.append(speedup)
            row_values.append(round(speedup, 2))
        table.add_row(*row_values)
        label = f"n={resources},C={colors},H={horizon}"
        best = max(cell["rounds_per_second"] for cell in cells.values())
        series.add(label, best)
    report.tables.append(table)
    report.series.append(series)

    vec_by_config: dict[tuple[int, int, int], dict[str, dict]] = {}
    for row in engine_dim_rows:
        key = (row["resources"], row["colors"], row["horizon"])
        vec_by_config.setdefault(key, {})[row["engine"]] = row
    vectorized_speedups = []
    if vec_by_config:
        vec_table = Table(
            "Vectorized core vs dense core (costs mode, dense cells)",
            (
                "resources",
                "colors",
                "horizon",
                "dense s",
                "vectorized s",
                "speedup",
                "vec rounds/s",
            ),
        )
        for (resources, colors, horizon), cells in vec_by_config.items():
            dense_s = cells["dense"]["seconds"]
            vec_s = cells["vectorized"]["seconds"]
            speedup = dense_s / vec_s if vec_s > 0 else 0.0
            vectorized_speedups.append(speedup)
            vec_table.add_row(
                resources,
                colors,
                horizon,
                round(dense_s, 4),
                round(vec_s, 4),
                round(speedup, 2),
                round(cells["vectorized"]["rounds_per_second"]),
            )
        report.tables.append(vec_table)

    sparse_by_config: dict[tuple[int, int, int], dict[str, dict]] = {}
    for row in sparse_rows:
        key = (row["resources"], row["colors"], row["horizon"])
        sparse_by_config.setdefault(key, {})[row["engine"]] = row
    sparse_speedups = []
    if sparse_by_config:
        sparse_table = Table(
            "Sparse core vs dense core (costs mode, sparse-friendly cells)",
            (
                "resources",
                "colors",
                "horizon",
                "dense s",
                "sparse s",
                "speedup",
                "active fraction",
            ),
        )
        for (resources, colors, horizon), cells in sparse_by_config.items():
            dense_s = cells["dense"]["seconds"]
            sparse_s = cells["sparse"]["seconds"]
            speedup = dense_s / sparse_s if sparse_s > 0 else 0.0
            sparse_speedups.append(speedup)
            sparse_table.add_row(
                resources,
                colors,
                horizon,
                round(dense_s, 4),
                round(sparse_s, 4),
                round(speedup, 2),
                round(cells["sparse"]["active_round_fraction"], 3),
            )
        report.tables.append(sparse_table)

    general_by_config: dict[tuple[int, int, int], dict[str, dict]] = {}
    for row in general_rows:
        key = (row["resources"], row["colors"], row["horizon"])
        general_by_config.setdefault(key, {})[row["engine"]] = row
    general_speedups = []
    if general_by_config:
        general_table = Table(
            "General engine: sparse vs dense (costs mode, per-job arrivals)",
            (
                "resources",
                "colors",
                "horizon",
                "dense s",
                "sparse s",
                "speedup",
                "active fraction",
            ),
        )
        for (resources, colors, horizon), cells in general_by_config.items():
            dense_s = cells["general-dense"]["seconds"]
            sparse_s = cells["general-sparse"]["seconds"]
            speedup = dense_s / sparse_s if sparse_s > 0 else 0.0
            general_speedups.append(speedup)
            general_table.add_row(
                resources,
                colors,
                horizon,
                round(dense_s, 4),
                round(sparse_s, 4),
                round(speedup, 2),
                round(cells["general-sparse"]["active_round_fraction"], 3),
            )
        report.tables.append(general_table)

    report.summary = {
        "min_rounds_per_second": round(
            min(r["rounds_per_second"] for r in record_mode_rows)
        )
    }
    if vectorized_speedups:
        report.summary["vectorized_speedup_geomean"] = round(
            geometric_mean(vectorized_speedups), 3
        )
        report.summary["vectorized_min_speedup"] = round(
            min(vectorized_speedups), 3
        )
    if speedups:
        report.summary["fast_path_speedup_geomean"] = round(
            geometric_mean(speedups), 3
        )
    if sparse_speedups:
        report.summary["sparse_core_speedup_geomean"] = round(
            geometric_mean(sparse_speedups), 3
        )
        report.summary["min_active_round_fraction"] = round(
            min(r["active_round_fraction"] for r in sparse_rows), 3
        )
    if general_speedups:
        report.summary["general_sparse_speedup_geomean"] = round(
            geometric_mean(general_speedups), 3
        )
        report.summary["general_min_active_round_fraction"] = round(
            min(
                r["active_round_fraction"]
                for r in general_rows
                if r["engine"] == "general-sparse"
            ),
            3,
        )
    return report
