"""EXP-S: simulator throughput scaling.

An engineering baseline rather than a paper claim: rounds-per-second of
the batched engine across a (resources, colors, horizon) grid, so
performance regressions in the hot loop show up in benchmark history.
"""

from __future__ import annotations

import time

from repro.algorithms.dlru_edf import DeltaLRUEDF
from repro.analysis.report import Series, Table
from repro.experiments.base import ExperimentReport
from repro.simulation.engine import simulate
from repro.workloads.random_batched import random_rate_limited


def run(
    *,
    grid: tuple[tuple[int, int, int], ...] = (
        (8, 4, 256),
        (16, 8, 256),
        (32, 16, 256),
        (16, 8, 1024),
        (16, 8, 4096),
    ),
    delta: int = 4,
    seed: int = 0,
) -> ExperimentReport:
    report = ExperimentReport("EXP-S", "Simulator throughput scaling")
    table = Table(
        "ΔLRU-EDF engine throughput",
        ("resources", "colors", "horizon", "jobs", "seconds", "rounds/s", "jobs/s"),
    )
    series = Series("Rounds per second by configuration", "config", "rounds/s")
    for resources, colors, horizon in grid:
        instance = random_rate_limited(
            colors, delta, horizon, seed=seed, load=0.6, bound_choices=(2, 4, 8, 16)
        )
        start = time.perf_counter()
        result = simulate(instance, DeltaLRUEDF(), resources)
        elapsed = time.perf_counter() - start
        rounds_per_s = instance.horizon / elapsed
        jobs_per_s = len(instance.sequence) / elapsed
        label = f"n={resources},C={colors},H={horizon}"
        table.add_row(
            resources,
            colors,
            horizon,
            len(instance.sequence),
            round(elapsed, 4),
            round(rounds_per_s),
            round(jobs_per_s),
        )
        series.add(label, rounds_per_s)
        report.rows.append(
            {
                "resources": resources,
                "colors": colors,
                "horizon": horizon,
                "jobs": len(instance.sequence),
                "seconds": elapsed,
                "rounds_per_second": rounds_per_s,
                "total_cost": result.total_cost,
            }
        )
    report.tables.append(table)
    report.series.append(series)
    report.summary = {
        "min_rounds_per_second": round(
            min(r["rounds_per_second"] for r in report.rows)
        )
    }
    return report
