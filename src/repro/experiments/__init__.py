"""The experiment harness: one module per paper claim.

Every experiment is a pure function from parameters to an
:class:`~repro.experiments.base.ExperimentReport` (tables, series, raw
rows, summary).  The registry maps experiment ids (``EXP-A`` ... ``EXP-S``,
see DESIGN.md) to runners; the CLI and the benchmark suite are thin
wrappers around it.
"""

from repro.experiments.base import ExperimentReport
from repro.experiments.registry import EXPERIMENTS, get_experiment, run_experiment

__all__ = ["ExperimentReport", "EXPERIMENTS", "get_experiment", "run_experiment"]
