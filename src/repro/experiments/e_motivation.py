"""EXP-M: the introduction's dilemma — thrashing vs underutilization.

On the background-plus-short-term scenario of Section 1, compare:

* the two degenerate strategies (never reconfigure, always chase),
* greedy with small and large hysteresis (the two "basic approaches"),
* pure ΔLRU (underutilizes: recent-but-idle colors hog the cache),
* pure EDF (thrashes: the background color swaps in and out),
* ΔLRU-EDF (the paper's combination).

The table splits every policy's cost into reconfiguration and drop parts,
making the thrash/underutilize signature directly visible.
"""

from __future__ import annotations

from repro.algorithms.dlru import DeltaLRU
from repro.algorithms.dlru_edf import DeltaLRUEDF
from repro.algorithms.edf import EDF
from repro.algorithms.greedy import GreedyPendingPolicy
from repro.algorithms.never import AlwaysReconfigurePolicy, NeverReconfigurePolicy
from repro.analysis.report import Series, Table
from repro.experiments.base import ExperimentReport
from repro.simulation.engine import simulate
from repro.simulation.general import simulate_general
from repro.workloads.datacenter import motivation_scenario


def run(
    *,
    n: int = 8,
    seed: int = 0,
    horizon: int = 1024,
    delta: int = 4,
) -> ExperimentReport:
    report = ExperimentReport(
        "EXP-M", "Introduction scenario: thrashing vs underutilization"
    )
    instance = motivation_scenario(
        seed=seed,
        horizon=horizon,
        delta=delta,
        num_short_colors=3,
        short_bound=4,
        long_bound=256,
        backlog=200,
    )
    table = Table(
        "Policies on the background + short-term scenario",
        ("policy", "total", "reconfig cost", "drop cost", "reconfigs", "drops"),
    )
    split = Series("Reconfig share of total cost", "policy", "reconfig fraction")

    runs = []
    for scheme in (DeltaLRUEDF(), DeltaLRU(), EDF()):
        runs.append((scheme.name, simulate(instance, scheme, n)))
    for policy in (
        GreedyPendingPolicy(hysteresis=0.0),
        GreedyPendingPolicy(hysteresis=4.0),
        AlwaysReconfigurePolicy(),
        NeverReconfigurePolicy(),
    ):
        label = policy.name
        if isinstance(policy, GreedyPendingPolicy):
            label = f"{policy.name}(h={policy.hysteresis})"
        runs.append((label, simulate_general(instance, policy, n, copies=2)))

    for label, result in runs:
        cost = result.cost
        table.add_row(
            label,
            cost.total,
            cost.reconfig_cost,
            cost.drop_cost,
            cost.num_reconfigs,
            cost.num_drops,
        )
        split.add(label, cost.reconfig_cost / cost.total if cost.total else 0.0)
        report.rows.append(
            {
                "policy": label,
                "total": cost.total,
                "reconfig_cost": cost.reconfig_cost,
                "drop_cost": cost.drop_cost,
            }
        )
    report.tables.append(table)
    report.series.append(split)
    combined = next(r for r in report.rows if r["policy"] == "dLRU-EDF")
    others = [r for r in report.rows if r["policy"] != "dLRU-EDF"]
    report.summary = {
        "dlru_edf_total": combined["total"],
        "best_other_total": min(r["total"] for r in others),
        "worst_other_total": max(r["total"] for r in others),
        "combined_beats_all": combined["total"]
        <= min(r["total"] for r in others),
    }
    return report
