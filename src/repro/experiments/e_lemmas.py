"""EXP-L: the lemma-level cost inequalities of Section 3.2, audited on
real ΔLRU-EDF runs.

For every workload the table reports both sides of:

* Lemma 3.3 — logical reconfiguration cost vs ``4 * numEpochs * Δ``;
* Lemma 3.4 — ineligible drop cost vs ``numEpochs * Δ``;
* Lemma 3.10 / Corollary 3.1 — the eligible-drop containment chain
  through DS-Seq-EDF and Par-EDF (the constructive core of Lemma 3.2);
* Lemma 3.1 — on sparse instances (< Δ jobs per color), ΔLRU-EDF costs
  no more than the exact offline optimum.
"""

from __future__ import annotations

from repro.algorithms.dlru_edf import DeltaLRUEDF
from repro.analysis.credits import per_epoch_ineligible_drops
from repro.analysis.invariants import (
    check_drop_containment_chain,
    check_lemma_3_3,
    check_lemma_3_4,
)
from repro.analysis.report import Table
from repro.experiments.base import ExperimentReport
from repro.offline.optimal import optimal_offline
from repro.simulation.engine import simulate
from repro.workloads.bursty import bursty_rate_limited
from repro.workloads.random_batched import random_rate_limited


def run(
    *,
    n: int = 16,
    seeds: tuple[int, ...] = (0, 1, 2, 3),
    horizon: int = 64,
    delta: int = 3,
) -> ExperimentReport:
    report = ExperimentReport(
        "EXP-L", "Lemmas 3.1-3.4: per-run inequality audits on ΔLRU-EDF"
    )
    table = Table(
        "Inequality sides per workload (lhs <= rhs everywhere)",
        (
            "workload",
            "L3.3 lhs",
            "L3.3 rhs",
            "L3.4 lhs",
            "L3.4 rhs",
            "L3.10 lhs",
            "L3.10 rhs",
            "C3.1 lhs",
            "C3.1 rhs",
            "all hold",
        ),
    )

    def cases():
        for seed in seeds:
            yield (
                f"random(seed={seed})",
                random_rate_limited(
                    6, delta, horizon, seed=seed, load=0.7, bound_choices=(2, 4, 8)
                ),
            )
            yield (
                f"bursty(seed={seed})",
                bursty_rate_limited(
                    6, delta, horizon, seed=seed, bound_choices=(2, 4, 8)
                ),
            )

    all_hold = True
    for label, instance in cases():
        result = simulate(instance, DeltaLRUEDF(), n)
        l33 = check_lemma_3_3(result)
        l34 = check_lemma_3_4(result)
        chain = check_drop_containment_chain(result)
        per_epoch = per_epoch_ineligible_drops(result)
        per_epoch_ok = all(v <= instance.reconfig_cost for v in per_epoch.values())
        holds = (
            l33.holds
            and l34.holds
            and all(link.holds for link in chain)
            and per_epoch_ok
        )
        all_hold = all_hold and holds
        table.add_row(
            label,
            l33.lhs,
            l33.rhs,
            l34.lhs,
            l34.rhs,
            chain[0].lhs,
            chain[0].rhs,
            chain[1].lhs,
            chain[1].rhs,
            holds,
        )
        report.rows.append(
            {
                "workload": label,
                "lemma_3_3": (l33.lhs, l33.rhs),
                "lemma_3_4": (l34.lhs, l34.rhs),
                "lemma_3_10": (chain[0].lhs, chain[0].rhs),
                "corollary_3_1": (chain[1].lhs, chain[1].rhs),
                "per_epoch_ok": per_epoch_ok,
                "holds": holds,
            }
        )
    report.tables.append(table)

    # Lemma 3.1: sparse instances (< Δ jobs per color).
    sparse_table = Table(
        "Lemma 3.1: sparse instances (every color has < Δ jobs)",
        ("workload", "dLRU-EDF cost", "exact OFF cost", "holds"),
    )
    for seed in seeds[:2]:
        instance = random_rate_limited(
            3, 8, 16, seed=seed, load=0.2, bound_choices=(2, 4)
        )
        counts = instance.sequence.count_by_color()
        if any(c >= instance.reconfig_cost for c in counts.values()):
            keep = [
                j
                for j in instance.sequence
                if counts[j.color] < instance.reconfig_cost
            ]
            from repro.core.instance import Instance, RequestSequence

            instance = Instance(
                instance.spec,
                RequestSequence(keep, instance.horizon),
                name=instance.name + "|sparse",
            )
        result = simulate(instance, DeltaLRUEDF(), n)
        opt = optimal_offline(instance, max(1, n // 8))
        holds = result.total_cost <= opt.cost
        all_hold = all_hold and holds
        sparse_table.add_row(
            f"sparse(seed={seed})", result.total_cost, opt.cost, holds
        )
        report.rows.append(
            {
                "workload": f"sparse(seed={seed})",
                "lemma_3_1": (result.total_cost, opt.cost),
                "holds": holds,
            }
        )
    report.tables.append(sparse_table)
    report.summary = {"all_inequalities_hold": all_hold}
    return report
