"""Sweep utilities: run a matrix of (instance, scheme) cells.

The experiments share a pattern — run several algorithms over several
instances, collect a numpy cost matrix, summarize.  ``run_matrix`` does
it once, properly: one fresh scheme per cell (schemes are stateful), all
schedules verified, vectorized summaries.

Cells are independent, so the matrix dispatches through a
:class:`~repro.runtime.parallel.ParallelRunner` when one is supplied,
and ``record="costs"`` selects the engine fast path (no trace/schedule
objects) when only the cost matrices are needed — the common case for
large grids.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.core.instance import Instance
from repro.runtime.parallel import ParallelRunner
from repro.simulation.engine import ReconfigurationScheme, RunResult, simulate


@dataclass
class SweepResult:
    """Cost matrix (schemes x instances) plus the underlying runs."""

    scheme_names: tuple[str, ...]
    instance_names: tuple[str, ...]
    total_costs: np.ndarray  # shape (schemes, instances), int64
    reconfig_costs: np.ndarray
    drop_costs: np.ndarray
    runs: list[list[RunResult]]

    def best_scheme_per_instance(self) -> list[str]:
        """Name of the cheapest scheme for each instance column."""
        winners = np.argmin(self.total_costs, axis=0)
        return [self.scheme_names[int(w)] for w in winners]

    def mean_cost_per_scheme(self) -> dict[str, float]:
        means = self.total_costs.mean(axis=1)
        return {
            name: float(mean)
            for name, mean in zip(self.scheme_names, means)
        }

    def relative_to(self, baseline: str) -> np.ndarray:
        """Cost of every scheme divided by the baseline scheme's cost.

        Columns where the baseline is free are not clamped: a scheme
        that pays anything against a zero-cost baseline is infinitely
        worse (``inf``), and one that is also free ties at 1.0.
        Understating those ratios by flooring the denominator would hide
        exactly the blowups the adversarial experiments look for.
        """
        index = self.scheme_names.index(baseline)
        base = self.total_costs[index].astype(np.float64)
        with np.errstate(divide="ignore", invalid="ignore"):
            ratios = self.total_costs / base
        zero_base = base == 0
        if np.any(zero_base):
            ratios[:, zero_base] = np.where(
                self.total_costs[:, zero_base] == 0, 1.0, np.inf
            )
        return ratios


def _run_cell(task: tuple) -> tuple[RunResult, dict | None]:
    """One (instance, scheme) cell; module-level so it pickles to workers.

    Returns ``(result, metrics_snapshot)``; the snapshot is ``None``
    unless the task asks for one (``publish=`` / live telemetry), and is
    a plain dict so it crosses the process boundary and folds into any
    parent registry via ``merge_snapshot``.
    """
    (
        instance,
        factory,
        num_resources,
        copies,
        speed,
        verify,
        record,
        engine,
        with_metrics,
    ) = task
    registry = None
    if with_metrics:
        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry()
    result = simulate(
        instance,
        factory(),
        num_resources,
        copies=copies,
        speed=speed,
        record=record,
        engine=engine,
        registry=registry,
    )
    if verify:
        result.verify(strict=True)
    return result, registry.snapshot() if registry is not None else None


def run_matrix(
    instances: Sequence[Instance],
    scheme_factories: Sequence[Callable[[], ReconfigurationScheme]],
    num_resources: int,
    *,
    copies: int = 2,
    speed: int = 1,
    verify: bool = True,
    record: str = "full",
    engine: str | None = None,
    runner: ParallelRunner | None = None,
    recorder=None,
    publish: Callable[[dict], None] | None = None,
    series=None,
) -> SweepResult:
    """Simulate every scheme on every instance; return the matrices.

    ``record="costs"`` runs the engine fast path (implies ``verify=False``
    since no schedule exists to check).  ``engine`` selects the backend
    per :func:`repro.simulation.engine.simulate` (``"vectorized"``
    requires the ``repro[vec]`` extra).  Pass a ``runner`` to fan the
    cells out over worker processes; results are identical to a serial
    run — cells are pure and ordered.

    Observability hooks (both optional, both off by default):

    ``recorder``
        A :class:`~repro.obs.registry.RegistrySink`; every cell is
        appended to the persistent run registry as a ``kind="matrix"``
        :class:`~repro.obs.registry.RunRecord` after the grid completes.
    ``publish``
        A callable receiving one metrics-registry *snapshot dict* per
        cell (e.g. :meth:`repro.obs.service.OpsState.publish_snapshot`).
        Cells then carry a private
        :class:`~repro.obs.metrics.MetricsRegistry` whose snapshot flows
        back from the worker process and is published *as each chunk
        completes* — a live ``repro serve`` endpoint sees the matrix
        fill in while it runs.  Merging every worker snapshot into one
        registry reproduces exactly the single-process registry a serial
        run would have built (``merge_snapshot`` is associative).
    ``series``
        A :class:`~repro.obs.timeseries.SeriesRecorder`; cell metric
        snapshots are folded into its registry *in task order* and the
        recorder is sampled once per cell (clock = cell index), so the
        matrix leaves a per-cell metric history — identical for serial
        and parallel runners, because the fold runs over the ordered
        result list, not completion order.
    """
    if not instances or not scheme_factories:
        raise ValueError("need at least one instance and one scheme")
    names = [factory().name for factory in scheme_factories]
    duplicates = sorted({name for name in names if names.count(name) > 1})
    if duplicates:
        raise ValueError(
            "duplicate scheme names in the matrix: "
            + ", ".join(duplicates)
            + "; summaries key rows by name, so each factory must produce "
            "a uniquely named scheme"
        )
    if record == "costs":
        verify = False
    with_metrics = publish is not None or series is not None
    tasks = [
        (
            instance,
            factory,
            num_resources,
            copies,
            speed,
            verify,
            record,
            engine,
            with_metrics,
        )
        for factory in scheme_factories
        for instance in instances
    ]

    def _publish_outputs(outputs) -> None:
        for _result, snapshot in outputs:
            if snapshot is not None:
                publish(snapshot)

    on_progress = _publish_outputs if publish is not None else None
    if runner is not None:
        cells = runner.map(_run_cell, tasks, progress=on_progress)
    else:
        cells = []
        for task in tasks:
            output = _run_cell(task)
            if on_progress is not None:
                on_progress([output])
            cells.append(output)
    shape = (len(scheme_factories), len(instances))
    totals = np.zeros(shape, dtype=np.int64)
    reconfigs = np.zeros(shape, dtype=np.int64)
    drops = np.zeros(shape, dtype=np.int64)
    runs: list[list[RunResult]] = []
    for i in range(len(scheme_factories)):
        row = [cell for cell, _snapshot in cells[i * len(instances) : (i + 1) * len(instances)]]
        for j, result in enumerate(row):
            totals[i, j] = result.total_cost
            reconfigs[i, j] = result.cost.reconfig_cost
            drops[i, j] = result.cost.drop_cost
        runs.append(row)
    if recorder is not None:
        for result, snapshot in cells:
            recorder.record_simulate(
                result,
                engine=engine,
                kind="matrix",
                metrics_snapshot=snapshot,
            )
    if series is not None:
        for index, (_result, snapshot) in enumerate(cells):
            if snapshot is not None:
                series.registry.merge_snapshot(snapshot)
            series.sample(index)
    return SweepResult(
        scheme_names=tuple(names),
        instance_names=tuple(
            instance.name or f"instance-{j}" for j, instance in enumerate(instances)
        ),
        total_costs=totals,
        reconfig_costs=reconfigs,
        drop_costs=drops,
        runs=runs,
    )
