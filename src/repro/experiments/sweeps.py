"""Sweep utilities: run a matrix of (instance, scheme) cells.

The experiments share a pattern — run several algorithms over several
instances, collect a numpy cost matrix, summarize.  ``run_matrix`` does
it once, properly: one fresh scheme per cell (schemes are stateful), all
schedules verified, vectorized summaries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.core.instance import Instance
from repro.simulation.engine import ReconfigurationScheme, RunResult, simulate


@dataclass
class SweepResult:
    """Cost matrix (schemes x instances) plus the underlying runs."""

    scheme_names: tuple[str, ...]
    instance_names: tuple[str, ...]
    total_costs: np.ndarray  # shape (schemes, instances), int64
    reconfig_costs: np.ndarray
    drop_costs: np.ndarray
    runs: list[list[RunResult]]

    def best_scheme_per_instance(self) -> list[str]:
        """Name of the cheapest scheme for each instance column."""
        winners = np.argmin(self.total_costs, axis=0)
        return [self.scheme_names[int(w)] for w in winners]

    def mean_cost_per_scheme(self) -> dict[str, float]:
        means = self.total_costs.mean(axis=1)
        return {
            name: float(mean)
            for name, mean in zip(self.scheme_names, means)
        }

    def relative_to(self, baseline: str) -> np.ndarray:
        """Cost of every scheme divided by the baseline scheme's cost."""
        index = self.scheme_names.index(baseline)
        base = np.maximum(self.total_costs[index], 1)
        return self.total_costs / base


def run_matrix(
    instances: Sequence[Instance],
    scheme_factories: Sequence[Callable[[], ReconfigurationScheme]],
    num_resources: int,
    *,
    copies: int = 2,
    speed: int = 1,
    verify: bool = True,
) -> SweepResult:
    """Simulate every scheme on every instance; return the matrices."""
    if not instances or not scheme_factories:
        raise ValueError("need at least one instance and one scheme")
    runs: list[list[RunResult]] = []
    shape = (len(scheme_factories), len(instances))
    totals = np.zeros(shape, dtype=np.int64)
    reconfigs = np.zeros(shape, dtype=np.int64)
    drops = np.zeros(shape, dtype=np.int64)
    names: list[str] = []
    for i, factory in enumerate(scheme_factories):
        row: list[RunResult] = []
        for j, instance in enumerate(instances):
            result = simulate(
                instance, factory(), num_resources, copies=copies, speed=speed
            )
            if verify:
                result.verify(strict=True)
            totals[i, j] = result.total_cost
            reconfigs[i, j] = result.cost.reconfig_cost
            drops[i, j] = result.cost.drop_cost
            row.append(result)
        runs.append(row)
        names.append(row[0].algorithm)
    return SweepResult(
        scheme_names=tuple(names),
        instance_names=tuple(
            instance.name or f"instance-{j}" for j, instance in enumerate(instances)
        ),
        total_costs=totals,
        reconfig_costs=reconfigs,
        drop_costs=drops,
        runs=runs,
    )
