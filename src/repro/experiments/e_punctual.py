"""EXP-P: the punctualization constants of Section 5.2, measured.

Lemma 5.3 turns any m-resource offline schedule into a *punctual* one on
``7m`` resources at O(1)x reconfiguration cost with zero extra drops.
For exact optimal schedules over random general workloads we measure:

* the reconfiguration cost factor (paper budget: a small constant;
  the proofs' credits allow ~12x worst case);
* the timing mix of the input schedules (how much early/late execution
  an optimal schedule actually uses — the quantity VarBatch sacrifices);
* drop parity and feasibility (asserted, not just reported).
"""

from __future__ import annotations

from repro.analysis.report import Series, Table, geometric_mean
from repro.core.validation import verify_schedule
from repro.experiments.base import ExperimentReport
from repro.offline.optimal import optimal_offline
from repro.reductions.punctual import punctualize_schedule, split_by_timing
from repro.reductions.varbatch import varbatch_instance
from repro.workloads.random_batched import random_general


def run(
    *,
    seeds: tuple[int, ...] = (0, 1, 2, 3, 4, 5),
    horizon: int = 64,
    num_colors: int = 3,
    m: int = 2,
    exact_state_budget: int = 700_000,
) -> ExperimentReport:
    # horizon 64 (was 20): the RDS solver reaches it in fewer nodes than
    # the legacy branch-and-bound spent at 20, so the punctualization
    # constants are now measured on 3x longer exact OPT schedules.
    report = ExperimentReport(
        "EXP-P", "Lemma 5.3: punctualization factors on exact optimal schedules"
    )
    table = Table(
        "Punctualizing OPT(m) onto 7m resources",
        (
            "workload",
            "OPT reconfig",
            "punctual reconfig",
            "factor",
            "early %",
            "punctual %",
            "late %",
            "transfers to σ'",
        ),
    )
    factors = Series("Reconfiguration factor per workload", "workload", "factor")
    for seed in seeds:
        instance = random_general(
            num_colors, 2, horizon, seed=seed, rate=0.4, bound_choices=(2, 4)
        )
        if len(instance.sequence) == 0:
            continue
        opt = optimal_offline(instance, m, max_states=exact_state_budget)
        punctual = punctualize_schedule(opt.schedule, instance)
        verify_schedule(instance, punctual).raise_if_invalid()
        assert punctual.executed_jids == opt.schedule.executed_jids

        timings = split_by_timing(opt.schedule, instance)
        executed = max(len(opt.schedule.executions), 1)
        shares = {
            key: 100.0 * len(events) / executed
            for key, events in timings.items()
        }
        in_cost = opt.schedule.cost(instance.sequence.jobs, instance.cost_model)
        out_cost = punctual.cost(instance.sequence.jobs, instance.cost_model)
        denominator = max(in_cost.reconfig_cost, instance.reconfig_cost)
        factor = out_cost.reconfig_cost / denominator
        batched = varbatch_instance(instance)
        transfer = verify_schedule(batched, punctual).ok

        label = f"general(seed={seed})"
        table.add_row(
            label,
            in_cost.reconfig_cost,
            out_cost.reconfig_cost,
            round(factor, 2),
            round(shares["early"], 1),
            round(shares["punctual"], 1),
            round(shares["late"], 1),
            transfer,
        )
        factors.add(label, factor)
        report.rows.append(
            {
                "workload": label,
                "opt_reconfig": in_cost.reconfig_cost,
                "punctual_reconfig": out_cost.reconfig_cost,
                "factor": factor,
                "early_share": shares["early"],
                "late_share": shares["late"],
                "transfers": transfer,
            }
        )
    report.tables.append(table)
    report.series.append(factors)
    values = [row["factor"] for row in report.rows]
    report.summary = {
        "max_factor": round(max(values), 3),
        "geomean_factor": round(geometric_mean(values), 3),
        "all_transfer": all(row["transfers"] for row in report.rows),
    }
    return report
