"""EXP-T3: Theorem 3 — Algorithm VarBatch is resource competitive on the
main problem ``[Δ | 1 | D_ℓ | 1]`` (arbitrary arrival rounds).

The full online stack (VarBatch → Distribute → ΔLRU-EDF) runs on general
workloads — Poisson, heavy-tail, datacenter phases, router traffic — and
is measured against the offline estimate with ``m = n/8``.  A second
table exercises the §5.3 extension on non-power-of-two delay bounds.
"""

from __future__ import annotations

from repro.analysis.competitive import best_effort_ratio
from repro.analysis.report import Series, Table, geometric_mean
from repro.experiments.base import ExperimentReport
from repro.reductions.pipeline import run_pipeline
from repro.workloads.datacenter import datacenter_scenario
from repro.workloads.poisson import poisson_general
from repro.workloads.random_batched import random_general
from repro.workloads.router import router_scenario


def run(
    *,
    n: int = 16,
    seeds: tuple[int, ...] = (0, 1),
    horizon: int = 96,
    exact_state_budget: int = 150_000,
) -> ExperimentReport:
    if n % 8 != 0:
        raise ValueError("pass n divisible by 8")
    m = n // 8
    report = ExperimentReport(
        "EXP-T3",
        f"Theorem 3: VarBatch stack with n={n} vs OFF with m={m} (general arrivals)",
    )
    table = Table(
        "Full pipeline on general workloads (power-of-two bounds)",
        ("workload", "cost", "reconfig", "drops", "OFF est.", "OFF kind", "ratio"),
    )
    arb_table = Table(
        "§5.3 extension on arbitrary (non-power-of-two) bounds",
        ("workload", "cost", "reconfig", "drops", "OFF est.", "OFF kind", "ratio"),
    )
    ratios = Series("Pipeline measured ratio per workload", "workload", "ratio")

    def cases():
        for seed in seeds:
            yield (
                f"poisson(seed={seed})",
                poisson_general(
                    5, 3, horizon, seed=seed, rates=0.25, bound_choices=(4, 8, 16)
                ),
                table,
            )
            yield (
                f"heavy-tail(seed={seed})",
                poisson_general(
                    5,
                    3,
                    horizon,
                    seed=seed,
                    rates=0.15,
                    bound_choices=(4, 8, 16),
                    heavy_tail=True,
                ),
                table,
            )
            yield (
                f"general(seed={seed})",
                random_general(
                    5, 3, horizon, seed=seed, rate=0.3, bound_choices=(2, 4, 8)
                ),
                table,
            )
            yield (
                f"arbitrary(seed={seed})",
                poisson_general(
                    4, 3, horizon, seed=seed, rates=0.2, bound_choices=(6, 12, 24)
                ),
                arb_table,
            )
        yield (
            "datacenter",
            datacenter_scenario(
                seed=0, num_services=4, horizon=horizon * 2, phase_length=horizon // 2
            ),
            table,
        )
        yield ("router", router_scenario(seed=0, horizon=horizon * 2), table)

    for label, instance, target in cases():
        result = run_pipeline(instance, n)
        result.verify(strict=True)
        estimate = best_effort_ratio(
            instance,
            result.total_cost,
            m,
            exact_state_budget=exact_state_budget,
        )
        target.add_row(
            label,
            result.total_cost,
            result.cost.reconfig_cost,
            result.cost.num_drops,
            estimate.offline_estimate,
            estimate.direction.value,
            estimate.ratio,
        )
        ratios.add(label, estimate.ratio)
        report.rows.append(
            {
                "workload": label,
                "cost": result.total_cost,
                "reconfig_cost": result.cost.reconfig_cost,
                "drops": result.cost.num_drops,
                "offline_estimate": estimate.offline_estimate,
                "offline_kind": estimate.direction.value,
                "ratio": estimate.ratio,
                "stages": result.stages,
            }
        )
    report.tables.extend([table, arb_table])
    report.series.append(ratios)
    values = [row["ratio"] for row in report.rows]
    report.summary = {
        "max_ratio": round(max(values), 3),
        "geomean_ratio": round(geometric_mean(values), 3),
        "n": n,
        "m": m,
    }
    return report
