"""EXP-U (extension): the predecessor variant ``[Δ | c_ℓ | D | 1]``.

Two sub-studies:

1. **File caching substrate** — the Sleator–Tarjan cyclic adversary:
   LRU misses every request (ratio ≈ k vs Belady's MIN), the classic
   result the paper's competitive framework descends from; Landlord
   shown alongside.
2. **Weighted scheduling** — the Landlord-credit scheduler against
   weighted/unweighted greedy and static baselines on three workload
   shapes: stable mix, rotating mix (static loses), and a decoy flood
   (cost-blind greedy loses).
"""

from __future__ import annotations

from repro.analysis.report import Series, Table
from repro.experiments.base import ExperimentReport
from repro.extensions.filecaching import (
    BeladyMIN,
    Landlord,
    LRUCache,
    cyclic_adversary,
    simulate_caching,
)
from repro.extensions.uniform_delay import (
    LandlordScheduler,
    UnweightedGreedyPolicy,
    WeightedGreedyPolicy,
    WeightedStaticPolicy,
    decoy_flood_instance,
    random_weighted_instance,
    shifting_weighted_instance,
    simulate_weighted,
    weighted_per_color_lower_bound,
)


def run(
    *,
    cache_sizes: tuple[int, ...] = (2, 4, 8),
    cyclic_rounds: int = 200,
    num_resources: int = 3,
    horizon: int = 256,
    seeds: tuple[int, ...] = (0, 1),
) -> ExperimentReport:
    report = ExperimentReport(
        "EXP-U", "Extension: uniform delay bounds with variable drop costs"
    )

    # 1. File caching substrate: the Sleator-Tarjan lower bound.
    caching_table = Table(
        "Cyclic adversary (k+1 files, cache k): misses per policy",
        ("k", "requests", "LRU", "Landlord", "Belady MIN", "LRU/MIN ratio"),
    )
    ratio_series = Series("LRU/MIN miss ratio grows with k", "k", "ratio")
    for k in cache_sizes:
        instance = cyclic_adversary(k, cyclic_rounds)
        lru = simulate_caching(instance, LRUCache())
        landlord = simulate_caching(instance, Landlord())
        opt = BeladyMIN().run(instance)
        ratio = lru.misses / max(opt.misses, 1)
        caching_table.add_row(
            k, cyclic_rounds, lru.misses, landlord.misses, opt.misses, ratio
        )
        ratio_series.add(k, ratio)
        report.rows.append(
            {
                "study": "caching",
                "k": k,
                "lru_misses": lru.misses,
                "landlord_misses": landlord.misses,
                "min_misses": opt.misses,
                "ratio": ratio,
            }
        )
    report.tables.append(caching_table)
    report.series.append(ratio_series)

    # 2. Weighted scheduling on three workload shapes.
    sched_table = Table(
        "Weighted scheduling: total cost per policy (lower is better)",
        (
            "workload",
            "landlord-rrs",
            "weighted-greedy",
            "unweighted-greedy",
            "weighted-static",
            "per-color LB",
        ),
    )

    def cases():
        for seed in seeds:
            yield (
                f"stable(seed={seed})",
                random_weighted_instance(6, 4, 8, horizon, seed=seed, rate=0.4),
                num_resources,
            )
            yield (
                f"rotating(seed={seed})",
                shifting_weighted_instance(
                    6, 4, 8, horizon, seed=seed, phase_length=horizon // 4
                ),
                num_resources,
            )
            # Decoy: 3 flood colors + 1 precious, only 2 slots — the
            # policies must choose whom to abandon.
            yield (
                f"decoy-flood(seed={seed})",
                decoy_flood_instance(seed=seed, horizon=horizon),
                2,
            )

    for label, instance, slots in cases():
        costs = {}
        for policy_factory in (
            LandlordScheduler,
            WeightedGreedyPolicy,
            UnweightedGreedyPolicy,
            WeightedStaticPolicy,
        ):
            policy = policy_factory()
            result = simulate_weighted(instance, policy, slots)
            costs[policy.name] = result.total_cost
        bound = weighted_per_color_lower_bound(instance)
        sched_table.add_row(
            label,
            round(costs["landlord-rrs"], 1),
            round(costs["weighted-greedy"], 1),
            round(costs["unweighted-greedy"], 1),
            round(costs["weighted-static"], 1),
            round(bound, 1),
        )
        report.rows.append(
            {"study": "scheduling", "workload": label, "lower_bound": bound, **costs}
        )
    report.tables.append(sched_table)

    caching_rows = [r for r in report.rows if r["study"] == "caching"]
    decoy_rows = [
        r for r in report.rows if r.get("workload", "").startswith("decoy")
    ]
    rotating_rows = [
        r for r in report.rows if r.get("workload", "").startswith("rotating")
    ]
    report.summary = {
        "lru_ratio_grows": all(
            b["ratio"] > a["ratio"]
            for a, b in zip(caching_rows, caching_rows[1:])
        ),
        "weighted_beats_unweighted_on_decoy": all(
            r["weighted-greedy"] < r["unweighted-greedy"] for r in decoy_rows
        ),
        "adaptive_beats_static_on_rotation": all(
            min(r["landlord-rrs"], r["weighted-greedy"]) < r["weighted-static"]
            for r in rotating_rows
        ),
    }
    return report
