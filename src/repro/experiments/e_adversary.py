"""EXP-ADV: automated adversary search against each scheme.

The appendices hand-build one worst case per pure scheme; here a
mutation hill-climber hunts for bad rate-limited inputs.  Two findings
are reproduced:

1. **Cold search** (random restarts): at laptop budgets, *no* scheme is
   attackable on random rate-limited inputs — the pure schemes' failure
   modes are knife-edge structures, not generic behavior.  This is why
   the paper needs hand-built adversaries.
2. **Warm search** (seeded with the Appendix A instance): ΔLRU holds a
   large ratio (the adversary is a stable local optimum for it) while
   ΔLRU-EDF's ratio on the *same* starting point and search stays small
   — the Theorem 1 separation, rediscovered by local search.
"""

from __future__ import annotations

from repro.algorithms.dlru import DeltaLRU
from repro.algorithms.dlru_edf import DeltaLRUEDF
from repro.algorithms.edf import EDF
from repro.analysis.adversary_search import SearchConfig, search_adversary
from repro.analysis.report import Series, Table
from repro.experiments.base import ExperimentReport
from repro.workloads.adversarial import appendix_a_instance


def run(
    *,
    iterations: int = 240,
    restarts: int = 3,
    horizon: int = 48,
    num_colors: int = 4,
    seeds: tuple[int, ...] = (0, 1),
) -> ExperimentReport:
    report = ExperimentReport(
        "EXP-ADV", "Automated adversary search: cold vs appendix-warm-started"
    )
    cold_table = Table(
        "Cold search: best ratio found (vs hindsight OFF)",
        ("scheme", *[f"seed {s}" for s in seeds], "worst found"),
    )
    plateau = Series("Worst cold-search ratio per scheme", "scheme", "ratio")
    for scheme_factory in (DeltaLRUEDF, DeltaLRU, EDF):
        ratios = []
        for seed in seeds:
            config = SearchConfig(
                num_colors=num_colors,
                bounds=(2, 4, 8),
                horizon=horizon,
                delta=2,
                num_resources=8,
                offline_resources=1,
                iterations=iterations,
                restarts=restarts,
                seed=seed,
            )
            ratios.append(search_adversary(scheme_factory, config).best_ratio)
        name = scheme_factory().name
        worst = max(ratios)
        cold_table.add_row(name, *[round(r, 3) for r in ratios], round(worst, 3))
        plateau.add(name, worst)
        report.rows.append(
            {"mode": "cold", "scheme": name, "ratios": ratios, "worst": worst}
        )
    report.tables.append(cold_table)
    report.series.append(plateau)

    # Warm start: seed the search with the Appendix A adversary.
    warm_n = 8
    construction, warm_instance = appendix_a_instance(warm_n, 2)
    warm_table = Table(
        "Warm search from the Appendix A adversary",
        ("scheme", "start ratio structure", "best ratio held"),
    )
    warm_series = Series("Warm-started worst ratio", "scheme", "ratio")
    for scheme_factory in (DeltaLRUEDF, DeltaLRU, EDF):
        config = SearchConfig(
            num_colors=_num_colors_of(warm_instance),
            bounds=tuple(sorted(set(warm_instance.spec.delay_bounds.values()))),
            horizon=warm_instance.horizon,
            delta=2,
            num_resources=warm_n,
            offline_resources=1,
            iterations=max(iterations // 4, 20),
            restarts=1,
            seed=seeds[0],
            warm_start=warm_instance,
        )
        result = search_adversary(scheme_factory, config)
        name = scheme_factory().name
        warm_table.add_row(
            name, f"appendix-a(j={construction.j})", round(result.best_ratio, 3)
        )
        warm_series.add(name, result.best_ratio)
        report.rows.append(
            {"mode": "warm", "scheme": name, "worst": result.best_ratio}
        )
    report.tables.append(warm_table)
    report.series.append(warm_series)

    cold = {r["scheme"]: r["worst"] for r in report.rows if r["mode"] == "cold"}
    warm = {r["scheme"]: r["worst"] for r in report.rows if r["mode"] == "warm"}
    report.summary = {
        "dlru_edf_worst_cold": round(cold["dLRU-EDF"], 3),
        "combination_at_most_pure": cold["dLRU-EDF"]
        <= max(cold["dLRU"], cold["EDF"]) + 0.5,
        "warm_dlru_ratio": round(warm["dLRU"], 3),
        "warm_dlru_edf_ratio": round(warm["dLRU-EDF"], 3),
        "warm_separation": warm["dLRU"] > 2 * warm["dLRU-EDF"],
    }
    return report


def _num_colors_of(instance) -> int:
    return len(instance.spec.delay_bounds)
