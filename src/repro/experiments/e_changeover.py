"""EXP-C (extension): the changeover-*time* crossover.

Related work (Brucker's class) models reconfiguration as machine
*unavailability* rather than money.  Sweeping the changeover duration T
on a staggered multi-class workload shows the regime change:

* small T — agility wins: the chase policy's retargets are nearly free
  and stickiness starves lulled queues;
* large T — commitment wins: every retarget burns T machine-rounds and
  the sticky policy pulls ahead for good.

The crossover is the time-model restatement of the paper's thrashing
lesson: profitable commitment must scale with the reconfiguration price,
which is what ΔLRU's Δ-counter encodes in the cost model.
"""

from __future__ import annotations

from repro.analysis.report import Series, Table
from repro.core.instance import BatchMode, make_instance
from repro.core.job import JobFactory
from repro.experiments.base import ExperimentReport
from repro.extensions.changeover_time import (
    ChaseBacklogPolicy,
    StickyBacklogPolicy,
    simulate_changeover,
)


def _staggered_instance(colors: int, horizon: int):
    factory = JobFactory()
    jobs = []
    for color in range(colors):
        for start in range(0, horizon, 4):
            if (start // 4 + color) % colors != 0:
                jobs += factory.batch(start, color, 4, 1)
    return make_instance(
        jobs,
        {c: 4 for c in range(colors)},
        2,
        batch_mode=BatchMode.RATE_LIMITED,
        name="staggered",
    )


def run(
    *,
    changeover_times: tuple[int, ...] = (0, 1, 2, 4, 8, 12),
    colors: int = 5,
    horizon: int = 256,
    machines: int = 2,
) -> ExperimentReport:
    report = ExperimentReport(
        "EXP-C", "Extension: changeover time — the agility/commitment crossover"
    )
    table = Table(
        f"Chase vs sticky over changeover duration T "
        f"({machines} machines, {colors} classes)",
        ("T", "chase drops", "chase stalls", "sticky drops", "sticky stalls",
         "winner"),
    )
    gap = Series(
        "chase drops - sticky drops (positive = sticky wins)", "T", "gap"
    )
    for changeover in changeover_times:
        chase = simulate_changeover(
            _staggered_instance(colors, horizon),
            ChaseBacklogPolicy(),
            machines,
            changeover,
        )
        sticky = simulate_changeover(
            _staggered_instance(colors, horizon),
            StickyBacklogPolicy(),
            machines,
            changeover,
        )
        winner = (
            "tie"
            if chase.dropped == sticky.dropped
            else ("sticky" if sticky.dropped < chase.dropped else "chase")
        )
        table.add_row(
            changeover,
            chase.dropped,
            chase.stalled_rounds,
            sticky.dropped,
            sticky.stalled_rounds,
            winner,
        )
        gap.add(changeover, float(chase.dropped - sticky.dropped))
        report.rows.append(
            {
                "T": changeover,
                "chase_drops": chase.dropped,
                "sticky_drops": sticky.dropped,
                "winner": winner,
            }
        )
    report.tables.append(table)
    report.series.append(gap)
    gaps = [row["chase_drops"] - row["sticky_drops"] for row in report.rows]
    report.summary = {
        "gap_at_min_T": gaps[0],
        "gap_at_max_T": gaps[-1],
        "crossover_exists": gaps[0] <= 0 and gaps[-1] > 0,
        "sticky_wins_at_max_T": gaps[-1] > 0,
    }
    return report
