"""EXP-B: the Appendix B lower bound — EDF is not resource competitive.

Sweep the gap ``k - j`` on the Appendix B adversary and measure EDF's
cost against the handcrafted offline schedule.  The paper predicts the
ratio is at least ``2^{k-j-1} / (n/2 + 1)`` — growing geometrically in
``k - j`` — while ΔLRU-EDF on the same adversary stays bounded.
"""

from __future__ import annotations

from repro.algorithms.dlru_edf import DeltaLRUEDF
from repro.algorithms.edf import EDF
from repro.analysis.report import Series, Table
from repro.core.validation import verify_schedule
from repro.experiments.base import ExperimentReport
from repro.offline.handcrafted import appendix_b_offline_schedule
from repro.simulation.engine import simulate
from repro.workloads.adversarial import AppendixBConstruction


def run(
    *,
    n: int = 4,
    delta: int | None = None,
    gaps: tuple[int, ...] = (1, 2, 3, 4, 5),
) -> ExperimentReport:
    """Run the EXP-B sweep over ``k = j + gap``."""
    if delta is None:
        delta = n + 1
    j = delta.bit_length()
    while (1 << j) <= delta:
        j += 1
    report = ExperimentReport(
        "EXP-B",
        "Appendix B adversary: EDF ratio grows geometrically, ΔLRU-EDF bounded",
    )
    table = Table(
        "EDF vs handcrafted OFF on the Appendix B adversary",
        (
            "k-j",
            "horizon",
            "EDF cost",
            "EDF reconfig",
            "dLRU-EDF cost",
            "OFF cost",
            "EDF ratio",
            "dLRU-EDF ratio",
            "predicted EDF ratio >=",
        ),
    )
    growth = Series("EDF measured ratio growth", "k-j", "cost ratio vs OFF")
    combined = Series(
        "ΔLRU-EDF ratio on the same adversary", "k-j", "cost ratio vs OFF"
    )
    for gap in gaps:
        construction = AppendixBConstruction(n, delta, j, j + gap)
        instance = construction.instance()
        off_schedule, off_cost = appendix_b_offline_schedule(construction, instance)
        verify_schedule(instance, off_schedule).raise_if_invalid()
        edf = simulate(instance, EDF(), n)
        dlru_edf = simulate(instance, DeltaLRUEDF(), n)
        ratio = edf.total_cost / off_cost.total
        ratio_edf = dlru_edf.total_cost / off_cost.total
        predicted = construction.predicted_ratio_lower_bound()
        table.add_row(
            gap,
            instance.horizon,
            edf.total_cost,
            edf.cost.reconfig_cost,
            dlru_edf.total_cost,
            off_cost.total,
            ratio,
            ratio_edf,
            predicted,
        )
        growth.add(gap, ratio)
        combined.add(gap, ratio_edf)
        report.rows.append(
            {
                "gap": gap,
                "edf_cost": edf.total_cost,
                "edf_reconfig_cost": edf.cost.reconfig_cost,
                "dlru_edf_cost": dlru_edf.total_cost,
                "off_cost": off_cost.total,
                "edf_ratio": ratio,
                "dlru_edf_ratio": ratio_edf,
                "predicted_ratio": predicted,
            }
        )
    report.tables.append(table)
    report.series.extend([growth, combined])
    ratios = [row["edf_ratio"] for row in report.rows]
    report.summary = {
        "edf_ratio_first": round(ratios[0], 3),
        "edf_ratio_last": round(ratios[-1], 3),
        "monotone_growth": all(b > a for a, b in zip(ratios, ratios[1:])),
        "dlru_edf_ratio_max": round(
            max(row["dlru_edf_ratio"] for row in report.rows), 3
        ),
    }
    return report
