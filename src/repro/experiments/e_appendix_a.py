"""EXP-A: the Appendix A lower bound — ΔLRU is not resource competitive.

Sweep the long-term exponent ``k`` on the Appendix A adversary and
measure ΔLRU's cost against the handcrafted offline schedule.  The paper
predicts the ratio grows as ``(nΔ + 2^k) / (Δ + 2^{k-j-1} n Δ)`` — i.e.
unboundedly in ``j`` (with ``k = j + 2`` both grow together) — while
ΔLRU-EDF on the *same* adversary stays within a constant of OFF.
"""

from __future__ import annotations

from repro.algorithms.dlru import DeltaLRU
from repro.algorithms.dlru_edf import DeltaLRUEDF
from repro.analysis.report import Series, Table
from repro.core.validation import verify_schedule
from repro.experiments.base import ExperimentReport
from repro.offline.handcrafted import appendix_a_offline_schedule
from repro.simulation.engine import simulate
from repro.workloads.adversarial import AppendixAConstruction


def run(
    *,
    n: int = 8,
    delta: int = 2,
    j_values: tuple[int, ...] = (5, 6, 7, 8, 9),
    k_gap: int = 2,
) -> ExperimentReport:
    """Run the EXP-A sweep.  ``k = j + k_gap`` per the constraint chain."""
    report = ExperimentReport(
        "EXP-A",
        "Appendix A adversary: ΔLRU ratio grows, ΔLRU-EDF stays bounded",
    )
    table = Table(
        "ΔLRU vs handcrafted OFF on the Appendix A adversary",
        (
            "j",
            "k",
            "horizon",
            "dLRU cost",
            "dLRU-EDF cost",
            "OFF cost",
            "dLRU ratio",
            "dLRU-EDF ratio",
            "predicted dLRU ratio >=",
        ),
    )
    growth = Series("ΔLRU measured ratio growth", "j", "cost ratio vs OFF")
    combined = Series("ΔLRU-EDF ratio on the same adversary", "j", "cost ratio vs OFF")
    for j in j_values:
        construction = AppendixAConstruction(n, delta, j, j + k_gap)
        instance = construction.instance()
        off_schedule, off_cost = appendix_a_offline_schedule(construction, instance)
        verify_schedule(instance, off_schedule).raise_if_invalid()
        dlru = simulate(instance, DeltaLRU(), n)
        dlru_edf = simulate(instance, DeltaLRUEDF(), n)
        ratio = dlru.total_cost / off_cost.total
        ratio_edf = dlru_edf.total_cost / off_cost.total
        predicted = construction.predicted_ratio_lower_bound()
        table.add_row(
            j,
            j + k_gap,
            instance.horizon,
            dlru.total_cost,
            dlru_edf.total_cost,
            off_cost.total,
            ratio,
            ratio_edf,
            predicted,
        )
        growth.add(j, ratio)
        combined.add(j, ratio_edf)
        report.rows.append(
            {
                "j": j,
                "k": j + k_gap,
                "dlru_cost": dlru.total_cost,
                "dlru_edf_cost": dlru_edf.total_cost,
                "off_cost": off_cost.total,
                "dlru_ratio": ratio,
                "dlru_edf_ratio": ratio_edf,
                "predicted_ratio": predicted,
            }
        )
    report.tables.append(table)
    report.series.extend([growth, combined])
    ratios = [row["dlru_ratio"] for row in report.rows]
    report.summary = {
        "dlru_ratio_first": round(ratios[0], 3),
        "dlru_ratio_last": round(ratios[-1], 3),
        "monotone_growth": all(b > a for a, b in zip(ratios, ratios[1:])),
        "dlru_edf_ratio_max": round(
            max(row["dlru_edf_ratio"] for row in report.rows), 3
        ),
    }
    return report
