"""Experiment registry: id -> runner.

Each entry also records a ``quick`` parameter override used by tests and
the ``--quick`` CLI flag, so the full suite stays runnable in seconds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.experiments import (
    e_ablation,
    e_appendix_a,
    e_appendix_b,
    e_lemmas,
    e_motivation,
    e_scaling,
    e_theorem1,
    e_theorem2,
    e_theorem3,
    e_uniform,
    e_adversary,
    e_sensitivity,
    e_punctual,
    e_changeover,
)
from repro.experiments.base import ExperimentReport


@dataclass(frozen=True)
class Experiment:
    """A registered experiment and its parameter presets."""

    experiment_id: str
    title: str
    runner: Callable[..., ExperimentReport]
    quick_params: dict[str, Any] = field(default_factory=dict)

    def run(self, *, quick: bool = False, **overrides: Any) -> ExperimentReport:
        params = dict(self.quick_params) if quick else {}
        params.update(overrides)
        return self.runner(**params)


EXPERIMENTS: dict[str, Experiment] = {
    exp.experiment_id: exp
    for exp in (
        Experiment(
            "EXP-A",
            "Appendix A: ΔLRU is not resource competitive",
            e_appendix_a.run,
            quick_params={"j_values": (5, 6, 7)},
        ),
        Experiment(
            "EXP-B",
            "Appendix B: EDF is not resource competitive",
            e_appendix_b.run,
            quick_params={"gaps": (1, 2, 3)},
        ),
        Experiment(
            "EXP-T1",
            "Theorem 1: ΔLRU-EDF resource competitiveness",
            e_theorem1.run,
            quick_params={"seeds": (0,), "horizon": 32, "delta_values": (2,)},
        ),
        Experiment(
            "EXP-T2",
            "Theorem 2: Distribute resource competitiveness",
            e_theorem2.run,
            quick_params={"seeds": (0,), "horizon": 32, "delta_values": (2,)},
        ),
        Experiment(
            "EXP-T3",
            "Theorem 3: VarBatch resource competitiveness",
            e_theorem3.run,
            quick_params={"seeds": (0,), "horizon": 48},
        ),
        Experiment(
            "EXP-L",
            "Lemmas 3.1-3.4: inequality audits",
            e_lemmas.run,
            quick_params={"seeds": (0, 1), "horizon": 32},
        ),
        Experiment(
            "EXP-ABL",
            "ΔLRU-EDF design ablations",
            e_ablation.run,
            quick_params={
                "seeds": (0,),
                "horizon": 32,
                "fractions": (0.0, 0.5, 1.0),
                "augmentations": (2, 8),
            },
        ),
        Experiment(
            "EXP-M",
            "Introduction scenario: thrashing vs underutilization",
            e_motivation.run,
            quick_params={"horizon": 512},
        ),
        Experiment(
            "EXP-S",
            "Simulator throughput scaling",
            e_scaling.run,
            # Quick cells are a subset of the full grids so the CI
            # regression guard can compare them against the committed
            # BENCH_engine.json baseline row for row.
            quick_params={
                "grid": ((8, 4, 256), (16, 8, 256)),
                "general_grid": ((16, 16, 512),),
            },
        ),
        Experiment(
            "EXP-ADV",
            "Automated adversary search per scheme",
            e_adversary.run,
            quick_params={
                "iterations": 60,
                "restarts": 2,
                "horizon": 24,
                "num_colors": 3,
                "seeds": (0,),
            },
        ),
        Experiment(
            "EXP-SEN",
            "Δ × load sensitivity grid for ΔLRU-EDF",
            e_sensitivity.run,
            quick_params={
                "delta_values": (2, 4),
                "loads": (0.4, 0.8),
                "seeds": (0,),
                "horizon": 48,
            },
        ),
        Experiment(
            "EXP-P",
            "Lemma 5.3: punctualization factors on exact optima",
            e_punctual.run,
            quick_params={"seeds": (0, 1), "horizon": 16},
        ),
        Experiment(
            "EXP-C",
            "Extension: changeover-time crossover (agility vs commitment)",
            e_changeover.run,
            quick_params={"changeover_times": (0, 2, 8), "horizon": 128},
        ),
        Experiment(
            "EXP-U",
            "Extension: uniform delay / variable drop costs ([14] track)",
            e_uniform.run,
            quick_params={
                "cache_sizes": (2, 4),
                "cyclic_rounds": 100,
                "horizon": 128,
                "seeds": (0,),
            },
        ),
    )
}


def get_experiment(experiment_id: str) -> Experiment:
    """Look up an experiment by id (case-insensitive)."""
    try:
        return EXPERIMENTS[experiment_id.upper()]
    except KeyError:
        known = ", ".join(sorted(EXPERIMENTS))
        raise KeyError(
            f"unknown experiment {experiment_id!r}; known ids: {known}"
        ) from None


def run_experiment(
    experiment_id: str, *, quick: bool = False, **overrides: Any
) -> ExperimentReport:
    """Run a registered experiment, with quick presets and overrides."""
    return get_experiment(experiment_id).run(quick=quick, **overrides)
