"""EXP-T1: Theorem 1 — ΔLRU-EDF is resource competitive on rate-limited
batched instances with ``n = 8m``.

Across random rate-limited workloads (several seeds, Δ values, color
counts, loads, plus both appendix adversaries) we measure ΔLRU-EDF's cost
with ``n`` resources against the offline estimate with ``m = n/8``
resources.  On small instances the denominator is the exact optimum; on
larger ones it is the certified lower bound, making the reported ratio an
upper bound on the true one.  Theorem 1 predicts the max stays O(1); the
table also shows ΔLRU and EDF on the same workloads for contrast.
"""

from __future__ import annotations

from repro.algorithms.dlru import DeltaLRU
from repro.algorithms.dlru_edf import DeltaLRUEDF
from repro.algorithms.edf import EDF
from repro.analysis.competitive import best_effort_ratio
from repro.analysis.report import Series, Table, geometric_mean
from repro.experiments.base import ExperimentReport
from repro.simulation.engine import simulate
from repro.workloads.adversarial import appendix_a_instance, appendix_b_instance
from repro.workloads.bursty import bursty_rate_limited
from repro.workloads.random_batched import random_rate_limited


def _workloads(n: int, delta_values, seeds, horizon):
    for delta in delta_values:
        for seed in seeds:
            yield (
                f"random(Δ={delta},seed={seed})",
                random_rate_limited(
                    6, delta, horizon, seed=seed, load=0.6, bound_choices=(2, 4, 8)
                ),
            )
            yield (
                f"bursty(Δ={delta},seed={seed})",
                bursty_rate_limited(
                    6, delta, horizon, seed=seed, bound_choices=(2, 4, 8)
                ),
            )
    _, adversary_a = appendix_a_instance(n, 2)
    yield ("appendix-a", adversary_a)
    _, adversary_b = appendix_b_instance(min(n, 4))
    yield ("appendix-b", adversary_b)


def run(
    *,
    n: int = 16,
    delta_values: tuple[int, ...] = (2, 4),
    seeds: tuple[int, ...] = (0, 1, 2),
    horizon: int = 64,
    exact_state_budget: int = 200_000,
) -> ExperimentReport:
    if n % 8 != 0:
        raise ValueError("Theorem 1 uses n = 8m; pass n divisible by 8")
    m = n // 8
    report = ExperimentReport(
        "EXP-T1",
        f"Theorem 1: ΔLRU-EDF with n={n} vs OFF with m={m} (rate-limited batched)",
    )
    table = Table(
        "Per-workload costs and measured ratios",
        (
            "workload",
            "dLRU-EDF",
            "dLRU",
            "EDF",
            "OFF est.",
            "OFF kind",
            "dLRU-EDF ratio",
        ),
    )
    ratios = Series("ΔLRU-EDF measured ratio per workload", "workload", "ratio")
    for label, instance in _workloads(n, delta_values, seeds, horizon):
        combined = simulate(instance, DeltaLRUEDF(), n)
        lru = simulate(instance, DeltaLRU(), n)
        edf = simulate(instance, EDF(), n)
        estimate = best_effort_ratio(
            instance,
            combined.total_cost,
            m,
            exact_state_budget=exact_state_budget,
        )
        table.add_row(
            label,
            combined.total_cost,
            lru.total_cost,
            edf.total_cost,
            estimate.offline_estimate,
            estimate.direction.value,
            estimate.ratio,
        )
        ratios.add(label, estimate.ratio)
        report.rows.append(
            {
                "workload": label,
                "dlru_edf_cost": combined.total_cost,
                "dlru_cost": lru.total_cost,
                "edf_cost": edf.total_cost,
                "offline_estimate": estimate.offline_estimate,
                "offline_kind": estimate.direction.value,
                "ratio": estimate.ratio,
            }
        )
    report.tables.append(table)
    report.series.append(ratios)
    values = [row["ratio"] for row in report.rows]
    report.summary = {
        "max_ratio": round(max(values), 3),
        "geomean_ratio": round(geometric_mean(values), 3),
        "n": n,
        "m": m,
    }
    return report
