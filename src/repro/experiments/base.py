"""Shared experiment-report plumbing."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.analysis.report import Series, Table


@dataclass
class ExperimentReport:
    """Everything an experiment produces.

    ``rows`` carries the raw per-configuration measurements as dicts so
    tests and downstream tooling can assert on numbers without parsing
    rendered text; ``summary`` holds the experiment's headline values
    (e.g. the max measured ratio).
    """

    experiment_id: str
    title: str
    tables: list[Table] = field(default_factory=list)
    series: list[Series] = field(default_factory=list)
    rows: list[dict[str, Any]] = field(default_factory=list)
    summary: dict[str, Any] = field(default_factory=dict)

    def render(self) -> str:
        """Human-readable report: tables then series."""
        parts = [f"### {self.experiment_id}: {self.title}"]
        for table in self.tables:
            parts.append(table.render())
        for series in self.series:
            parts.append(series.render())
        if self.summary:
            summary = ", ".join(f"{k}={v}" for k, v in self.summary.items())
            parts.append(f"summary: {summary}")
        return "\n\n".join(parts)
