"""EXP-SEN: sensitivity of ΔLRU-EDF's measured ratio to Δ and load.

A (Δ, load) grid of random rate-limited workloads, geomean ratio per
cell against the certified lower bound.  The theorems promise a constant
independent of Δ and load; the grid makes the flatness (and where the
bound estimator is loosest — light load, where OFF's lower bound is
dominated by the per-color term) visible.
"""

from __future__ import annotations

from repro.algorithms.dlru_edf import DeltaLRUEDF
from repro.analysis.competitive import ratio_vs_lower_bound
from repro.analysis.report import Series, Table, geometric_mean
from repro.experiments.base import ExperimentReport
from repro.simulation.engine import simulate
from repro.workloads.random_batched import random_rate_limited


def run(
    *,
    delta_values: tuple[int, ...] = (1, 2, 4, 8),
    loads: tuple[float, ...] = (0.2, 0.4, 0.6, 0.8, 1.0),
    seeds: tuple[int, ...] = (0, 1, 2),
    n: int = 16,
    horizon: int = 96,
) -> ExperimentReport:
    if n % 8 != 0:
        raise ValueError("pass n divisible by 8")
    m = n // 8
    report = ExperimentReport(
        "EXP-SEN", f"Δ × load sensitivity of ΔLRU-EDF (n={n}, m={m})"
    )
    table = Table(
        "Geomean measured ratio per (Δ, load) cell",
        ("Δ", *[f"load {load}" for load in loads]),
    )
    for delta in delta_values:
        cells = []
        series = Series(f"Ratio vs load at Δ={delta}", "load", "geomean ratio")
        for load in loads:
            ratios = []
            for seed in seeds:
                instance = random_rate_limited(
                    6,
                    delta,
                    horizon,
                    seed=seed,
                    load=load,
                    bound_choices=(2, 4, 8),
                )
                result = simulate(instance, DeltaLRUEDF(), n)
                estimate = ratio_vs_lower_bound(instance, result.total_cost, m)
                ratios.append(estimate.ratio)
            gm = geometric_mean(ratios)
            cells.append(round(gm, 3))
            series.add(load, gm)
            report.rows.append(
                {"delta": delta, "load": load, "geomean_ratio": gm}
            )
        table.add_row(delta, *cells)
        report.series.append(series)
    report.tables.append(table)
    values = [row["geomean_ratio"] for row in report.rows]
    report.summary = {
        "max_cell": round(max(values), 3),
        "min_cell": round(min(values), 3),
        "spread": round(max(values) / max(min(values), 1e-9), 3),
    }
    return report
