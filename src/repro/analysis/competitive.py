"""Competitive-ratio measurement.

The paper's ratios compare an online algorithm with ``n`` resources to an
optimal offline algorithm OFF with ``m`` resources.  OFF is not
computable at scale, so each estimator is explicit about its direction:

* :func:`ratio_vs_exact` — exact OPT on small instances: the *true* ratio.
* :func:`ratio_vs_lower_bound` — certified lower bound on OFF: the
  returned ratio is an **upper bound** on the true ratio (use for
  validating the theorems).
* :func:`ratio_vs_heuristic` — hindsight feasible schedule (an upper
  bound on OFF): the returned ratio is a **lower bound** on the true
  ratio (use for the adversarial growth experiments).
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass

from repro.core.instance import Instance
from repro.offline.heuristic import best_offline_heuristic
from repro.offline.lower_bounds import combined_lower_bound
from repro.offline.optimal import optimal_offline


class RatioDirection(enum.Enum):
    EXACT = "exact"
    UPPER_BOUND = "upper_bound"  # denominator is a lower bound on OFF
    LOWER_BOUND = "lower_bound"  # denominator is an upper bound on OFF


@dataclass(frozen=True)
class RatioEstimate:
    """A measured competitive ratio with its provenance.

    ``ratio`` is ``online_cost / offline_estimate`` with the convention
    that a zero offline estimate and a zero online cost give 1.0, and a
    zero offline estimate with positive online cost gives ``inf``.
    """

    online_cost: int
    offline_estimate: int
    direction: RatioDirection
    offline_source: str

    @property
    def ratio(self) -> float:
        if self.offline_estimate > 0:
            return self.online_cost / self.offline_estimate
        return 1.0 if self.online_cost == 0 else math.inf

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"{self.ratio:.3f} ({self.online_cost} / {self.offline_estimate}, "
            f"{self.direction.value} via {self.offline_source})"
        )


def ratio_vs_exact(
    instance: Instance,
    online_cost: int,
    offline_resources: int,
    *,
    max_states: int = 2_000_000,
) -> RatioEstimate:
    """True ratio against the exact offline optimum (small instances)."""
    opt = optimal_offline(instance, offline_resources, max_states=max_states)
    return RatioEstimate(
        online_cost, opt.cost, RatioDirection.EXACT, "optimal_offline"
    )


def ratio_vs_lower_bound(
    instance: Instance,
    online_cost: int,
    offline_resources: int,
) -> RatioEstimate:
    """Ratio against a certified lower bound on OFF (conservative high)."""
    bound = combined_lower_bound(instance, offline_resources)
    return RatioEstimate(
        online_cost, bound, RatioDirection.UPPER_BOUND, "combined_lower_bound"
    )


def ratio_vs_heuristic(
    instance: Instance,
    online_cost: int,
    offline_resources: int,
    *,
    offline_cost: int | None = None,
    offline_source: str = "best_offline_heuristic",
) -> RatioEstimate:
    """Ratio against a feasible hindsight schedule (conservative low).

    Pass ``offline_cost`` to reuse a precomputed schedule cost — e.g. the
    handcrafted appendix schedules — instead of running the portfolio.
    """
    if offline_cost is None:
        offline_cost = best_offline_heuristic(instance, offline_resources).cost
    return RatioEstimate(
        online_cost, offline_cost, RatioDirection.LOWER_BOUND, offline_source
    )


def best_effort_ratio(
    instance: Instance,
    online_cost: int,
    offline_resources: int,
    *,
    exact_state_budget: int = 300_000,
    max_exact_jobs: int = 80,
    max_exact_horizon: int = 80,
) -> RatioEstimate:
    """Exact ratio when the search plausibly fits the budget, else the
    certified upper bound.

    A cheap size gate (jobs, horizon, colors) avoids burning the whole
    state budget on instances that obviously cannot be searched exactly —
    exploring ``exact_state_budget`` states before giving up costs tens of
    seconds, while the gate costs nothing.
    """
    from repro.offline.optimal import SearchSpaceExceeded

    too_big = (
        len(instance.sequence) > max_exact_jobs
        or instance.horizon > max_exact_horizon
        or len(instance.spec.delay_bounds) > 8
        or offline_resources > 3
    )
    if too_big:
        return ratio_vs_lower_bound(instance, online_cost, offline_resources)
    try:
        return ratio_vs_exact(
            instance, online_cost, offline_resources, max_states=exact_state_budget
        )
    except SearchSpaceExceeded:
        return ratio_vs_lower_bound(instance, online_cost, offline_resources)
