"""Analysis machinery mirroring the paper's proof structure.

The proofs of Section 3 are statements about *runs*: epochs (per-color
eligibility cycles), super-epochs (global timestamp-update phases), the
credit schemes of Lemmas 3.3 and 3.13, and the drop-cost containment
chain of Lemma 3.2.  This package re-derives all of those objects from a
run's event trace and exposes:

* :mod:`repro.analysis.epochs` — epoch / super-epoch extraction;
* :mod:`repro.analysis.invariants` — executable checks of Lemmas
  3.1-3.4 and the drop-containment chain, applied to real runs;
* :mod:`repro.analysis.credits` — the amortized-accounting audits;
* :mod:`repro.analysis.competitive` — competitive-ratio measurement
  against exact optima, certified lower bounds, or hindsight heuristics;
* :mod:`repro.analysis.report` — plain-text tables/series used by the
  benchmark harness to print paper-style results.
"""

from repro.analysis.epochs import (
    Epoch,
    EpochAnalysis,
    SuperEpoch,
    analyze_epochs,
)
from repro.analysis.invariants import (
    InvariantReport,
    check_drop_containment_chain,
    check_lemma_3_3,
    check_lemma_3_4,
    classify_jobs,
)
from repro.analysis.credits import audit_epoch_credits, audit_ineligible_drops
from repro.analysis.competitive import (
    RatioEstimate,
    ratio_vs_exact,
    ratio_vs_heuristic,
    ratio_vs_lower_bound,
)
from repro.analysis.report import Series, Table, format_series, format_table
from repro.analysis.timeline import (
    idle_profile,
    reconfiguration_profile,
    render_timeline,
)
from repro.analysis.adversary_search import SearchConfig, search_adversary
from repro.analysis.export import (
    report_to_json,
    rows_to_csv,
    run_result_to_json,
    save_report,
)

__all__ = [
    "idle_profile",
    "reconfiguration_profile",
    "render_timeline",
    "SearchConfig",
    "search_adversary",
    "report_to_json",
    "rows_to_csv",
    "run_result_to_json",
    "save_report",
    "Epoch",
    "EpochAnalysis",
    "SuperEpoch",
    "analyze_epochs",
    "InvariantReport",
    "check_drop_containment_chain",
    "check_lemma_3_3",
    "check_lemma_3_4",
    "classify_jobs",
    "audit_epoch_credits",
    "audit_ineligible_drops",
    "RatioEstimate",
    "ratio_vs_exact",
    "ratio_vs_heuristic",
    "ratio_vs_lower_bound",
    "Series",
    "Table",
    "format_series",
    "format_table",
]
