"""Credit-scheme audits (the amortized accounting of Lemmas 3.3 and 3.4).

The paper pays for ΔLRU-EDF's reconfigurations with ``4Δ`` of credit per
epoch (``2Δ`` "first-time" + ``2Δ`` "end-of-epoch") and for ineligible
drops with ``Δ`` per epoch.  These auditors walk a trace and replay the
accounting event by event, reporting per-epoch balances — a much sharper
check than the aggregate inequalities, and the tool that caught the
paper's bookkeeping nuances during development.

:class:`CreditScheme` turns the same accounting into a runnable
reconfiguration scheme — credit earned on wrapping rounds, spent on
admissions — and doubles as the credit-vector exemplar of the sparse
core's ``fixed_point_token()`` contract.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.epochs import EpochAnalysis, analyze_epochs
from repro.core.events import CacheInEvent, DropEvent
from repro.simulation.engine import (
    BatchedEngine,
    ReconfigurationScheme,
    RunResult,
)


@dataclass
class CreditAudit:
    """Outcome of replaying a credit scheme over a trace."""

    scheme: str
    charged: int
    budget: int
    per_color_charges: dict[int, int] = field(default_factory=dict)

    @property
    def within_budget(self) -> bool:
        return self.charged <= self.budget

    @property
    def utilization(self) -> float:
        """Fraction of the credit budget actually consumed."""
        return self.charged / self.budget if self.budget else 0.0


def audit_epoch_credits(
    result: RunResult, *, analysis: EpochAnalysis | None = None
) -> CreditAudit:
    """Replay the Lemma 3.3 scheme: ``4Δ`` credit per epoch pays every
    (logical) cache insertion at ``copies * Δ`` each.

    The aggregate form: with ``numEpochs`` epochs and two locations per
    insertion, total insertions must cost at most ``4 * numEpochs * Δ``.
    Per-color charges are reported so tests can also check the paper's
    finer claim that a color's *first* insertion per epoch is covered by
    its own epoch credit.
    """
    delta = result.instance.reconfig_cost
    if analysis is None:
        capacity = result.num_resources // 2
        analysis = analyze_epochs(result.trace, threshold=max(1, capacity // 2))
    copies = 2 if result.algorithm in ("dLRU", "EDF", "dLRU-EDF") else 1
    per_color: dict[int, int] = {}
    charged = 0
    for event in result.trace.of_type(CacheInEvent):
        cost = copies * delta
        charged += cost
        per_color[event.color] = per_color.get(event.color, 0) + cost
    budget = 4 * analysis.num_epochs * delta
    return CreditAudit("lemma-3.3-epoch-credits", charged, budget, per_color)


def audit_ineligible_drops(
    result: RunResult, *, analysis: EpochAnalysis | None = None
) -> CreditAudit:
    """Replay the Lemma 3.4 scheme: ``Δ`` credit per epoch pays the drops
    of jobs that arrived while the color was still ineligible.

    Additionally verifies the paper's per-epoch claim: within one epoch a
    color drops at most ``Δ`` ineligible jobs (the counter wraps at
    ``Δ``), reported through ``per_color_charges``.
    """
    delta = result.instance.reconfig_cost
    if analysis is None:
        capacity = result.num_resources // 2
        analysis = analyze_epochs(result.trace, threshold=max(1, capacity // 2))
    per_color: dict[int, int] = {}
    charged = 0
    for event in result.trace.of_type(DropEvent):
        if event.eligible:
            continue
        charged += event.count
        per_color[event.color] = per_color.get(event.color, 0) + event.count
    budget = analysis.num_epochs * delta
    return CreditAudit("lemma-3.4-ineligible-drops", charged, budget, per_color)


@dataclass
class SuperEpochAudit:
    """Outcome of replaying the Section 3.4 credit assignment.

    ``credit_by_event`` maps (round, color) of a timestamp update event
    to the credit assigned by rules (1)-(3); ``uncovered`` lists the
    *i*-active colors of complete super-epochs that were neither cached
    throughout their super-epoch nor credited (Lemma 3.13 says this list
    must be empty).
    """

    total_credit: float
    credit_by_event: dict[tuple[int, int], float]
    uncovered: list[tuple[int, int]]  # (super-epoch index, color)
    off_cost: int
    num_nonspecial_epochs: int

    @property
    def lemma_3_13_holds(self) -> bool:
        return not self.uncovered

    def lemma_3_12_bound(self, constant: float = 20.0) -> bool:
        """Total credit is O(Cost_OFF): check with an explicit constant."""
        return self.total_credit <= constant * max(self.off_cost, 1)

    def lemma_3_17_holds(self, delta: int) -> bool:
        """Total credit >= Δ * number of nonspecial epochs (Lemma 3.17)."""
        return self.total_credit >= delta * self.num_nonspecial_epochs


def audit_super_epoch_credits(
    result: RunResult,
    off_schedule,
    off_resources: int,
) -> SuperEpochAudit:
    """Replay the §3.4 credit assignment against an actual OFF schedule.

    Credit rules (with ``Δ`` the reconfiguration cost):

    1. if color ℓ is *i*-active and OFF reconfigures from or to ℓ during
       super-epoch *i*, give ``6Δ`` to ℓ's first timestamp update event
       in super-epoch *i*;
    2. for each OFF reconfiguration from/to ℓ, give ``6Δ`` to each of the
       next two timestamp update events of ℓ;
    3. for each color-ℓ job dropped by OFF, give 6 units to the first
       timestamp update event of ℓ after the counter wrapping event the
       job is attributed to.

    Lemma 3.13 is then checked directly: every *i*-active color of a
    complete super-epoch is either cached by the online algorithm
    throughout super-epoch *i* or its first update event in *i* carries
    at least ``6Δ`` of credit.
    """
    from repro.core.events import CacheInEvent, CacheOutEvent, TimestampEvent

    delta = result.instance.reconfig_cost
    capacity = result.num_resources // 2
    analysis = analyze_epochs(result.trace, threshold=max(1, capacity // 2))

    # OFF-side events: reconfiguration rounds per color, dropped jobs.
    off_reconfigs: dict[int, list[int]] = {}
    current_color: dict[int, int] = {}
    for event in off_schedule.reconfigurations:
        old = current_color.get(event.resource)
        if old is not None:
            off_reconfigs.setdefault(old, []).append(event.round_index)
        off_reconfigs.setdefault(event.new_color, []).append(event.round_index)
        current_color[event.resource] = event.new_color
    executed = off_schedule.executed_jids
    off_drops: dict[int, list[int]] = {}
    for job in result.instance.sequence:
        if job.jid not in executed:
            off_drops.setdefault(job.color, []).append(job.arrival)

    updates = result.trace.of_type(TimestampEvent)
    updates_by_color: dict[int, list[TimestampEvent]] = {}
    for event in updates:
        updates_by_color.setdefault(event.color, []).append(event)

    credit: dict[tuple[int, int], float] = {}

    def give(event: "TimestampEvent", amount: float) -> None:
        key = (event.round_index, event.color)
        credit[key] = credit.get(key, 0.0) + amount

    # Rule 2: each OFF reconfiguration credits the next two update events.
    for color, rounds in off_reconfigs.items():
        events = updates_by_color.get(color, [])
        for reconfig_round in rounds:
            following = [e for e in events if e.round_index >= reconfig_round]
            for event in following[:2]:
                give(event, 6.0 * delta)

    # Rule 3: each OFF-dropped job credits the first update event after
    # its arrival (the wrapping event it feeds precedes that update).
    drop_unit = 6.0 * result.instance.spec.cost.drop_cost
    for color, arrivals in off_drops.items():
        events = updates_by_color.get(color, [])
        for arrival in arrivals:
            following = [e for e in events if e.round_index > arrival]
            if following:
                give(following[0], drop_unit)

    # Rule 1 + Lemma 3.13 check per complete super-epoch.
    cache_in = result.trace.of_type(CacheInEvent)
    cache_out = result.trace.of_type(CacheOutEvent)
    uncovered: list[tuple[int, int]] = []
    for super_epoch in analysis.super_epochs:
        if not super_epoch.complete:
            continue
        start, end = super_epoch.start, super_epoch.end
        for color in sorted(super_epoch.active_colors):
            events = [
                e
                for e in updates_by_color.get(color, [])
                if start <= e.round_index <= (end or start)
            ]
            if not events:
                continue
            first = events[0]
            # Rule 1: OFF touched ℓ inside the super-epoch.
            touched = any(
                start <= r <= (end or start)
                for r in off_reconfigs.get(color, [])
            )
            if touched:
                give(first, 6.0 * delta)
            # Cached throughout [start, end]? Replay the color's cache
            # in/out events: cached at `start` and never evicted inside.
            timeline = sorted(
                [
                    (e.round_index, e.mini_round, True)
                    for e in cache_in
                    if e.color == color
                ]
                + [
                    (e.round_index, e.mini_round, False)
                    for e in cache_out
                    if e.color == color
                ]
            )
            cached_at_start = False
            evicted_inside = False
            for round_index, _, entering in timeline:
                if round_index <= start:
                    cached_at_start = entering
                elif round_index <= (end or start) and not entering:
                    evicted_inside = True
            cached_throughout = cached_at_start and not evicted_inside
            has_credit = credit.get((first.round_index, first.color), 0.0) >= 6.0 * delta
            if not cached_throughout and not has_credit:
                uncovered.append((super_epoch.index, color))

    off_cost = sum(
        1 for _ in off_schedule.reconfigurations
    ) * delta + sum(len(v) for v in off_drops.values())
    nonspecial = analysis.num_epochs - len(analysis.special_epochs())
    return SuperEpochAudit(
        total_credit=sum(credit.values()),
        credit_by_event=credit,
        uncovered=uncovered,
        off_cost=off_cost,
        num_nonspecial_epochs=nonspecial,
    )


def per_epoch_ineligible_drops(result: RunResult) -> dict[tuple[int, int], int]:
    """Ineligible drops attributed to each (color, epoch index).

    Lemma 3.4's inner claim: every value is at most ``Δ``.
    """
    capacity = result.num_resources // 2
    analysis = analyze_epochs(result.trace, threshold=max(1, capacity // 2))
    attributed: dict[tuple[int, int], int] = {}
    for event in result.trace.of_type(DropEvent):
        if event.eligible:
            continue
        for epoch in analysis.epochs_of(event.color):
            end = epoch.end if epoch.end is not None else float("inf")
            if epoch.start < event.round_index <= end:
                attributed[(event.color, epoch.index)] = (
                    attributed.get((event.color, epoch.index), 0) + event.count
                )
                break
        else:
            # Drops in round 0 or exactly at an epoch boundary belong to
            # the epoch that starts there.
            attributed[(event.color, 0)] = (
                attributed.get((event.color, 0), 0) + event.count
            )
    return attributed


class CreditScheme(ReconfigurationScheme):
    """EDF admission gated by the Lemma 3.3 credit account, runnable.

    The auditors above replay the accounting over a finished trace; this
    scheme *enforces* it online: every counter wrapping round deposits
    ``earn_factor * Δ`` credits on its color, and admitting a color
    spends ``copies * Δ`` (one reconfiguration per occupied resource).
    A color is admitted only when its balance covers the spend, so the
    scheme's reconfiguration cost never exceeds the credit earned — the
    Lemma 3.3 inequality holds by construction rather than by analysis.

    The credit vector is exactly the decision state the engine cannot
    see, which makes it the scheme's
    :meth:`~repro.simulation.engine.ReconfigurationScheme.fixed_point_token`:
    wraps only happen in arrival phases (which the sparse core never
    skips), so during an inactive stretch the vector is constant and the
    probe-verified fast-forward is sound.
    """

    name = "credit-edf"

    def __init__(self, earn_factor: int = 4) -> None:
        if earn_factor <= 0:
            raise ValueError("earn_factor must be positive")
        self.earn_factor = earn_factor
        self._credit: dict[int, int] = {}
        self._last_wrap_seen: dict[int, int] = {}

    def reset(self, seed: int | None = None) -> None:
        self._credit = {}
        self._last_wrap_seen = {}

    def setup(self, engine: BatchedEngine) -> None:
        self._credit = {}
        self._last_wrap_seen = {}

    def fixed_point_token(self) -> tuple:
        return tuple(sorted(self._credit.items()))

    def credit_balance(self, color: int) -> int:
        """Current unspent credit of ``color`` (auditing hook)."""
        return self._credit.get(color, 0)

    def reconfigure(self, engine: BatchedEngine) -> None:
        delta = engine.delta
        deposit = self.earn_factor * delta
        for color in engine.eligible_colors():
            last_wrap = engine.state(color).last_wrap
            if last_wrap is not None and self._last_wrap_seen.get(color) != last_wrap:
                self._last_wrap_seen[color] = last_wrap
                self._credit[color] = self._credit.get(color, 0) + deposit
        capacity = engine.cache.capacity
        spend = engine.copies * delta
        ranking = engine.rank_eligible()
        for color in ranking[:capacity]:
            if engine.state(color).idle or color in engine.cache:
                continue
            if self._credit.get(color, 0) < spend:
                continue
            if engine.cache.is_full():
                victim = self._lowest_ranked_cached(engine, ranking)
                engine.cache_evict(victim)
            engine.cache_insert(color)
            self._credit[color] -= spend

    @staticmethod
    def _lowest_ranked_cached(engine: BatchedEngine, ranking: list[int]) -> int:
        cached = engine.cache.cached_colors()
        for color in reversed(ranking):
            if color in cached:
                return color
        raise RuntimeError("cache full but no cached color found in the ranking")
