"""Credit-scheme audits (the amortized accounting of Lemmas 3.3 and 3.4).

The paper pays for ΔLRU-EDF's reconfigurations with ``4Δ`` of credit per
epoch (``2Δ`` "first-time" + ``2Δ`` "end-of-epoch") and for ineligible
drops with ``Δ`` per epoch.  These auditors walk a trace and replay the
accounting event by event, reporting per-epoch balances — a much sharper
check than the aggregate inequalities, and the tool that caught the
paper's bookkeeping nuances during development.

:class:`CreditScheme` turns the same accounting into a runnable
reconfiguration scheme — credit earned on wrapping rounds, spent on
admissions — and doubles as the credit-vector exemplar of the sparse
core's ``fixed_point_token()`` contract.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.epochs import (
    EpochAnalysis,
    analyze_epochs,
    super_epoch_threshold,
)
from repro.core.events import CacheInEvent, DropEvent
from repro.simulation.engine import (
    BatchedEngine,
    ReconfigurationScheme,
    RunResult,
)


def scheme_copies(algorithm: str) -> int:
    """Logical copies per cache insertion for an algorithm by name.

    The paper's ΔLRU/EDF/ΔLRU-EDF keep two locations per cached color
    (Lemma 3.3 charges ``2Δ`` per insertion); every other scheme is
    single-copy.  Shared by the offline auditors and the live monitors.
    """
    return 2 if algorithm in ("dLRU", "EDF", "dLRU-EDF") else 1


@dataclass
class CreditAudit:
    """Outcome of replaying a credit scheme over a trace."""

    scheme: str
    charged: int
    budget: int
    per_color_charges: dict[int, int] = field(default_factory=dict)

    @property
    def within_budget(self) -> bool:
        return self.charged <= self.budget

    @property
    def utilization(self) -> float:
        """Fraction of the credit budget actually consumed."""
        return self.charged / self.budget if self.budget else 0.0


class EpochCreditLedger:
    """Streaming Lemma 3.3 / 3.4 accounting.

    The shared core behind :func:`audit_epoch_credits` and
    :func:`audit_ineligible_drops`: feed it cache insertions and drops in
    stream order (from a finished ``Trace`` or live from the trace bus)
    and ask for the audits at any point.  Because the offline auditors
    and the live monitors drive the *same* ledger, their verdicts agree
    bit for bit.
    """

    def __init__(self, *, delta: int, copies: int) -> None:
        self.delta = delta
        self.copies = copies
        self.charged = 0
        self.per_color: dict[int, int] = {}
        self.ineligible_dropped = 0
        self.ineligible_per_color: dict[int, int] = {}

    def on_cache_in(self, color: int) -> None:
        cost = self.copies * self.delta
        self.charged += cost
        self.per_color[color] = self.per_color.get(color, 0) + cost

    def on_drop(self, color: int, count: int, *, eligible: bool) -> None:
        if eligible:
            return
        self.ineligible_dropped += count
        self.ineligible_per_color[color] = (
            self.ineligible_per_color.get(color, 0) + count
        )

    def epoch_credit_audit(self, num_epochs: int) -> CreditAudit:
        """The Lemma 3.3 audit given the current epoch count."""
        return CreditAudit(
            "lemma-3.3-epoch-credits",
            self.charged,
            4 * num_epochs * self.delta,
            dict(self.per_color),
        )

    def ineligible_drop_audit(self, num_epochs: int) -> CreditAudit:
        """The Lemma 3.4 audit given the current epoch count."""
        return CreditAudit(
            "lemma-3.4-ineligible-drops",
            self.ineligible_dropped,
            num_epochs * self.delta,
            dict(self.ineligible_per_color),
        )


def audit_epoch_credits(
    result: RunResult, *, analysis: EpochAnalysis | None = None
) -> CreditAudit:
    """Replay the Lemma 3.3 scheme: ``4Δ`` credit per epoch pays every
    (logical) cache insertion at ``copies * Δ`` each.

    The aggregate form: with ``numEpochs`` epochs and two locations per
    insertion, total insertions must cost at most ``4 * numEpochs * Δ``.
    Per-color charges are reported so tests can also check the paper's
    finer claim that a color's *first* insertion per epoch is covered by
    its own epoch credit.
    """
    delta = result.instance.reconfig_cost
    if analysis is None:
        analysis = analyze_epochs(
            result.trace, threshold=super_epoch_threshold(result.num_resources)
        )
    ledger = EpochCreditLedger(
        delta=delta, copies=scheme_copies(result.algorithm)
    )
    for event in result.trace.of_type(CacheInEvent):
        ledger.on_cache_in(event.color)
    return ledger.epoch_credit_audit(analysis.num_epochs)


def audit_ineligible_drops(
    result: RunResult, *, analysis: EpochAnalysis | None = None
) -> CreditAudit:
    """Replay the Lemma 3.4 scheme: ``Δ`` credit per epoch pays the drops
    of jobs that arrived while the color was still ineligible.

    Additionally verifies the paper's per-epoch claim: within one epoch a
    color drops at most ``Δ`` ineligible jobs (the counter wraps at
    ``Δ``), reported through ``per_color_charges``.
    """
    delta = result.instance.reconfig_cost
    if analysis is None:
        analysis = analyze_epochs(
            result.trace, threshold=super_epoch_threshold(result.num_resources)
        )
    ledger = EpochCreditLedger(delta=delta, copies=1)
    for event in result.trace.of_type(DropEvent):
        ledger.on_drop(event.color, event.count, eligible=event.eligible)
    return ledger.ineligible_drop_audit(analysis.num_epochs)


@dataclass
class SuperEpochAudit:
    """Outcome of replaying the Section 3.4 credit assignment.

    ``credit_by_event`` maps (round, color) of a timestamp update event
    to the credit assigned by rules (1)-(3); ``uncovered`` lists the
    *i*-active colors of complete super-epochs that were neither cached
    throughout their super-epoch nor credited (Lemma 3.13 says this list
    must be empty).
    """

    total_credit: float
    credit_by_event: dict[tuple[int, int], float]
    uncovered: list[tuple[int, int]]  # (super-epoch index, color)
    off_cost: int
    num_nonspecial_epochs: int

    @property
    def lemma_3_13_holds(self) -> bool:
        return not self.uncovered

    def lemma_3_12_bound(self, constant: float = 20.0) -> bool:
        """Total credit is O(Cost_OFF): check with an explicit constant."""
        return self.total_credit <= constant * max(self.off_cost, 1)

    def lemma_3_17_holds(self, delta: int) -> bool:
        """Total credit >= Δ * number of nonspecial epochs (Lemma 3.17)."""
        return self.total_credit >= delta * self.num_nonspecial_epochs


def off_side_events(
    off_schedule, instance
) -> tuple[dict[int, list[int]], dict[int, list[int]]]:
    """Extract the OFF-side inputs of the §3.4 credit rules.

    Returns ``(off_reconfigs, off_drops)``: per-color lists of the rounds
    OFF reconfigured *from or to* the color, and per-color lists of the
    arrival rounds of jobs OFF dropped (never executed).  Shared by the
    offline auditor and the live super-epoch credit monitor.
    """
    off_reconfigs: dict[int, list[int]] = {}
    current_color: dict[int, int] = {}
    for event in off_schedule.reconfigurations:
        old = current_color.get(event.resource)
        if old is not None:
            off_reconfigs.setdefault(old, []).append(event.round_index)
        off_reconfigs.setdefault(event.new_color, []).append(event.round_index)
        current_color[event.resource] = event.new_color
    executed = off_schedule.executed_jids
    off_drops: dict[int, list[int]] = {}
    for job in instance.sequence:
        if job.jid not in executed:
            off_drops.setdefault(job.color, []).append(job.arrival)
    return off_reconfigs, off_drops


def super_epoch_credit_core(
    *,
    delta: int,
    drop_unit: float,
    analysis: EpochAnalysis,
    updates_by_color: dict[int, list[int]],
    cache_timeline: dict[int, list[tuple[int, int, bool]]],
    off_reconfigs: dict[int, list[int]],
    off_drops: dict[int, list[int]],
) -> tuple[dict[tuple[int, int], float], list[tuple[int, int]]]:
    """The §3.4 credit rules over plain event structures.

    ``updates_by_color`` holds each color's timestamp-update rounds in
    stream order; ``cache_timeline`` holds each color's
    ``(round, mini, entering)`` cache transitions (entering=True for
    cache-in).  Returns ``(credit_by_event, uncovered)``.  Both the
    offline :func:`audit_super_epoch_credits` and the live monitor
    extract these structures from their respective streams and call this
    one core, so their verdicts agree bit for bit.
    """
    credit: dict[tuple[int, int], float] = {}

    def give(round_index: int, color: int, amount: float) -> None:
        key = (round_index, color)
        credit[key] = credit.get(key, 0.0) + amount

    # Rule 2: each OFF reconfiguration credits the next two update events.
    for color, rounds in off_reconfigs.items():
        events = updates_by_color.get(color, [])
        for reconfig_round in rounds:
            following = [r for r in events if r >= reconfig_round]
            for update_round in following[:2]:
                give(update_round, color, 6.0 * delta)

    # Rule 3: each OFF-dropped job credits the first update event after
    # its arrival (the wrapping event it feeds precedes that update).
    for color, arrivals in off_drops.items():
        events = updates_by_color.get(color, [])
        for arrival in arrivals:
            following = [r for r in events if r > arrival]
            if following:
                give(following[0], color, drop_unit)

    # Rule 1 + Lemma 3.13 check per complete super-epoch.
    uncovered: list[tuple[int, int]] = []
    for super_epoch in analysis.super_epochs:
        if not super_epoch.complete:
            continue
        start, end = super_epoch.start, super_epoch.end
        for color in sorted(super_epoch.active_colors):
            events = [
                r
                for r in updates_by_color.get(color, [])
                if start <= r <= (end or start)
            ]
            if not events:
                continue
            first = events[0]
            # Rule 1: OFF touched ℓ inside the super-epoch.
            touched = any(
                start <= r <= (end or start)
                for r in off_reconfigs.get(color, [])
            )
            if touched:
                give(first, color, 6.0 * delta)
            # Cached throughout [start, end]? Replay the color's cache
            # in/out events: cached at `start` and never evicted inside.
            # The sort keeps cache-out before cache-in at an equal
            # (round, mini) — False orders before True.
            timeline = sorted(cache_timeline.get(color, []))
            cached_at_start = False
            evicted_inside = False
            for round_index, _, entering in timeline:
                if round_index <= start:
                    cached_at_start = entering
                elif round_index <= (end or start) and not entering:
                    evicted_inside = True
            cached_throughout = cached_at_start and not evicted_inside
            has_credit = credit.get((first, color), 0.0) >= 6.0 * delta
            if not cached_throughout and not has_credit:
                uncovered.append((super_epoch.index, color))

    return credit, uncovered


def audit_super_epoch_credits(
    result: RunResult,
    off_schedule,
    off_resources: int,
) -> SuperEpochAudit:
    """Replay the §3.4 credit assignment against an actual OFF schedule.

    Credit rules (with ``Δ`` the reconfiguration cost):

    1. if color ℓ is *i*-active and OFF reconfigures from or to ℓ during
       super-epoch *i*, give ``6Δ`` to ℓ's first timestamp update event
       in super-epoch *i*;
    2. for each OFF reconfiguration from/to ℓ, give ``6Δ`` to each of the
       next two timestamp update events of ℓ;
    3. for each color-ℓ job dropped by OFF, give 6 units to the first
       timestamp update event of ℓ after the counter wrapping event the
       job is attributed to.

    Lemma 3.13 is then checked directly: every *i*-active color of a
    complete super-epoch is either cached by the online algorithm
    throughout super-epoch *i* or its first update event in *i* carries
    at least ``6Δ`` of credit.
    """
    from repro.core.events import CacheInEvent, CacheOutEvent, TimestampEvent

    delta = result.instance.reconfig_cost
    analysis = analyze_epochs(
        result.trace, threshold=super_epoch_threshold(result.num_resources)
    )

    off_reconfigs, off_drops = off_side_events(off_schedule, result.instance)

    updates_by_color: dict[int, list[int]] = {}
    for event in result.trace.of_type(TimestampEvent):
        updates_by_color.setdefault(event.color, []).append(event.round_index)

    cache_timeline: dict[int, list[tuple[int, int, bool]]] = {}
    for event in result.trace.of_type(CacheInEvent):
        cache_timeline.setdefault(event.color, []).append(
            (event.round_index, event.mini_round, True)
        )
    for event in result.trace.of_type(CacheOutEvent):
        cache_timeline.setdefault(event.color, []).append(
            (event.round_index, event.mini_round, False)
        )

    credit, uncovered = super_epoch_credit_core(
        delta=delta,
        drop_unit=6.0 * result.instance.spec.cost.drop_cost,
        analysis=analysis,
        updates_by_color=updates_by_color,
        cache_timeline=cache_timeline,
        off_reconfigs=off_reconfigs,
        off_drops=off_drops,
    )

    off_cost = sum(
        1 for _ in off_schedule.reconfigurations
    ) * delta + sum(len(v) for v in off_drops.values())
    nonspecial = analysis.num_epochs - len(analysis.special_epochs())
    return SuperEpochAudit(
        total_credit=sum(credit.values()),
        credit_by_event=credit,
        uncovered=uncovered,
        off_cost=off_cost,
        num_nonspecial_epochs=nonspecial,
    )


def per_epoch_ineligible_drops(result: RunResult) -> dict[tuple[int, int], int]:
    """Ineligible drops attributed to each (color, epoch index).

    Lemma 3.4's inner claim: every value is at most ``Δ``.
    """
    analysis = analyze_epochs(
        result.trace, threshold=super_epoch_threshold(result.num_resources)
    )
    attributed: dict[tuple[int, int], int] = {}
    for event in result.trace.of_type(DropEvent):
        if event.eligible:
            continue
        for epoch in analysis.epochs_of(event.color):
            end = epoch.end if epoch.end is not None else float("inf")
            if epoch.start < event.round_index <= end:
                attributed[(event.color, epoch.index)] = (
                    attributed.get((event.color, epoch.index), 0) + event.count
                )
                break
        else:
            # Drops in round 0 or exactly at an epoch boundary belong to
            # the epoch that starts there.
            attributed[(event.color, 0)] = (
                attributed.get((event.color, 0), 0) + event.count
            )
    return attributed


class CreditScheme(ReconfigurationScheme):
    """EDF admission gated by the Lemma 3.3 credit account, runnable.

    The auditors above replay the accounting over a finished trace; this
    scheme *enforces* it online: every counter wrapping round deposits
    ``earn_factor * Δ`` credits on its color, and admitting a color
    spends ``copies * Δ`` (one reconfiguration per occupied resource).
    A color is admitted only when its balance covers the spend, so the
    scheme's reconfiguration cost never exceeds the credit earned — the
    Lemma 3.3 inequality holds by construction rather than by analysis.

    The credit vector is exactly the decision state the engine cannot
    see, which makes it the scheme's
    :meth:`~repro.simulation.engine.ReconfigurationScheme.fixed_point_token`:
    wraps only happen in arrival phases (which the sparse core never
    skips), so during an inactive stretch the vector is constant and the
    probe-verified fast-forward is sound.
    """

    name = "credit-edf"

    def __init__(self, earn_factor: int = 4) -> None:
        if earn_factor <= 0:
            raise ValueError("earn_factor must be positive")
        self.earn_factor = earn_factor
        self._credit: dict[int, int] = {}
        self._last_wrap_seen: dict[int, int] = {}

    def reset(self, seed: int | None = None) -> None:
        self._credit = {}
        self._last_wrap_seen = {}

    def setup(self, engine: BatchedEngine) -> None:
        self._credit = {}
        self._last_wrap_seen = {}

    def fixed_point_token(self) -> tuple:
        return tuple(sorted(self._credit.items()))

    def state_dict(self) -> dict:
        return {
            "credit": {str(c): v for c, v in self._credit.items()},
            "last_wrap_seen": {
                str(c): v for c, v in self._last_wrap_seen.items()
            },
        }

    def load_state(self, state: dict) -> None:
        self._credit = {int(c): v for c, v in state["credit"].items()}
        self._last_wrap_seen = {
            int(c): v for c, v in state["last_wrap_seen"].items()
        }

    def credit_balance(self, color: int) -> int:
        """Current unspent credit of ``color`` (auditing hook)."""
        return self._credit.get(color, 0)

    def reconfigure(self, engine: BatchedEngine) -> None:
        delta = engine.delta
        deposit = self.earn_factor * delta
        for color in engine.eligible_colors():
            last_wrap = engine.state(color).last_wrap
            if last_wrap is not None and self._last_wrap_seen.get(color) != last_wrap:
                self._last_wrap_seen[color] = last_wrap
                self._credit[color] = self._credit.get(color, 0) + deposit
        capacity = engine.cache.capacity
        spend = engine.copies * delta
        ranking = engine.rank_eligible()
        for color in ranking[:capacity]:
            if engine.state(color).idle or color in engine.cache:
                continue
            if self._credit.get(color, 0) < spend:
                continue
            if engine.cache.is_full():
                victim = self._lowest_ranked_cached(engine, ranking)
                engine.cache_evict(victim)
            engine.cache_insert(color)
            self._credit[color] -= spend

    @staticmethod
    def _lowest_ranked_cached(engine: BatchedEngine, ranking: list[int]) -> int:
        cached = engine.cache.cached_colors()
        for color in reversed(ranking):
            if color in cached:
                return color
        raise RuntimeError("cache full but no cached color found in the ranking")
