"""The paper's constant accounting, as executable code.

The theorems assert "constant competitive with constant augmentation"
without naming constants; the proofs pin them down implicitly.  This
module makes the accounting explicit:

* :func:`theorem1_decomposition` — the Theorem 1 cost budget applied to
  one run: total cost splits into reconfiguration + eligible drops +
  ineligible drops, each bounded by its lemma, giving

      Cost(ΔLRU-EDF) <= Drop(OFF, m) + 5 * numEpochs * Δ,

  where the drop term is certified by Par-EDF and numEpochs is read off
  the trace.  The test suite asserts the budget on every random run.
* :data:`AUGMENTATION_CHAIN` / :func:`overall_augmentation` — the
  resource-augmentation factors each layer consumes, multiplying to the
  end-to-end factor of Theorem 3.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.algorithms.par_edf import run_par_edf
from repro.analysis.epochs import analyze_epochs
from repro.simulation.engine import RunResult

#: (layer, factor, where it comes from).
AUGMENTATION_CHAIN: tuple[tuple[str, int, str], ...] = (
    (
        "ΔLRU-EDF core",
        8,
        "Theorem 1: n = 8m (replication x2, LRU/EDF halves x2, "
        "DS-Seq-EDF comparison x2)",
    ),
    (
        "Distribute / Aggregate",
        3,
        "Lemma 4.1: Aggregate shadows each OFF resource with three",
    ),
    (
        "VarBatch",
        7,
        "Lemma 5.3: early/punctual/late split simulated on 3 + 1 + 3 "
        "resources per OFF resource",
    ),
)


def overall_augmentation() -> int:
    """The end-to-end augmentation factor the analysis consumes."""
    factor = 1
    for _, layer_factor, _ in AUGMENTATION_CHAIN:
        factor *= layer_factor
    return factor


@dataclass(frozen=True)
class Theorem1Budget:
    """One run's measured pieces against the lemma budget."""

    total_cost: int
    reconfig_cost: int
    eligible_drop_cost: int
    ineligible_drop_cost: int
    reconfig_budget: int  # 4 * numEpochs * Δ   (Lemma 3.3)
    eligible_budget: int  # Drop(Par-EDF, m)     (Lemma 3.2 chain)
    ineligible_budget: int  # numEpochs * Δ      (Lemma 3.4)
    num_epochs: int

    @property
    def budget(self) -> int:
        return self.reconfig_budget + self.eligible_budget + self.ineligible_budget

    @property
    def within_budget(self) -> bool:
        return self.total_cost <= self.budget

    @property
    def per_term_within(self) -> bool:
        return (
            self.reconfig_cost <= self.reconfig_budget
            and self.eligible_drop_cost <= self.eligible_budget
            and self.ineligible_drop_cost <= self.ineligible_budget
        )

    @property
    def utilization(self) -> float:
        """Fraction of the theoretical budget the run actually spent."""
        return self.total_cost / self.budget if self.budget else 0.0


def theorem1_decomposition(result: RunResult) -> Theorem1Budget:
    """Apply the Theorem 1 budget to a ΔLRU-EDF run with ``n = 8m``.

    The eligible-drop budget uses Par-EDF on the *whole* sequence (a
    relaxation of the eligible subsequence — still a valid upper-bound
    chain since drops only shrink on subsequences, Lemma 3.9).
    """
    n = result.num_resources
    if n % 8 != 0:
        raise ValueError("the Theorem 1 budget assumes n divisible by 8")
    m = n // 8
    delta = result.instance.reconfig_cost
    capacity = n // 2
    analysis = analyze_epochs(result.trace, threshold=max(1, capacity // 2))
    num_epochs = analysis.num_epochs
    par = run_par_edf(result.instance, m)
    drop_cost_unit = result.instance.spec.cost.drop_cost
    return Theorem1Budget(
        total_cost=result.cost.total,
        reconfig_cost=result.cost.reconfig_cost,
        eligible_drop_cost=result.cost.eligible_drop_cost,
        ineligible_drop_cost=result.cost.ineligible_drop_cost,
        reconfig_budget=4 * num_epochs * delta,
        eligible_budget=par.num_drops * drop_cost_unit,
        ineligible_budget=num_epochs * delta,
        num_epochs=num_epochs,
    )
