"""Epoch and super-epoch extraction (Sections 3.2 and 3.4).

* An **epoch** of color ℓ ends the moment ℓ becomes ineligible; a new one
  starts when the previous ends.  The last epoch of a color may be
  incomplete.  ``numEpochs(σ)`` counts all epochs, incomplete included.
* A **super-epoch** ends the moment at least ``2m`` colors have updated
  their timestamps since its start (``n = 8m`` resources, so ``2m = n/4``).
* A color is ***i*-active** when its timestamp updates during super-epoch
  ``i``; an epoch of an *i*-active color overlapping super-epoch ``i`` is
  an *i*-active epoch.  Epochs that are not *i*-active for any *complete*
  super-epoch are **special**; Lemma 3.16 bounds those by 3 per color.

Everything here is a pure function of a run's event trace.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.events import (
    ArrivalEvent,
    EligibleEvent,
    IneligibleEvent,
    TimestampEvent,
    Trace,
)


@dataclass(frozen=True)
class Epoch:
    """One eligibility cycle of a color.

    ``start`` is the round the epoch begins (0 or the end of the previous
    epoch); ``end`` is the round the color became ineligible, or ``None``
    for the trailing incomplete epoch.
    """

    color: int
    index: int
    start: int
    end: int | None

    @property
    def complete(self) -> bool:
        return self.end is not None

    def overlaps(self, start: int, end: int | None) -> bool:
        """Whether this epoch intersects the round interval [start, end]."""
        self_end = self.end if self.end is not None else float("inf")
        other_end = end if end is not None else float("inf")
        return self.start <= other_end and start <= self_end


@dataclass(frozen=True)
class SuperEpoch:
    """A maximal phase in which fewer than ``2m`` colors updated timestamps."""

    index: int
    start: int
    end: int | None  # round of the closing (2m-th) timestamp update
    active_colors: frozenset[int]

    @property
    def complete(self) -> bool:
        return self.end is not None


@dataclass
class EpochAnalysis:
    """All epoch/super-epoch structure extracted from one trace."""

    epochs_by_color: dict[int, list[Epoch]] = field(default_factory=dict)
    super_epochs: list[SuperEpoch] = field(default_factory=list)
    threshold: int = 0

    @property
    def num_epochs(self) -> int:
        """``numEpochs(σ)``: every epoch, incomplete included."""
        return sum(len(epochs) for epochs in self.epochs_by_color.values())

    def epochs_of(self, color: int) -> list[Epoch]:
        return self.epochs_by_color.get(color, [])

    def active_epochs(self, super_epoch: SuperEpoch) -> list[Epoch]:
        """The *i*-active epochs of ``super_epoch``."""
        out = []
        for color in super_epoch.active_colors:
            for epoch in self.epochs_of(color):
                if epoch.overlaps(super_epoch.start, super_epoch.end):
                    out.append(epoch)
        return out

    def special_epochs(self) -> list[Epoch]:
        """Epochs not *i*-active for any complete super-epoch."""
        nonspecial: set[tuple[int, int]] = set()
        for super_epoch in self.super_epochs:
            if not super_epoch.complete:
                continue
            for epoch in self.active_epochs(super_epoch):
                nonspecial.add((epoch.color, epoch.index))
        return [
            epoch
            for epochs in self.epochs_by_color.values()
            for epoch in epochs
            if (epoch.color, epoch.index) not in nonspecial
        ]


def super_epoch_threshold(num_resources: int) -> int:
    """The super-epoch closing count for ``num_resources`` resources.

    The paper parameterizes ΔLRU-EDF with ``n = 8m`` resources and closes
    a super-epoch after ``2m = n/4`` distinct timestamp updates; with the
    repo's ``capacity = n/2`` cache that is ``capacity / 2``, floored and
    clamped to at least 1 so tiny test instances still form super-epochs.
    Shared by the offline auditors and the live monitors so both sides
    always agree on the structure they are checking.
    """
    capacity = num_resources // 2
    return max(1, capacity // 2)


class EpochStreamBuilder:
    """Incremental epoch/super-epoch reconstruction from an event stream.

    The single source of truth for the Section 3.2/3.4 structure: the
    offline :func:`analyze_epochs` drives it from a finished ``Trace``
    and the live monitors (:mod:`repro.obs.monitor`) drive it record by
    record from the trace bus, so the two paths cannot drift — they run
    the same transitions in the same order.

    Feed it ``on_activity`` (arrival or eligibility of a color),
    ``on_ineligible`` (closes the color's current epoch), and
    ``on_timestamp`` (advances the super-epoch machinery; returns the
    :class:`SuperEpoch` it closed, if any).  :meth:`finish` materializes
    the full :class:`EpochAnalysis`; it is non-destructive, so a monitor
    can snapshot mid-stream.
    """

    def __init__(self, *, threshold: int) -> None:
        if threshold <= 0:
            raise ValueError("super-epoch threshold must be positive")
        self.threshold = threshold
        self._active: set[int] = set()
        self._closings: dict[int, list[int]] = {}
        self._complete_super_epochs: list[SuperEpoch] = []
        self._se_start = 0
        self._se_seen: set[int] = set()
        self._se_index = 0

    def on_activity(self, color: int) -> None:
        """An arrival or eligibility event: the color has epoch activity."""
        self._active.add(color)

    def on_ineligible(self, color: int, round_index: int) -> None:
        """The color became ineligible: close its current epoch."""
        self._active.add(color)
        self._closings.setdefault(color, []).append(round_index)

    def on_timestamp(self, color: int, round_index: int) -> SuperEpoch | None:
        """A timestamp update; returns the super-epoch it closed, if any."""
        seen = self._se_seen
        seen.add(color)
        if len(seen) >= self.threshold:
            closed = SuperEpoch(
                self._se_index, self._se_start, round_index, frozenset(seen)
            )
            self._complete_super_epochs.append(closed)
            self._se_index += 1
            self._se_start = round_index
            self._se_seen = set()
            return closed
        return None

    def epochs_closed(self, color: int) -> int:
        """Complete epochs of ``color`` so far (live-monitor hook)."""
        return len(self._closings.get(color, []))

    @property
    def num_epochs(self) -> int:
        """``numEpochs(σ)`` so far: every active color's closed epochs
        plus its trailing incomplete one."""
        return len(self._active) + sum(
            len(ends) for ends in self._closings.values()
        )

    def finish(self) -> EpochAnalysis:
        """Materialize the analysis seen so far (non-destructive)."""
        analysis = EpochAnalysis(threshold=self.threshold)
        for color in sorted(self._active):
            epochs: list[Epoch] = []
            start = 0
            for index, end in enumerate(self._closings.get(color, [])):
                epochs.append(Epoch(color, index, start, end))
                start = end
            epochs.append(Epoch(color, len(epochs), start, None))
            analysis.epochs_by_color[color] = epochs
        analysis.super_epochs = list(self._complete_super_epochs)
        analysis.super_epochs.append(
            SuperEpoch(self._se_index, self._se_start, None, frozenset(self._se_seen))
        )
        return analysis


def analyze_epochs(trace: Trace, *, threshold: int) -> EpochAnalysis:
    """Extract epochs and super-epochs from a batched-engine trace.

    ``threshold`` is the super-epoch closing count (``2m = n/4`` for the
    paper's parameterization of ΔLRU-EDF).  A thin driver over
    :class:`EpochStreamBuilder` — the live monitors run the same builder
    off the trace bus, so online and offline verdicts agree by
    construction.
    """
    builder = EpochStreamBuilder(threshold=threshold)
    for event in trace:
        if isinstance(event, (ArrivalEvent, EligibleEvent)):
            builder.on_activity(event.color)
        elif isinstance(event, IneligibleEvent):
            builder.on_ineligible(event.color, event.round_index)
        elif isinstance(event, TimestampEvent):
            builder.on_timestamp(event.color, event.round_index)
    return builder.finish()


def annotate_epochs(analysis: EpochAnalysis, tracer) -> int:
    """Write an analysis' epoch structure onto the trace bus.

    Emits one ``epoch`` annotation per extracted epoch — anchored at the
    round the epoch closed (its start round for the trailing incomplete
    epoch) — and one ``super_epoch`` annotation per super-epoch, so a
    rendered timeline (``repro trace``) shows the Section 3.2 epoch
    boundaries inline with the engine's own events.  Returns the number
    of annotations emitted; a ``None`` or disabled tracer emits nothing.
    """
    if tracer is None or not getattr(tracer, "enabled", True):
        return 0
    count = 0
    for color in sorted(analysis.epochs_by_color):
        for epoch in analysis.epochs_by_color[color]:
            tracer.annotation(
                "epoch",
                epoch.end if epoch.end is not None else epoch.start,
                color=color,
                index=epoch.index,
                start=epoch.start,
                complete=epoch.complete,
            )
            count += 1
    for super_epoch in analysis.super_epochs:
        tracer.annotation(
            "super_epoch",
            super_epoch.end if super_epoch.end is not None else super_epoch.start,
            index=super_epoch.index,
            start=super_epoch.start,
            complete=super_epoch.complete,
            active_colors=sorted(super_epoch.active_colors),
        )
        count += 1
    return count
