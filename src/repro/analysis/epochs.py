"""Epoch and super-epoch extraction (Sections 3.2 and 3.4).

* An **epoch** of color ℓ ends the moment ℓ becomes ineligible; a new one
  starts when the previous ends.  The last epoch of a color may be
  incomplete.  ``numEpochs(σ)`` counts all epochs, incomplete included.
* A **super-epoch** ends the moment at least ``2m`` colors have updated
  their timestamps since its start (``n = 8m`` resources, so ``2m = n/4``).
* A color is ***i*-active** when its timestamp updates during super-epoch
  ``i``; an epoch of an *i*-active color overlapping super-epoch ``i`` is
  an *i*-active epoch.  Epochs that are not *i*-active for any *complete*
  super-epoch are **special**; Lemma 3.16 bounds those by 3 per color.

Everything here is a pure function of a run's event trace.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.events import (
    ArrivalEvent,
    EligibleEvent,
    IneligibleEvent,
    TimestampEvent,
    Trace,
)


@dataclass(frozen=True)
class Epoch:
    """One eligibility cycle of a color.

    ``start`` is the round the epoch begins (0 or the end of the previous
    epoch); ``end`` is the round the color became ineligible, or ``None``
    for the trailing incomplete epoch.
    """

    color: int
    index: int
    start: int
    end: int | None

    @property
    def complete(self) -> bool:
        return self.end is not None

    def overlaps(self, start: int, end: int | None) -> bool:
        """Whether this epoch intersects the round interval [start, end]."""
        self_end = self.end if self.end is not None else float("inf")
        other_end = end if end is not None else float("inf")
        return self.start <= other_end and start <= self_end


@dataclass(frozen=True)
class SuperEpoch:
    """A maximal phase in which fewer than ``2m`` colors updated timestamps."""

    index: int
    start: int
    end: int | None  # round of the closing (2m-th) timestamp update
    active_colors: frozenset[int]

    @property
    def complete(self) -> bool:
        return self.end is not None


@dataclass
class EpochAnalysis:
    """All epoch/super-epoch structure extracted from one trace."""

    epochs_by_color: dict[int, list[Epoch]] = field(default_factory=dict)
    super_epochs: list[SuperEpoch] = field(default_factory=list)
    threshold: int = 0

    @property
    def num_epochs(self) -> int:
        """``numEpochs(σ)``: every epoch, incomplete included."""
        return sum(len(epochs) for epochs in self.epochs_by_color.values())

    def epochs_of(self, color: int) -> list[Epoch]:
        return self.epochs_by_color.get(color, [])

    def active_epochs(self, super_epoch: SuperEpoch) -> list[Epoch]:
        """The *i*-active epochs of ``super_epoch``."""
        out = []
        for color in super_epoch.active_colors:
            for epoch in self.epochs_of(color):
                if epoch.overlaps(super_epoch.start, super_epoch.end):
                    out.append(epoch)
        return out

    def special_epochs(self) -> list[Epoch]:
        """Epochs not *i*-active for any complete super-epoch."""
        nonspecial: set[tuple[int, int]] = set()
        for super_epoch in self.super_epochs:
            if not super_epoch.complete:
                continue
            for epoch in self.active_epochs(super_epoch):
                nonspecial.add((epoch.color, epoch.index))
        return [
            epoch
            for epochs in self.epochs_by_color.values()
            for epoch in epochs
            if (epoch.color, epoch.index) not in nonspecial
        ]


def analyze_epochs(trace: Trace, *, threshold: int) -> EpochAnalysis:
    """Extract epochs and super-epochs from a batched-engine trace.

    ``threshold`` is the super-epoch closing count (``2m = n/4`` for the
    paper's parameterization of ΔLRU-EDF).
    """
    if threshold <= 0:
        raise ValueError("super-epoch threshold must be positive")
    analysis = EpochAnalysis(threshold=threshold)

    # Epochs: colors with any arrival activity have at least one epoch;
    # each IneligibleEvent closes one and opens the next.
    active_colors: set[int] = set()
    closings: dict[int, list[int]] = {}
    for event in trace:
        if isinstance(event, (ArrivalEvent, EligibleEvent)):
            active_colors.add(event.color)
        elif isinstance(event, IneligibleEvent):
            active_colors.add(event.color)
            closings.setdefault(event.color, []).append(event.round_index)
    for color in sorted(active_colors):
        epochs: list[Epoch] = []
        start = 0
        for index, end in enumerate(closings.get(color, [])):
            epochs.append(Epoch(color, index, start, end))
            start = end
        epochs.append(Epoch(color, len(epochs), start, None))
        analysis.epochs_by_color[color] = epochs

    # Super-epochs from timestamp update events.
    updates = trace.of_type(TimestampEvent)
    start_round = 0
    seen: set[int] = set()
    index = 0
    for event in updates:
        seen.add(event.color)
        if len(seen) >= threshold:
            analysis.super_epochs.append(
                SuperEpoch(index, start_round, event.round_index, frozenset(seen))
            )
            index += 1
            start_round = event.round_index
            seen = set()
    analysis.super_epochs.append(
        SuperEpoch(index, start_round, None, frozenset(seen))
    )
    return analysis


def annotate_epochs(analysis: EpochAnalysis, tracer) -> int:
    """Write an analysis' epoch structure onto the trace bus.

    Emits one ``epoch`` annotation per extracted epoch — anchored at the
    round the epoch closed (its start round for the trailing incomplete
    epoch) — and one ``super_epoch`` annotation per super-epoch, so a
    rendered timeline (``repro trace``) shows the Section 3.2 epoch
    boundaries inline with the engine's own events.  Returns the number
    of annotations emitted; a ``None`` or disabled tracer emits nothing.
    """
    if tracer is None or not getattr(tracer, "enabled", True):
        return 0
    count = 0
    for color in sorted(analysis.epochs_by_color):
        for epoch in analysis.epochs_by_color[color]:
            tracer.annotation(
                "epoch",
                epoch.end if epoch.end is not None else epoch.start,
                color=color,
                index=epoch.index,
                start=epoch.start,
                complete=epoch.complete,
            )
            count += 1
    for super_epoch in analysis.super_epochs:
        tracer.annotation(
            "super_epoch",
            super_epoch.end if super_epoch.end is not None else super_epoch.start,
            index=super_epoch.index,
            start=super_epoch.start,
            complete=super_epoch.complete,
            active_colors=sorted(super_epoch.active_colors),
        )
        count += 1
    return count
