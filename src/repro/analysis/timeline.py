"""ASCII resource timelines: the Gantt view of a schedule.

Renders which color each resource held in each round, with executions
marked, so the thrashing/underutilization signatures the paper reasons
about are directly visible::

    r0 | AAAA....BBBBBBBB
    r1 | aaaa....bbbbbbbb

Uppercase = the resource executed a job that round, lowercase = held the
color but idled, ``.`` = black (never configured).  Colors are mapped to
letters in first-seen order; wide instances fall back to modulo-26
letters with a legend.
"""

from __future__ import annotations

import string
from dataclasses import dataclass

from repro.core.job import BLACK
from repro.core.schedule import Schedule


@dataclass(frozen=True)
class TimelineView:
    """Rendered timeline plus the color legend used."""

    text: str
    legend: dict[int, str]

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.text


def render_timeline(
    schedule: Schedule,
    horizon: int,
    *,
    start: int = 0,
    end: int | None = None,
    max_width: int = 120,
) -> TimelineView:
    """Render rounds ``[start, end)`` of a schedule as ASCII rows.

    Windows wider than ``max_width`` rounds are downsampled by showing
    one column per ``ceil(width / max_width)`` rounds (a column shows the
    color at its first round and counts any execution in the stride).
    """
    if end is None:
        end = horizon
    if not 0 <= start < end:
        raise ValueError(f"bad window [{start}, {end})")
    width = end - start
    stride = max(1, -(-width // max_width))

    # Per-resource color arrays over the window.
    colors = {
        r: [BLACK] * width for r in range(schedule.num_resources)
    }
    current = [BLACK] * schedule.num_resources
    for event in schedule.reconfigurations:
        if event.round_index >= end:
            break
        current[event.resource] = event.new_color
        if event.round_index >= start:
            for k in range(event.round_index - start, width):
                colors[event.resource][k] = event.new_color
    # Events before the window set the initial color.
    initial = [BLACK] * schedule.num_resources
    for event in schedule.reconfigurations:
        if event.round_index < start:
            initial[event.resource] = event.new_color
    for r in range(schedule.num_resources):
        for k in range(width):
            if colors[r][k] == BLACK and initial[r] != BLACK:
                colors[r][k] = initial[r]
            elif colors[r][k] != BLACK:
                break

    executed: set[tuple[int, int]] = set()
    for event in schedule.executions:
        if start <= event.round_index < end:
            executed.add((event.resource, event.round_index))

    legend: dict[int, str] = {}

    def letter(color: int) -> str:
        if color not in legend:
            legend[color] = string.ascii_uppercase[len(legend) % 26]
        return legend[color]

    lines = []
    label_width = len(f"r{schedule.num_resources - 1}")
    for r in range(schedule.num_resources):
        cells = []
        for col_start in range(0, width, stride):
            col_rounds = range(col_start, min(col_start + stride, width))
            color = colors[r][col_start]
            if color == BLACK:
                cells.append(".")
                continue
            ran = any((r, start + k) in executed for k in col_rounds)
            cell = letter(color)
            cells.append(cell if ran else cell.lower())
        lines.append(f"r{r}".ljust(label_width) + " | " + "".join(cells))
    legend_line = "legend: " + ", ".join(
        f"{mark}=color {color}" for color, mark in sorted(legend.items())
    )
    header = f"rounds [{start}, {end}) (1 column = {stride} round(s))"
    text = "\n".join([header, *lines, legend_line if legend else "legend: (empty)"])
    return TimelineView(text, dict(legend))


def reconfiguration_profile(schedule: Schedule, horizon: int) -> list[int]:
    """Reconfigurations per round — the thrashing signature as a series."""
    profile = [0] * horizon
    for event in schedule.reconfigurations:
        if event.round_index < horizon:
            profile[event.round_index] += 1
    return profile


def idle_profile(schedule: Schedule, horizon: int) -> list[int]:
    """Configured-but-idle resource-rounds per round — the
    underutilization signature."""
    configured = [0] * horizon
    current = [False] * schedule.num_resources
    events = iter(schedule.reconfigurations)
    pending = next(events, None)
    for k in range(horizon):
        while pending is not None and pending.round_index <= k:
            current[pending.resource] = True
            pending = next(events, None)
        configured[k] = sum(current)
    executed_per_round = [0] * horizon
    for event in schedule.executions:
        if event.round_index < horizon:
            executed_per_round[event.round_index] += 1
    return [
        max(0, configured[k] - executed_per_round[k]) for k in range(horizon)
    ]
