"""Result export: run results and experiment reports to JSON/CSV.

Experiment pipelines often feed downstream tooling (plotting, regression
dashboards); these helpers serialize the structured objects without any
third-party dependency.
"""

from __future__ import annotations

import csv
import io
import json
from pathlib import Path
from typing import TYPE_CHECKING, Any

from repro.simulation.engine import RunResult

if TYPE_CHECKING:  # pragma: no cover - avoids a circular import at runtime
    from repro.experiments.base import ExperimentReport


def run_result_to_dict(result: RunResult) -> dict[str, Any]:
    """JSON-friendly summary of one run (no event-level data)."""
    return {
        "algorithm": result.algorithm,
        "instance": result.instance.name,
        "num_resources": result.num_resources,
        "speed": result.speed,
        "horizon": result.instance.horizon,
        "num_jobs": len(result.instance.sequence),
        "num_colors": len(result.instance.spec.delay_bounds),
        "reconfig_cost_delta": result.instance.reconfig_cost,
        "cost": result.cost.summary(),
    }


def run_result_to_json(result: RunResult, *, indent: int | None = None) -> str:
    """JSON form of :func:`run_result_to_dict`."""
    return json.dumps(run_result_to_dict(result), indent=indent)


def report_to_dict(report: "ExperimentReport") -> dict[str, Any]:
    """Full experiment report: rows, summary, and rendered tables."""
    return {
        "experiment_id": report.experiment_id,
        "title": report.title,
        "rows": [_jsonable(row) for row in report.rows],
        "summary": _jsonable(report.summary),
        "tables": [table.to_markdown() for table in report.tables],
    }


def report_to_json(report: "ExperimentReport", *, indent: int | None = 2) -> str:
    """JSON form of :func:`report_to_dict`."""
    return json.dumps(report_to_dict(report), indent=indent)


def rows_to_csv(rows: list[dict[str, Any]]) -> str:
    """Flatten experiment rows into CSV (union of keys, sorted)."""
    if not rows:
        return ""
    flat_rows = [_flatten(row) for row in rows]
    fields = sorted({key for row in flat_rows for key in row})
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=fields)
    writer.writeheader()
    for row in flat_rows:
        writer.writerow(row)
    return buffer.getvalue()


def save_report(
    report: "ExperimentReport", directory: str | Path, *, stem: str | None = None
) -> dict[str, Path]:
    """Write <stem>.json, <stem>.csv and <stem>.txt; return the paths."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    stem = stem or report.experiment_id
    paths = {
        "json": directory / f"{stem}.json",
        "csv": directory / f"{stem}.csv",
        "txt": directory / f"{stem}.txt",
    }
    paths["json"].write_text(report_to_json(report) + "\n")
    paths["csv"].write_text(rows_to_csv(report.rows))
    paths["txt"].write_text(report.render() + "\n")
    return paths


def _flatten(row: dict[str, Any], prefix: str = "") -> dict[str, Any]:
    flat: dict[str, Any] = {}
    for key, value in row.items():
        name = f"{prefix}{key}"
        if isinstance(value, dict):
            flat.update(_flatten(value, f"{name}."))
        elif isinstance(value, (list, tuple)):
            flat[name] = json.dumps(_jsonable(value))
        else:
            flat[name] = value
    return flat


def _jsonable(value: Any) -> Any:
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)
