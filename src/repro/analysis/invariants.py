"""Executable checks of the paper's lemma inequalities on real runs.

The proofs bound quantities of a ΔLRU-EDF run by quantities of other
(runnable!) algorithms.  Each checker returns an :class:`InvariantReport`
with the two sides of the inequality, so the test suite can assert them
on every random trace and the ``EXP-L`` benchmark can print the margins.

* **Lemma 3.2**: ``EligibleDrop(ΔLRU-EDF, n) <= Drop(OFF, m)``, proved
  through the chain ``EligibleDrop <= Drop(DS-Seq-EDF on eligible jobs, 2m
  slots) <= Drop(Par-EDF, m) <= Drop(OFF, m)``; we check every link.
* **Lemma 3.3**: logical reconfiguration cost ``<= 4 * numEpochs * Δ``.
* **Lemma 3.4**: ineligible drop cost ``<= numEpochs * Δ``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.algorithms.par_edf import run_par_edf
from repro.algorithms.seq_edf import run_ds_seq_edf
from repro.analysis.epochs import analyze_epochs
from repro.core.events import CacheInEvent, DropEvent
from repro.core.instance import Instance, RequestSequence
from repro.simulation.engine import RunResult


@dataclass(frozen=True)
class InvariantReport:
    """One checked inequality: ``lhs <= rhs`` with provenance."""

    name: str
    lhs: int
    rhs: int

    @property
    def holds(self) -> bool:
        return self.lhs <= self.rhs

    @property
    def slack(self) -> int:
        return self.rhs - self.lhs

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        relation = "<=" if self.holds else ">"
        return f"{self.name}: {self.lhs} {relation} {self.rhs}"


def classify_jobs(result: RunResult) -> dict[int, str]:
    """Per-job outcome: ``executed``, ``dropped_eligible`` or
    ``dropped_ineligible`` (the Section 3.2 job classification).

    Reconstructed from the trace: at a drop event of color ℓ in round k,
    the dropped jobs are exactly the color-ℓ jobs with deadline k that
    were never executed, and the event records the color's eligibility at
    that moment.
    """
    executed = result.schedule.executed_jids
    outcome: dict[int, str] = {}
    by_color_deadline: dict[tuple[int, int], list[int]] = {}
    for job in result.instance.sequence:
        outcome[job.jid] = "executed" if job.jid in executed else "unresolved"
        by_color_deadline.setdefault((job.color, job.deadline), []).append(job.jid)
    for event in result.trace.of_type(DropEvent):
        label = "dropped_eligible" if event.eligible else "dropped_ineligible"
        dropped = [
            jid
            for jid in by_color_deadline.get((event.color, event.round_index), [])
            if jid not in executed
        ]
        if len(dropped) != event.count:
            raise AssertionError(
                f"trace drop count {event.count} for color {event.color} at "
                f"round {event.round_index} does not match reconstruction "
                f"({len(dropped)})"
            )
        for jid in dropped:
            outcome[jid] = label
    unresolved = [jid for jid, label in outcome.items() if label == "unresolved"]
    if unresolved:
        raise AssertionError(f"jobs neither executed nor dropped: {unresolved[:5]}")
    return outcome


def eligible_subsequence(result: RunResult) -> Instance:
    """The subsequence α of eligible jobs (everything not dropped while
    its color was ineligible), as an instance on the same spec."""
    outcome = classify_jobs(result)
    keep = [
        job
        for job in result.instance.sequence
        if outcome[job.jid] != "dropped_ineligible"
    ]
    return Instance(
        result.instance.spec,
        RequestSequence(keep, result.instance.horizon),
        name=f"{result.instance.name}|eligible",
    )


def check_lemma_3_3(result: RunResult) -> InvariantReport:
    """Logical reconfiguration cost ``<= 4 * numEpochs * Δ``.

    The paper charges ``copies * Δ`` per cache insertion (logical
    accounting); the engine's physical cost only skips redundant
    recolorings, so it is bounded by the logical cost checked here.
    """
    delta = result.instance.reconfig_cost
    copies = result.num_resources // _capacity(result)
    logical = len(result.trace.of_type(CacheInEvent)) * copies * delta
    analysis = analyze_epochs(result.trace, threshold=max(1, _capacity(result) // 2))
    bound = 4 * analysis.num_epochs * delta
    return InvariantReport("Lemma 3.3 (reconfig <= 4*numEpochs*Δ)", logical, bound)


def check_lemma_3_4(result: RunResult) -> InvariantReport:
    """Ineligible drop cost ``<= numEpochs * Δ``."""
    delta = result.instance.reconfig_cost
    analysis = analyze_epochs(result.trace, threshold=max(1, _capacity(result) // 2))
    return InvariantReport(
        "Lemma 3.4 (ineligibleDrop <= numEpochs*Δ)",
        result.cost.ineligible_drop_cost,
        analysis.num_epochs * delta,
    )


def check_drop_containment_chain(result: RunResult) -> list[InvariantReport]:
    """The Lemma 3.2 chain, one report per link.

    With ``n`` resources for ΔLRU-EDF and ``m = n/8`` for OFF:

    1. ``EligibleDrop(ΔLRU-EDF, n) <= Drop(DS-Seq-EDF, 2m slots)`` on the
       eligible subsequence (Lemma 3.10 uses ``2m = n/4`` distinct slots);
    2. ``Drop(DS-Seq-EDF, 2m) <= Drop(Par-EDF, m)`` on that subsequence
       (Corollary 3.1, double speed compensating for sequential config);
    3. ``Drop(Par-EDF, m) on α <= Drop(Par-EDF, m) on σ`` is *not* claimed
       by the paper (Lemma 3.6 is about OFF); instead we report
       ``Drop(Par-EDF, m, α)`` as the certified lower bound on
       ``Drop(OFF, m, α) <= Drop(OFF, m, σ)``.
    """
    n = result.num_resources
    if n % 8 != 0:
        raise ValueError("the Lemma 3.2 chain assumes n divisible by 8")
    m = n // 8
    alpha = eligible_subsequence(result)
    ds = run_ds_seq_edf(alpha, 2 * m)
    par = run_par_edf(alpha, m)
    reports = [
        InvariantReport(
            "Lemma 3.10 (eligibleDrop <= drop(DS-Seq-EDF, 2m))",
            result.cost.num_eligible_drops,
            ds.cost.num_drops,
        ),
        InvariantReport(
            "Corollary 3.1 (drop(DS-Seq-EDF, 2m) <= drop(Par-EDF, m))",
            ds.cost.num_drops,
            par.num_drops,
        ),
    ]
    return reports


def _capacity(result: RunResult) -> int:
    """Distinct-color capacity of the run (slots = resources / copies).

    The batched engine uses 2 copies for the Section 3.1 algorithms; the
    run result records total resources and speed, and the schedule's
    executions never exceed capacity * copies, so capacity is resources
    divided by the replication factor inferred from the algorithm.
    """
    # Section 3.1 algorithms replicate each color twice.
    if result.algorithm in ("dLRU", "EDF", "dLRU-EDF"):
        return result.num_resources // 2
    return result.num_resources
