"""Run comparison: where do two algorithms' schedules diverge and why.

Given two runs on the *same* instance, compute cost deltas, per-color
attributions, the first divergence round, and head-to-head summaries
across a matrix of (instance, algorithm) runs — the analysis behind the
EXP-M style "who thrashes, who starves" tables.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.core.instance import Instance
from repro.simulation.engine import ReconfigurationScheme, RunResult, simulate


@dataclass(frozen=True)
class RunComparison:
    """Structured delta between two runs on one instance."""

    left: str
    right: str
    cost_delta: int  # left - right
    reconfig_delta: int
    drop_delta: int
    first_divergence_round: int | None
    per_color_drop_delta: dict[int, int]

    @property
    def winner(self) -> str:
        if self.cost_delta < 0:
            return self.left
        if self.cost_delta > 0:
            return self.right
        return "tie"


def compare_runs(a: RunResult, b: RunResult) -> RunComparison:
    """Compare two runs of different algorithms on the same instance."""
    if a.instance is not b.instance and a.instance.name != b.instance.name:
        raise ValueError("compare runs on the same instance")
    first = _first_divergence(a, b)
    colors = set(a.cost.drops_by_color) | set(b.cost.drops_by_color)
    per_color = {
        color: a.cost.drops_by_color.get(color, 0)
        - b.cost.drops_by_color.get(color, 0)
        for color in sorted(colors)
    }
    return RunComparison(
        left=a.algorithm,
        right=b.algorithm,
        cost_delta=a.total_cost - b.total_cost,
        reconfig_delta=a.cost.num_reconfigs - b.cost.num_reconfigs,
        drop_delta=a.cost.num_drops - b.cost.num_drops,
        first_divergence_round=first,
        per_color_drop_delta=per_color,
    )


def _first_divergence(a: RunResult, b: RunResult) -> int | None:
    """First round where the two schedules' actions differ."""
    a_actions = _actions_by_round(a)
    b_actions = _actions_by_round(b)
    last = max(
        max(a_actions, default=0),
        max(b_actions, default=0),
    )
    for round_index in range(last + 1):
        if a_actions.get(round_index) != b_actions.get(round_index):
            return round_index
    return None


def _actions_by_round(result: RunResult) -> dict[int, tuple]:
    actions: dict[int, list] = {}
    for event in result.schedule.reconfigurations:
        actions.setdefault(event.round_index, []).append(
            ("reconfig", event.resource, event.new_color)
        )
    for event in result.schedule.executions:
        actions.setdefault(event.round_index, []).append(
            ("execute", event.jid)
        )
    return {k: tuple(sorted(v)) for k, v in actions.items()}


@dataclass
class Matchup:
    """Head-to-head record across a set of instances."""

    left: str
    right: str
    left_wins: int = 0
    right_wins: int = 0
    ties: int = 0
    cost_deltas: list[int] = field(default_factory=list)

    @property
    def mean_delta(self) -> float:
        return float(np.mean(self.cost_deltas)) if self.cost_deltas else 0.0


def head_to_head(
    instances: Sequence[Instance],
    left_factory: Callable[[], ReconfigurationScheme],
    right_factory: Callable[[], ReconfigurationScheme],
    num_resources: int,
) -> Matchup:
    """Run both schemes on every instance and tally wins."""
    left_name = left_factory().name
    right_name = right_factory().name
    matchup = Matchup(left_name, right_name)
    for instance in instances:
        a = simulate(instance, left_factory(), num_resources)
        b = simulate(instance, right_factory(), num_resources)
        comparison = compare_runs(a, b)
        matchup.cost_deltas.append(comparison.cost_delta)
        if comparison.winner == left_name:
            matchup.left_wins += 1
        elif comparison.winner == right_name:
            matchup.right_wins += 1
        else:
            matchup.ties += 1
    return matchup
