"""Randomized adversary search.

The appendix constructions are hand-built worst cases; this tool *hunts*
for bad inputs automatically: a mutation hill-climber over rate-limited
batched instances that maximizes an algorithm's measured competitive
ratio (cost against the best certified offline estimate).  It serves two
purposes:

* **validation** — for ΔLRU-EDF the search should plateau at a small
  constant (Theorem 1 says no input family blows up);
* **exploration** — for ΔLRU and EDF it rediscovers the appendix failure
  modes from random seeds, which the tests assert.

Instances are encoded as batch-size matrices (color x block), mutated by
point edits, and scored with a seeded, deterministic pipeline.

Restarts are independent once their random draws are fixed, so the
search pre-draws every restart's initial matrix and mutation schedule
from the single seeded generator (in the exact order a serial climb
would consume them) and then climbs each restart separately — serially,
or fanned out over a :class:`~repro.runtime.parallel.ParallelRunner`
with *identical* results.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.core.instance import BatchMode, Instance, make_instance
from repro.core.job import JobFactory
from repro.obs.tracing import MemorySink, Tracer
from repro.offline.heuristic import best_offline_heuristic
from repro.offline.lower_bounds import combined_lower_bound
from repro.runtime.parallel import ParallelRunner
from repro.simulation.engine import ReconfigurationScheme, simulate


@dataclass
class SearchConfig:
    """Knobs of the hill climber."""

    num_colors: int = 4
    bounds: Sequence[int] = (2, 4, 8)
    horizon: int = 64
    delta: int = 2
    num_resources: int = 8
    offline_resources: int = 1
    iterations: int = 200
    restarts: int = 3
    mutations_per_step: int = 3
    seed: int = 0
    #: "lower" scores against a feasible hindsight schedule (ratio lower
    #: bound — right for showing an algorithm is bad); "upper" scores
    #: against the certified lower bound on OFF.
    denominator: str = "lower"
    #: Lookahead windows tried by the hindsight-schedule denominator
    #: (``denominator="lower"``).  More windows score tighter but slower.
    offline_windows: Sequence[int] = (32,)
    #: Hysteresis values tried by the hindsight-schedule denominator.
    offline_hysteresis: Sequence[float] = (1.0,)
    #: Engine backend for scoring runs (None = default sparse core;
    #: "vectorized" needs the repro[vec] extra).  Scores are engine-
    #: independent — all backends are bit-identical on costs — so this
    #: is purely a throughput knob for large searches.
    engine: str | None = None
    #: Optional warm start: a rate-limited instance to seed the first
    #: restart with (its per-color delay bounds override the random
    #: bound assignment).  Random mutation rarely synthesizes the
    #: knife-edge appendix structures from scratch; warm-starting shows
    #: whether a scheme's known adversary is a local optimum the search
    #: can hold on to (pure schemes) or not an adversary at all
    #: (ΔLRU-EDF).
    warm_start: Instance | None = None
    #: Opt-in cross-restart score cache: restarts climb serially sharing
    #: one :class:`ScoreCache`, so every restart sees the merged contents
    #: of all earlier ones.  Hits return exactly what recomputation
    #: would, so the best instance/ratio/trajectory stay bit-identical
    #: to the per-restart default — only the hit rate (and wall clock)
    #: change.  A passed ``runner`` is not fanned out in this mode;
    #: per-restart caching stays the default so the serial==parallel
    #: bit-identity gate is unaffected.
    shared_cache: bool = False


@dataclass
class SearchResult:
    """Best instance found and the score trajectory."""

    best_instance: Instance
    best_ratio: float
    trajectory: list[float] = field(default_factory=list)
    evaluations: int = 0
    #: Scoring-pipeline memoization telemetry, summed over restarts (a
    #: hit means a simulation or offline estimate was skipped entirely).
    score_cache_hits: int = 0
    score_cache_misses: int = 0
    #: Whether the run used the cross-restart shared cache.
    shared_cache: bool = False
    #: Wall-clock seconds spent climbing (compare a shared-cache run
    #: against a per-restart run of the same config for the delta).
    wall_clock_seconds: float = 0.0
    #: Seconds spent inside cache-miss computations, summed over
    #: restarts; divides out to a per-miss cost for the saved estimate.
    score_cache_miss_seconds: float = 0.0

    @property
    def score_cache_hit_rate(self) -> float:
        """Fraction of score lookups answered from the cache."""
        lookups = self.score_cache_hits + self.score_cache_misses
        return self.score_cache_hits / lookups if lookups else 0.0

    @property
    def score_cache_saved_seconds(self) -> float:
        """Estimated wall clock the cache saved: hits x mean miss cost."""
        if not self.score_cache_misses:
            return 0.0
        per_miss = self.score_cache_miss_seconds / self.score_cache_misses
        return self.score_cache_hits * per_miss


def _decode(matrix: np.ndarray, config: SearchConfig, bounds: dict[int, int]) -> Instance:
    factory = JobFactory()
    jobs = []
    for color in range(config.num_colors):
        bound = bounds[color]
        for block_index in range(matrix.shape[1]):
            start = block_index * bound
            if start >= config.horizon:
                break
            size = int(matrix[color, block_index])
            size = max(0, min(size, bound))  # rate limit
            jobs += factory.batch(start, color, bound, size)
    return make_instance(
        jobs,
        bounds,
        config.delta,
        batch_mode=BatchMode.RATE_LIMITED,
        horizon=config.horizon + max(bounds.values()),
        name="searched-adversary",
    )


class ScoreCache:
    """Content-addressed memo for the adversary scoring pipeline.

    Keys are the exact bytes of a batch-size matrix plus the bound
    assignment and a config fingerprint, so a hit can only ever return
    what recomputation would — caching never perturbs the (serial or
    parallel) search trajectory.  Hill climbs revisit matrices often: a
    point mutation that rewrites a cell to its current value reproduces
    the incumbent bit for bit.  Online and offline scores are cached
    separately because the offline denominator does not depend on the
    scheme under attack.
    """

    __slots__ = ("_online", "_offline", "hits", "misses", "miss_seconds")

    def __init__(self) -> None:
        self._online: dict[tuple, int] = {}
        self._offline: dict[tuple, int] = {}
        self.hits = 0
        self.misses = 0
        self.miss_seconds = 0.0

    def _lookup(self, table: dict, key: tuple, compute: Callable[[], int]) -> int:
        try:
            value = table[key]
            self.hits += 1
        except KeyError:
            started = time.perf_counter()
            value = table[key] = compute()
            self.miss_seconds += time.perf_counter() - started
            self.misses += 1
        return value

    def merge_from(self, other: "ScoreCache") -> None:
        """Absorb another cache's entries (post-restart merge path).

        Existing entries win: both sides are content-addressed, so a
        collision means equal values and keeping ours is free.
        """
        for mine, theirs in (
            (self._online, other._online),
            (self._offline, other._offline),
        ):
            for key, value in theirs.items():
                mine.setdefault(key, value)

    def online_cost(self, key: tuple, compute: Callable[[], int]) -> int:
        return self._lookup(self._online, key, compute)

    def offline_cost(self, key: tuple, compute: Callable[[], int]) -> int:
        return self._lookup(self._offline, key, compute)


def _matrix_key(matrix: np.ndarray, bounds: dict[int, int], horizon: int) -> tuple:
    """Content address of one candidate: canonical matrix bytes + bounds.

    The key uses the matrix as :func:`_decode` actually reads it — batch
    sizes clamped to the rate limit and blocks starting at or beyond the
    horizon zeroed — so mutations that only touch clamped or dead cells
    hit the cache instead of re-simulating an identical instance.
    """
    canon = matrix.copy()
    num_blocks = canon.shape[1]
    for color in range(canon.shape[0]):
        bound = bounds[color]
        np.clip(canon[color], 0, bound, out=canon[color])
        first_dead = (horizon + bound - 1) // bound
        if first_dead < num_blocks:
            canon[color, first_dead:] = 0
    return (canon.shape, canon.tobytes(), tuple(sorted(bounds.items())))


def _online_fingerprint(config: SearchConfig, scheme_name: str) -> tuple:
    return (
        scheme_name,
        config.num_resources,
        config.delta,
        config.horizon,
    )


def _offline_fingerprint(config: SearchConfig) -> tuple:
    return (
        config.denominator,
        config.offline_resources,
        config.delta,
        config.horizon,
        tuple(config.offline_windows),
        tuple(config.offline_hysteresis),
    )


def _score(
    instance: Instance,
    scheme_factory: Callable[[], ReconfigurationScheme],
    config: SearchConfig,
    *,
    cache: ScoreCache | None = None,
    content_key: tuple | None = None,
) -> float:
    if len(instance.sequence) == 0:
        return 0.0

    def run_online() -> int:
        # Only the total cost matters here, so take the engine fast path.
        return simulate(
            instance,
            scheme_factory(),
            config.num_resources,
            record="costs",
            engine=config.engine,
        ).total_cost

    def run_offline() -> int:
        if config.denominator == "lower":
            return best_offline_heuristic(
                instance,
                config.offline_resources,
                windows=tuple(config.offline_windows),
                hysteresis_values=tuple(config.offline_hysteresis),
            ).cost
        return combined_lower_bound(instance, config.offline_resources)

    if cache is not None and content_key is not None:
        scheme_name = scheme_factory().name
        online_cost = cache.online_cost(
            (content_key, _online_fingerprint(config, scheme_name)), run_online
        )
        off = cache.offline_cost(
            (content_key, _offline_fingerprint(config)), run_offline
        )
    else:
        online_cost = run_online()
        off = run_offline()
    if off <= 0:
        return 0.0 if online_cost == 0 else float(online_cost)
    return online_cost / off


def encode_instance(
    instance: Instance, num_blocks: int
) -> tuple[np.ndarray, dict[int, int]]:
    """Encode a rate-limited batched instance as a batch-size matrix.

    Colors are renumbered densely in ascending order; entry ``[c, i]`` is
    the batch size of color ``c`` at its ``i``-th multiple.
    """
    colors = sorted(instance.spec.delay_bounds)
    bounds = {
        index: instance.spec.delay_bounds[color]
        for index, color in enumerate(colors)
    }
    index_of = {color: index for index, color in enumerate(colors)}
    matrix = np.zeros((len(colors), num_blocks), dtype=np.int64)
    for job in instance.sequence:
        index = index_of[job.color]
        block_index = job.arrival // job.delay_bound
        if block_index < num_blocks:
            matrix[index, block_index] += 1
    return matrix, bounds


@dataclass(frozen=True)
class _RestartPlan:
    """One restart's pre-drawn randomness: start matrix + mutation schedule."""

    matrix: np.ndarray
    #: Per step, ``mutations_per_step`` point edits ``(color, block, value)``.
    mutations: tuple[tuple[tuple[int, int, int], ...], ...]


def _plan_restarts(
    config: SearchConfig,
    bounds: dict[int, int],
    max_blocks: int,
    rng: np.random.Generator,
) -> list[_RestartPlan]:
    """Pre-draw every restart's randomness in serial-climb order.

    The hill climber's draws never depend on accept/reject decisions, so
    consuming the generator up front leaves each restart a deterministic
    pure function — parallel and serial execution agree bit for bit.
    """
    steps = config.iterations // config.restarts
    plans: list[_RestartPlan] = []
    for restart in range(config.restarts):
        if restart == 0 and config.warm_start is not None:
            matrix, _ = encode_instance(config.warm_start, max_blocks)
        else:
            matrix = rng.integers(
                0, max(config.bounds) + 1, size=(config.num_colors, max_blocks)
            )
        mutations = []
        for _ in range(steps):
            step = []
            for _ in range(config.mutations_per_step):
                color = int(rng.integers(config.num_colors))
                block_index = int(rng.integers(max_blocks))
                value = int(rng.integers(0, bounds[color] + 1))
                step.append((color, block_index, value))
            mutations.append(tuple(step))
        plans.append(_RestartPlan(matrix, tuple(mutations)))
    return plans


def _climb_restart(
    task: tuple[_RestartPlan, SearchConfig, dict[int, int], Callable, int, bool],
    cache: ScoreCache | None = None,
) -> tuple[tuple[np.ndarray, float, list[float], int, int, int, float], list]:
    """Run one restart's hill climb; module-level so it pickles to workers.

    The :class:`ScoreCache` lives for the whole restart, so every step
    that reproduces an already-scored matrix (point mutations frequently
    rewrite cells to their current values) skips its simulations.
    ``cache`` overrides the per-restart cache for the shared-cache mode;
    the returned hit/miss telemetry is this restart's delta either way.

    When ``traced`` is set, the climb narrates itself into a local
    ``MemorySink`` — a ``restart`` span plus one ``improvement`` event
    per accepted step — and returns the records alongside the result so
    the orchestrator can replay them into its tracer tagged with the
    restart id (see :meth:`~repro.runtime.parallel.ParallelRunner.map_traced`).
    """
    plan, config, bounds, scheme_factory, restart_index, traced = task
    if cache is None:
        cache = ScoreCache()
    hits0, misses0 = cache.hits, cache.misses
    miss_seconds0 = cache.miss_seconds
    tracer: Tracer | None = None
    sink: MemorySink | None = None
    if traced:
        sink = MemorySink(capacity=None)
        tracer = Tracer(sink)
        tracer.begin("restart", restart=restart_index, seed=config.seed)

    def scored(candidate: np.ndarray) -> float:
        return _score(
            _decode(candidate, config, bounds),
            scheme_factory,
            config,
            cache=cache,
            content_key=_matrix_key(candidate, bounds, config.horizon),
        )

    matrix = plan.matrix
    current_ratio = scored(matrix)
    evaluations = 1
    trajectory: list[float] = []
    for step_index, step in enumerate(plan.mutations):
        candidate = matrix.copy()
        for color, block_index, value in step:
            candidate[color, block_index] = value
        ratio = scored(candidate)
        evaluations += 1
        if ratio >= current_ratio:
            if tracer is not None and ratio > current_ratio:
                tracer.event(
                    "improvement",
                    restart=restart_index,
                    step=step_index,
                    ratio=round(ratio, 6),
                )
            matrix, current_ratio = candidate, ratio
        trajectory.append(current_ratio)
    hits = cache.hits - hits0
    misses = cache.misses - misses0
    miss_seconds = cache.miss_seconds - miss_seconds0
    if tracer is not None:
        tracer.end(
            "restart",
            restart=restart_index,
            best_ratio=round(current_ratio, 6),
            evaluations=evaluations,
            cache_hits=hits,
            cache_misses=misses,
        )
    records = sink.records if sink is not None else []
    return (
        (matrix, current_ratio, trajectory, evaluations, hits, misses, miss_seconds),
        records,
    )


def search_adversary(
    scheme_factory: Callable[[], ReconfigurationScheme],
    config: SearchConfig | None = None,
    *,
    runner: ParallelRunner | None = None,
    tracer=None,
    registry=None,
    recorder=None,
    series=None,
) -> SearchResult:
    """Hill-climb batch-size matrices to maximize the measured ratio.

    Pass a ``runner`` to climb the restarts in parallel; the result is
    identical to the serial search (see :func:`_plan_restarts`).

    Pass a ``tracer`` to record a ``search`` span with per-restart
    ``restart`` spans and ``improvement`` events — restart records are
    collected worker-side and replayed in restart order tagged
    ``restart-{i}/seed-{s}``, so serial and parallel searches emit the
    same trace.  Pass a metrics ``registry`` to accumulate
    ``adversary.*`` counters (evaluations, score-cache hits/misses).
    Pass a ``recorder`` (:class:`~repro.obs.registry.RegistrySink`) to
    append the finished search to the persistent run registry.
    Pass ``series`` (a :class:`~repro.obs.timeseries.SeriesRecorder`)
    to sample ``adversary.*`` metrics once per restart, in restart
    order — the series are identical for serial and parallel runners
    because climbs are folded in plan order, not completion order.
    """
    config = config or SearchConfig()
    rng = np.random.default_rng(config.seed)
    if config.warm_start is not None:
        warm_colors = sorted(config.warm_start.spec.delay_bounds)
        if len(warm_colors) != config.num_colors:
            raise ValueError(
                "warm_start must declare exactly num_colors colors"
            )
    bounds = {
        c: int(rng.choice(np.asarray(sorted(config.bounds))))
        for c in range(config.num_colors)
    }
    if config.warm_start is not None:
        _, bounds = encode_instance(config.warm_start, 1)
    max_blocks = config.horizon // min(bounds.values()) + 1

    active_tracer = (
        tracer
        if tracer is not None and getattr(tracer, "enabled", True)
        else None
    )
    scheme_name = scheme_factory().name
    if active_tracer is not None:
        active_tracer.begin(
            "search",
            algorithm=scheme_name,
            restarts=config.restarts,
            iterations=config.iterations,
            seed=config.seed,
        )

    plans = _plan_restarts(config, bounds, max_blocks, rng)
    traced = active_tracer is not None
    tasks = [
        (plan, config, bounds, scheme_factory, index, traced)
        for index, plan in enumerate(plans)
    ]
    tags = [
        f"restart-{index}/seed-{config.seed}" for index in range(len(plans))
    ]
    climb_started = time.perf_counter()
    if config.shared_cache:
        # Merge-as-you-go: one cache, restarts in order, each seeing the
        # merged contents of all earlier ones.  Hits return exactly what
        # recomputation would, so this matches per-restart results bit
        # for bit; a passed runner is deliberately not fanned out.
        shared = ScoreCache()
        climbs = []
        for index, task in enumerate(tasks):
            result, records = _climb_restart(task, cache=shared)
            if active_tracer is not None and records:
                active_tracer.replay(records, worker=tags[index])
            climbs.append(result)
    else:
        effective_runner = (
            runner if runner is not None else ParallelRunner(force_serial=True)
        )
        climbs = effective_runner.map_traced(
            _climb_restart, tasks, tracer=active_tracer, tags=tags
        )
    wall_clock = time.perf_counter() - climb_started

    best_matrix: np.ndarray | None = None
    best_ratio = -1.0
    trajectory: list[float] = []
    evaluations = 0
    cache_hits = 0
    cache_misses = 0
    miss_seconds = 0.0
    for restart_index, (
        matrix,
        current_ratio,
        restart_trajectory,
        restart_evals,
        hits,
        misses,
        restart_miss_seconds,
    ) in enumerate(climbs):
        trajectory.extend(restart_trajectory)
        evaluations += restart_evals
        cache_hits += hits
        cache_misses += misses
        miss_seconds += restart_miss_seconds
        if current_ratio > best_ratio:
            best_ratio, best_matrix = current_ratio, matrix
        if series is not None:
            # Per-restart history on the series recorder's own registry:
            # cumulative counters plus the best-so-far gauge, sampled on
            # the restart-index clock (deterministic in plan order).
            sr = series.registry
            sr.counter("adversary.evaluations").inc(restart_evals)
            sr.counter("adversary.score_cache_hits").inc(hits)
            sr.counter("adversary.score_cache_misses").inc(misses)
            sr.gauge("adversary.best_ratio").set(best_ratio)
            sr.gauge("adversary.restart_ratio").set(current_ratio)
            series.sample(restart_index)

    if registry is not None:
        registry.counter("adversary.evaluations").inc(evaluations)
        registry.counter("adversary.score_cache_hits").inc(cache_hits)
        registry.counter("adversary.score_cache_misses").inc(cache_misses)
        registry.counter("adversary.restarts").inc(len(plans))
        registry.gauge("adversary.best_ratio").set(best_ratio)
    if active_tracer is not None:
        active_tracer.end(
            "search",
            algorithm=scheme_name,
            best_ratio=round(best_ratio, 6),
            evaluations=evaluations,
            cache_hits=cache_hits,
            cache_misses=cache_misses,
        )

    assert best_matrix is not None
    result = SearchResult(
        best_instance=_decode(best_matrix, config, bounds),
        best_ratio=best_ratio,
        trajectory=trajectory,
        evaluations=evaluations,
        score_cache_hits=cache_hits,
        score_cache_misses=cache_misses,
        shared_cache=config.shared_cache,
        wall_clock_seconds=wall_clock,
        score_cache_miss_seconds=miss_seconds,
    )
    if recorder is not None:
        recorder.record_search(result, scheme=scheme_name, config=config)
    return result
