"""Plain-text tables and series for the experiment harness.

The paper has no measured tables; the harness prints each experiment's
predicted-vs-measured rows in a fixed-width table plus an ASCII series
("figure") so results render identically in terminals, logs and
``EXPERIMENTS.md``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, Sequence


def _format_cell(value: object) -> str:
    if isinstance(value, float):
        if math.isinf(value):
            return "inf"
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return f"{value:.3g}"
        return f"{value:.3f}"
    return str(value)


@dataclass
class Table:
    """A fixed-width table with a title and aligned columns."""

    title: str
    headers: Sequence[str]
    rows: list[Sequence[object]] = field(default_factory=list)

    def add_row(self, *cells: object) -> None:
        if len(cells) != len(self.headers):
            raise ValueError(
                f"row has {len(cells)} cells, table has {len(self.headers)} columns"
            )
        self.rows.append(cells)

    def render(self) -> str:
        return format_table(self.title, self.headers, self.rows)

    def to_markdown(self) -> str:
        header = "| " + " | ".join(self.headers) + " |"
        rule = "|" + "|".join("---" for _ in self.headers) + "|"
        body = [
            "| " + " | ".join(_format_cell(c) for c in row) + " |"
            for row in self.rows
        ]
        return "\n".join([f"**{self.title}**", "", header, rule, *body])


def format_table(
    title: str, headers: Sequence[str], rows: Iterable[Sequence[object]]
) -> str:
    """Render a fixed-width text table."""
    str_rows = [[_format_cell(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    lines = [title, "=" * max(len(title), 1)]
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


@dataclass
class Series:
    """A labeled (x, y) series rendered as an ASCII column chart."""

    title: str
    x_label: str
    y_label: str
    points: list[tuple[object, float]] = field(default_factory=list)

    def add(self, x: object, y: float) -> None:
        self.points.append((x, y))

    def render(self, width: int = 40) -> str:
        return format_series(
            self.title, self.x_label, self.y_label, self.points, width=width
        )


def format_series(
    title: str,
    x_label: str,
    y_label: str,
    points: Sequence[tuple[object, float]],
    *,
    width: int = 40,
) -> str:
    """Render a series as horizontal ASCII bars (one row per x)."""
    lines = [f"{title}   [{y_label} vs {x_label}]", "=" * max(len(title), 1)]
    if not points:
        return "\n".join(lines + ["(empty)"])
    finite = [y for _, y in points if math.isfinite(y)]
    top = max(finite) if finite else 1.0
    top = top if top > 0 else 1.0
    x_width = max(len(_format_cell(x)) for x, _ in points)
    for x, y in points:
        if math.isfinite(y):
            bar = "#" * max(0, round(width * y / top))
            lines.append(
                f"{_format_cell(x).rjust(x_width)} | {bar} {_format_cell(float(y))}"
            )
        else:
            lines.append(f"{_format_cell(x).rjust(x_width)} | (inf)")
    return "\n".join(lines)


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean of positive values (ratios aggregate multiplicatively)."""
    finite = [v for v in values if math.isfinite(v) and v > 0]
    if not finite:
        return math.nan
    return math.exp(sum(math.log(v) for v in finite) / len(finite))
