"""repro — reconfigurable resource scheduling with variable delay bounds.

A faithful, executable reproduction of the Plaxton–Sun–Tiwari–Vin online
scheduling framework: the ``[Δ | 1 | D_ℓ | batch]`` problem family, the
ΔLRU / EDF / ΔLRU-EDF reconfiguration schemes, the Distribute and VarBatch
reductions, offline optima and lower bounds, adversarial and synthetic
workloads, and the analysis machinery (epochs, super-epochs, credit
audits) the paper's proofs are built from.

Quickstart::

    from repro import make_instance, BatchMode, DeltaLRUEDF, simulate
    from repro.workloads import random_rate_limited

    inst = random_rate_limited(num_colors=8, delta=4, horizon=256, seed=0)
    result = simulate(inst, DeltaLRUEDF(), num_resources=16)
    print(result.cost.summary())
"""

from repro.core import (
    BLACK,
    BatchMode,
    CostBreakdown,
    CostModel,
    Instance,
    Job,
    ProblemSpec,
    RequestSequence,
    Schedule,
    Trace,
    verify_schedule,
)
from repro.core.instance import make_instance
from repro.simulation import (
    BatchedEngine,
    GeneralEngine,
    RunResult,
    simulate,
    simulate_general,
)
from repro.algorithms import (
    EDF,
    DeltaLRU,
    DeltaLRUEDF,
    GreedyPendingPolicy,
    NeverReconfigurePolicy,
    SeqEDF,
    StaticPartitionPolicy,
    run_ds_seq_edf,
    run_par_edf,
    run_seq_edf,
)
from repro.reductions import (
    PipelineResult,
    run_arbitrary,
    run_distribute,
    run_pipeline,
    run_varbatch,
)
from repro.runtime import ParallelRunner, derive_seed, spawn_seeds

__version__ = "1.0.0"

__all__ = [
    "BLACK",
    "BatchMode",
    "CostBreakdown",
    "CostModel",
    "Instance",
    "Job",
    "ProblemSpec",
    "RequestSequence",
    "Schedule",
    "Trace",
    "verify_schedule",
    "make_instance",
    "BatchedEngine",
    "GeneralEngine",
    "RunResult",
    "simulate",
    "simulate_general",
    "EDF",
    "DeltaLRU",
    "DeltaLRUEDF",
    "GreedyPendingPolicy",
    "NeverReconfigurePolicy",
    "SeqEDF",
    "StaticPartitionPolicy",
    "run_ds_seq_edf",
    "run_par_edf",
    "run_seq_edf",
    "PipelineResult",
    "run_arbitrary",
    "run_distribute",
    "run_pipeline",
    "run_varbatch",
    "ParallelRunner",
    "derive_seed",
    "spawn_seeds",
    "__version__",
]
