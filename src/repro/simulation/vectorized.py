"""Vectorized engine backend: columnar state, event-driven round batches.

Third engine core next to the dense (PR-1 reference) and sparse
(boundary-calendar) cores in :mod:`repro.simulation.engine`.  The design
splits the work by batch width, because numpy only pays for itself on
wide operands (per-call dispatch overhead is ~1µs, which dwarfs the work
on a handful of colors):

* **Construction** ("compile") ingests the whole request sequence as
  columns: job arrival/color arrays, per-boundary arrival counts via a
  single :func:`numpy.unique` pass, and the merged boundary calendar.
  This happens once in ``__init__`` — outside the timed run loop, the
  same place the other cores build their ``ColorState`` maps.
* **The run loop** visits only boundary rounds (integral multiples of
  some color's delay bound — the only rounds where drop/arrival/state
  change; see the sparse-core exactness argument).  Between boundaries,
  execution drains in closed form ``min(pending, copies · speed · dt)``,
  with the reconfiguration kernel re-run only at drain events that can
  change admissions.  Per-boundary updates touch a handful of colors and
  run as unboxed scalar operations over the working columns.
* **The stable tail** is the genuinely columnar phase: once no uncached
  color can ever become eligible again (no remaining arrivals for any
  uncached color — always reached on dense EXP-S cells, where capacity
  covers every color), the cache is provably frozen for the rest of the
  horizon and every remaining boundary of every color is settled in one
  batch of numpy column operations per color (vectorized drop/execute
  accounting over its whole remaining arrival column).

Exactness
---------
The fast path replicates the dense core event for event:

* Arrivals only land on the arriving color's own boundaries (the engine
  ignores off-boundary jobs), so per-boundary arrival counts are a
  complete description of the workload.
* Within a span between consecutive boundary rounds, eligibility,
  deadlines, and timestamps are frozen; only ``pending`` decreases.  The
  three supported kernels are no-ops whenever there is no eligible
  uncached color, and can only act mid-span when an eligible uncached
  color is nonidle — which is exactly when the loop re-runs the kernel
  (at pending-drain events).
* The kernels replicate the scheme ``reconfigure`` passes verbatim
  (insertion and eviction *order* included, since
  :meth:`CachePool.insert` prefers slots physically holding the color
  and order therefore decides physical reconfiguration costs).

The fast path is only taken for ``record="costs"`` runs with no
instrumentation attached (no tracer/metrics/profiler/registry) and one
of the four paper schemes; anything else — full-record runs, attached
monitors, token-based randomized schemes — falls back to the faithful
sparse core, which honors the ``fixed_point_token()``/``reset(seed)``
contract for every scheme and emits the identical obs stream.  A
``reconfig_observer`` *is* supported on the fast path (reduction
pipelines stream outer costs through it in ``record="costs"`` mode).

numpy is an optional extra (``pip install repro[vec]``); constructing
the engine without numpy installed raises a clear ``RuntimeError`` and
no other part of the package is affected.
"""

from __future__ import annotations

from bisect import insort
from operator import attrgetter

from repro.algorithms.dlru import DeltaLRU
from repro.algorithms.dlru_edf import DeltaLRUEDF
from repro.algorithms.edf import EDF
from repro.algorithms.seq_edf import SeqEDF
from repro.simulation.engine import BatchedEngine

__all__ = ["VectorizedEngine", "numpy_available"]

#: Scheme types with a hand-vectorized kernel.  Matched by *exact* type:
#: a subclass may override ``reconfigure`` and must fall back to the
#: faithful core.
_KERNEL_SCHEMES = (DeltaLRU, EDF, DeltaLRUEDF, SeqEDF)


def numpy_available() -> bool:
    """Whether the optional ``repro[vec]`` dependency is importable."""
    try:
        import numpy  # noqa: F401
    except ImportError:
        return False
    return True


def _require_numpy():
    try:
        import numpy as np
    except ImportError as exc:  # pragma: no cover - exercised via stub
        raise RuntimeError(
            "VectorizedEngine requires numpy, which is an optional "
            "dependency; install it with `pip install repro[vec]` or "
            "select engine='sparse'/'dense' instead"
        ) from exc
    return np


class VectorizedEngine(BatchedEngine):
    """Columnar costs-mode engine with a faithful sparse fallback.

    Accepts the same arguments as :class:`BatchedEngine` except
    ``sparse`` (the fallback core is always the sparse one; the dense
    core is reachable as its own backend).  Results are bit-identical to
    both existing cores: same ``CostBreakdown`` counters, same schedule
    and trace on the fallback path, same obs stream.
    """

    def __init__(
        self,
        instance,
        scheme,
        num_resources: int,
        *,
        copies: int = 2,
        speed: int = 1,
        collect_metrics: bool = False,
        record: str = "full",
        start_round: int = 0,
        columnar: bool = True,
        tracer=None,
        registry=None,
        profiler=None,
        reconfig_observer=None,
    ) -> None:
        self._np = _require_numpy()
        super().__init__(
            instance,
            scheme,
            num_resources,
            copies=copies,
            speed=speed,
            collect_metrics=collect_metrics,
            record=record,
            sparse=True,
            start_round=start_round,
            tracer=tracer,
            registry=registry,
            profiler=profiler,
            reconfig_observer=reconfig_observer,
        )
        self.engine_name = "vectorized"
        # The columnar path compiles the *whole* request sequence up
        # front and assumes it owns the run from round 0 with empty
        # initial state.  Streaming sessions pass ``columnar=False`` (the
        # compile is O(total jobs), which contradicts the O(pending)
        # streaming bound) and segment engines start mid-run — both run
        # the faithful sparse core under the vectorized backend name,
        # which is cost-exact by the existing parity property tests.
        self._vector_path = (
            columnar
            and start_round == 0
            and record == "costs"
            and self.tracer is None
            and self.metrics is None
            and self.profiler is None
            and self.obs is None
            and type(scheme) in _KERNEL_SCHEMES
        )
        if self._vector_path:
            self._compile()

    def import_state(self, state: dict) -> None:
        """Restore a checkpoint; forces the faithful sparse core.

        The columnar compile bakes in empty initial state (zero
        counters, empty cache columns), so a restored engine must run
        the sparse fallback — it honors arbitrary initial state and is
        bit-identical on costs.
        """
        super().import_state(state)
        self._vector_path = False

    # ------------------------------------------------------------ compile

    def _compile(self) -> None:
        """Ingest the instance as columns; build calendars and state."""
        np = self._np
        instance = self.instance
        horizon = instance.horizon
        colors = sorted(instance.spec.delay_bounds)
        C = len(colors)
        self._colors = colors
        self._C = C
        colors_arr = np.asarray(colors, dtype=np.int64)
        bounds_arr = np.asarray(
            [instance.spec.delay_bounds[c] for c in colors], dtype=np.int64
        )
        self._bounds_arr = bounds_arr

        #: Authoritative per-color state store.  The run loop works on
        #: unboxed column views (plain lists) and writes the final state
        #: back; the stable tail operates on the numpy columns directly.
        self._state = np.zeros(
            C,
            dtype=[
                ("delay_bound", np.int64),
                ("cnt", np.int64),
                ("pending", np.int64),
                ("last_wrap", np.int64),
                ("prev_wrap", np.int64),
                ("eligible", np.bool_),
                ("cached", np.bool_),
            ],
        )
        self._state["delay_bound"] = bounds_arr
        self._state["last_wrap"] = -1
        self._state["prev_wrap"] = -1

        # Whole-sequence ingestion: one pass extracts the job columns,
        # one vectorized filter keeps on-boundary arrivals, one
        # np.unique pass counts every (round, color) batch.
        jobs = instance.sequence.jobs
        n = len(jobs)
        arrivals = np.fromiter(map(attrgetter("arrival"), jobs), np.int64, n)
        job_colors = np.fromiter(map(attrgetter("color"), jobs), np.int64, n)
        idx = np.searchsorted(colors_arr, job_colors)
        keep = (arrivals < horizon) & (arrivals % bounds_arr[idx] == 0)
        key = arrivals[keep] * C + idx[keep]
        unique_keys, batch_sizes = np.unique(key, return_counts=True)
        batch_rounds = unique_keys // C
        batch_colors = unique_keys % C

        # Round-indexed view for the event loop: round -> [(i, count)].
        arrival_events: dict[int, list[tuple[int, int]]] = {}
        for k, i, a in zip(
            batch_rounds.tolist(), batch_colors.tolist(), batch_sizes.tolist()
        ):
            bucket = arrival_events.get(k)
            if bucket is None:
                arrival_events[k] = [(i, a)]
            else:
                bucket.append((i, a))
        self._arrival_events = arrival_events

        # Color-indexed columns for the stable tail: per color, the
        # ascending rounds and sizes of its remaining arrival batches.
        order = np.lexsort((batch_rounds, batch_colors))
        sorted_colors = batch_colors[order]
        splits = np.searchsorted(sorted_colors, np.arange(1, C))
        self._batch_rounds_by_color = np.split(batch_rounds[order], splits)
        self._batch_sizes_by_color = np.split(batch_sizes[order], splits)

        # Merged boundary calendar: one arange per distinct delay bound.
        self._boundary_rounds = np.unique(
            np.concatenate(
                [np.arange(0, horizon, d) for d in set(self._state["delay_bound"].tolist())]
            )
        ).tolist()

    # ---------------------------------------------------------------- run

    def _run_sparse(self) -> None:
        if self._vector_path:
            self._run_vector()
        else:
            super()._run_sparse()

    def _run_vector(self) -> None:
        np = self._np
        instance = self.instance
        horizon = instance.horizon
        delta = self.delta
        copies = self.copies
        speed = self.speed
        colors = self._colors
        C = self._C
        cache = self.cache
        capacity = cache.capacity
        scheme = self.scheme
        observer = self._reconfig_observer

        # Unboxed working columns (list indexing is ~4x cheaper than
        # numpy scalar indexing; the per-boundary batches are narrow).
        D = self._state["delay_bound"].tolist()
        cnt = self._state["cnt"].tolist()
        pend = self._state["pending"].tolist()
        last_wrap = self._state["last_wrap"].tolist()
        prev_wrap = self._state["prev_wrap"].tolist()
        eligible = self._state["eligible"].tolist()
        cached = self._state["cached"].tolist()

        eligible_sorted: list[int] = []
        cached_set: set[int] = set()
        num_elig_uncached = 0
        pending_set: set[int] = set()
        # Colors that are uncached and still have arrival batches ahead:
        # while any exist, an uncached color may still wrap eligible and
        # wake the kernel, so the columnar tail cannot start.
        batches_left = [len(r) for r in self._batch_rounds_by_color]
        num_uncached_live = sum(1 for b in batches_left if b)

        # Cost accumulators, folded into self.cost at the end.  One
        # record_* call per color keeps the Counter contents identical
        # to the per-event dense-core calls (sums and zero entries both).
        exec_acc = [0] * C
        drop_elig_acc = [0] * C
        drop_inel_acc = [0] * C
        reconfig_acc = [0] * C
        reconfig_called = [False] * C

        kernel = {
            DeltaLRU: self._kernel_dlru,
            EDF: self._kernel_edf,
            SeqEDF: self._kernel_edf,
            DeltaLRUEDF: self._kernel_dlru_edf,
        }[type(scheme)]

        def insert(i: int) -> None:
            nonlocal num_elig_uncached, num_uncached_live
            _slot, reconfigured, _old = cache.insert(colors[i])
            if observer is not None and reconfigured:
                observer(colors[i], reconfigured)
            cached[i] = True
            cached_set.add(i)
            reconfig_called[i] = True
            reconfig_acc[i] += len(reconfigured)
            if eligible[i]:
                num_elig_uncached -= 1
            if batches_left[i]:
                num_uncached_live -= 1

        def evict(i: int) -> None:
            nonlocal num_elig_uncached, num_uncached_live
            cache.evict(colors[i])
            cached[i] = False
            cached_set.discard(i)
            if eligible[i]:
                num_elig_uncached += 1
            if batches_left[i]:
                num_uncached_live += 1

        ctx = _KernelContext(
            D=D,
            pend=pend,
            last_wrap=last_wrap,
            prev_wrap=prev_wrap,
            cached=cached,
            cached_set=cached_set,
            eligible_sorted=eligible_sorted,
            capacity=capacity,
            insert=insert,
            evict=evict,
            is_full=cache.is_full,
        )

        boundary_rounds = self._boundary_rounds
        arrival_events = self._arrival_events
        nB = len(boundary_rounds)
        rounds_processed = 0
        tail_from: int | None = None

        for bi in range(nB):
            k = boundary_rounds[bi]
            rounds_processed += 1
            if k:
                # Drop phase: only colors with pending work can drop ...
                if pending_set:
                    for i in [j for j in pending_set if k % D[j] == 0]:
                        p = pend[i]
                        if eligible[i]:
                            drop_elig_acc[i] += p
                        else:
                            drop_inel_acc[i] += p
                        pend[i] = 0
                        pending_set.discard(i)
                # ... and only eligible uncached colors lose eligibility.
                if num_elig_uncached:
                    for i in [
                        j
                        for j in eligible_sorted
                        if not cached[j] and k % D[j] == 0
                    ]:
                        eligible[i] = False
                        cnt[i] = 0
                        num_elig_uncached -= 1
                        eligible_sorted.remove(i)
            arrs = arrival_events.get(k)
            if arrs:
                for i, a in arrs:
                    c = cnt[i] + a
                    if c >= delta:
                        c %= delta
                        prev_wrap[i] = last_wrap[i]
                        last_wrap[i] = k
                        if not eligible[i]:
                            eligible[i] = True
                            insort(eligible_sorted, i)
                            num_elig_uncached += 1
                    cnt[i] = c
                    if not pend[i]:
                        pending_set.add(i)
                    pend[i] += a
                    batches_left[i] -= 1
                    if not batches_left[i] and not cached[i]:
                        num_uncached_live -= 1

            if not num_elig_uncached and not num_uncached_live:
                # Cache provably frozen for the rest of the horizon:
                # settle every remaining boundary columnar.
                tail_from = k
                rounds_processed += nB - bi - 1
                break

            if not pending_set and not num_elig_uncached:
                continue

            next_k = boundary_rounds[bi + 1] if bi + 1 < nB else horizon
            minis = (next_k - k) * speed
            t = 0
            while t < minis:
                if num_elig_uncached:
                    kernel(ctx, k)
                drain = [i for i in pending_set if cached[i]]
                if not drain:
                    break
                if num_elig_uncached and any(
                    not cached[i] and pend[i] for i in eligible_sorted
                ):
                    # An eligible uncached color is nonidle: a drain
                    # event can change admissions, so step to it.
                    dt = min(minis - t, min(-(-pend[i] // copies) for i in drain))
                else:
                    dt = minis - t
                cap = copies * dt
                for i in drain:
                    p = pend[i]
                    if p <= cap:
                        exec_acc[i] += p
                        pend[i] = 0
                        pending_set.discard(i)
                    else:
                        exec_acc[i] += cap
                        pend[i] = p - cap
                t += dt

        if tail_from is not None:
            cps = copies * speed
            for i in range(C):
                left = batches_left[i]
                rounds_i = self._batch_rounds_by_color[i]
                if cached[i]:
                    d = D[i]
                    p0 = pend[i]
                    if p0:
                        nb = (tail_from // d + 1) * d
                        window = min(nb, horizon) - tail_from
                        done = min(p0, cps * window)
                        exec_acc[i] += done
                        pend[i] = p0 - done
                        if nb < horizon and pend[i]:
                            drop_elig_acc[i] += pend[i]
                            pend[i] = 0
                    if left:
                        r = rounds_i[-left:]
                        a = self._batch_sizes_by_color[i][-left:]
                        window = np.minimum(r + d, horizon) - r
                        done = np.minimum(a, cps * window)
                        exec_acc[i] += int(done.sum())
                        leftover = a - done
                        dropped = leftover[r + d < horizon]
                        drop_elig_acc[i] += int(dropped.sum())
                        # The final batch's remainder (if any) survives
                        # past the horizon undropped.
                        pend[i] = int(leftover.sum() - dropped.sum())
                elif pend[i]:
                    # Uncached colors have no arrivals left (tail
                    # precondition); their pending drops ineligible at
                    # their next boundary, if one exists.
                    if (tail_from // D[i] + 1) * D[i] < horizon:
                        drop_inel_acc[i] += pend[i]
                        pend[i] = 0

        cost = self.cost
        for i in range(C):
            if reconfig_called[i]:
                cost.record_reconfig(colors[i], reconfig_acc[i])
            if drop_elig_acc[i]:
                cost.record_drop(colors[i], drop_elig_acc[i], eligible=True)
            if drop_inel_acc[i]:
                cost.record_drop(colors[i], drop_inel_acc[i], eligible=False)
            if exec_acc[i]:
                cost.record_execution(colors[i], exec_acc[i])

        self.rounds_executed = rounds_processed
        self.round_index = horizon

        state = self._state
        state["cnt"] = cnt
        state["pending"] = pend
        state["last_wrap"] = last_wrap
        state["prev_wrap"] = prev_wrap
        state["eligible"] = eligible
        state["cached"] = cached

    # ------------------------------------------------------------ kernels
    #
    # Each kernel replicates the corresponding scheme's ``reconfigure``
    # pass over the working columns, including insert/evict order.  All
    # three are no-ops when no eligible color is uncached, which the run
    # loop uses as the skip predicate.

    @staticmethod
    def _timestamps(ctx: "_KernelContext", now: int) -> list[int]:
        D, lw, pw = ctx.D, ctx.last_wrap, ctx.prev_wrap
        out = []
        for i in ctx.eligible_sorted:
            km = (now // D[i]) * D[i]
            l = lw[i]
            if 0 <= l < km:
                out.append(l)
            elif 0 <= pw[i] < km:
                out.append(pw[i])
            else:
                out.append(0)
        return out

    @classmethod
    def _kernel_dlru(cls, ctx: "_KernelContext", now: int) -> None:
        ts = cls._timestamps(ctx, now)
        lru_order = [
            i
            for _, i in sorted(
                (-t, i) for t, i in zip(ts, ctx.eligible_sorted)
            )
        ]
        desired = set(lru_order[: ctx.capacity])
        for i in sorted(ctx.cached_set - desired):
            ctx.evict(i)
        cached = ctx.cached
        for i in lru_order:
            if i in desired and not cached[i]:
                ctx.insert(i)

    @staticmethod
    def _ranking(ctx: "_KernelContext", now: int) -> list[int]:
        D, pend = ctx.D, ctx.pend
        return [
            key[3]
            for key in sorted(
                (pend[i] == 0, (now // D[i] + 1) * D[i], D[i], i)
                for i in ctx.eligible_sorted
            )
        ]

    @classmethod
    def _kernel_edf(cls, ctx: "_KernelContext", now: int) -> None:
        ranking = cls._ranking(ctx, now)
        cached, pend = ctx.cached, ctx.pend
        for i in ranking[: ctx.capacity]:
            if not pend[i] or cached[i]:
                continue
            if ctx.is_full():
                for victim in reversed(ranking):
                    if cached[victim]:
                        ctx.evict(victim)
                        break
            ctx.insert(i)

    def _kernel_dlru_edf(self, ctx: "_KernelContext", now: int) -> None:
        capacity = ctx.capacity
        lru_capacity = int(capacity * self.scheme.lru_fraction)
        edf_capacity = capacity - lru_capacity
        ts = self._timestamps(ctx, now)
        lru_order = [
            i
            for _, i in sorted(
                (-t, i) for t, i in zip(ts, ctx.eligible_sorted)
            )
        ]
        lru_set = set(lru_order[:lru_capacity])
        non_lru = [i for i in self._ranking(ctx, now) if i not in lru_set]
        cached, pend = ctx.cached, ctx.pend

        def evict_lowest_ranked() -> None:
            for victim in reversed(non_lru):
                if cached[victim]:
                    ctx.evict(victim)
                    return
            raise RuntimeError(
                "cache full of LRU colors; capacity split leaves no EDF room"
            )

        for i in lru_order[:lru_capacity]:
            if cached[i]:
                continue
            if ctx.is_full():
                evict_lowest_ranked()
            ctx.insert(i)
        for i in non_lru[:edf_capacity]:
            if pend[i] and not cached[i]:
                if ctx.is_full():
                    evict_lowest_ranked()
                ctx.insert(i)


class _KernelContext:
    """Unboxed engine state shared between the run loop and kernels."""

    __slots__ = (
        "D",
        "pend",
        "last_wrap",
        "prev_wrap",
        "cached",
        "cached_set",
        "eligible_sorted",
        "capacity",
        "insert",
        "evict",
        "is_full",
    )

    def __init__(self, **kwargs) -> None:
        for name, value in kwargs.items():
            setattr(self, name, value)
