"""Discrete-event simulation of the four-phase round model (Section 2).

Two engines live here:

* :class:`~repro.simulation.engine.BatchedEngine` implements the common
  protocol of Section 3.1 (counters, eligibility, wrapping events, the
  replicated cache) and delegates only the reconfiguration phase to a
  pluggable :class:`~repro.simulation.engine.ReconfigurationScheme` —
  exactly how the paper factors ΔLRU, EDF and ΔLRU-EDF.
* :class:`~repro.simulation.general.GeneralEngine` simulates arbitrary
  (non-batched) instances for baselines and end-to-end pipelines, with
  per-job deadlines.

Both emit a :class:`~repro.core.events.Trace` and an explicit
:class:`~repro.core.schedule.Schedule` that is checked by the shared
feasibility verifier.
"""

from repro.simulation.resources import CachePool, Slot
from repro.simulation.state import ColorState
from repro.simulation.engine import (
    BatchedEngine,
    ReconfigurationScheme,
    RunResult,
    simulate,
)
from repro.simulation.general import GeneralEngine, GeneralPolicy, simulate_general
from repro.simulation.metrics import MetricsCollector, RoundMetrics

__all__ = [
    "CachePool",
    "Slot",
    "ColorState",
    "BatchedEngine",
    "ReconfigurationScheme",
    "RunResult",
    "simulate",
    "GeneralEngine",
    "GeneralPolicy",
    "simulate_general",
    "MetricsCollector",
    "RoundMetrics",
]
