"""Resource pool modeled as a replicated color cache (Section 3.1).

The paper views the ``n`` resources as a cache of color *locations*: the
first half of the capacity caches distinct colors and the second half
replicates them, so each cached color occupies ``copies`` physical
resources (``copies = 2`` for the Section 3 algorithms, ``copies = 1`` for
Seq-EDF).

Cost accounting is *physical*: inserting a color into a slot reconfigures
only the physical resources whose current color differs.  The pool prefers
a free slot that still physically holds the incoming color, which can only
make the online algorithms cheaper than the paper's amortized accounting
(where every insertion charges ``copies * Δ``); a separate
``logical_insertions`` counter tracks the paper's accounting exactly for
the lemma auditors.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.job import BLACK


@dataclass(slots=True)
class Slot:
    """One distinct-color slot backed by ``copies`` physical resources."""

    index: int
    copies: int
    #: Logical occupant: the color currently cached here, or ``BLACK`` if free.
    occupant: int = BLACK
    #: Physical color of the underlying resources (persists across evictions).
    physical: int = BLACK

    @property
    def free(self) -> bool:
        return self.occupant == BLACK

    def resources(self) -> range:
        """Physical resource indices backing this slot."""
        return range(self.index * self.copies, (self.index + 1) * self.copies)


class CachePool:
    """Fixed-capacity cache of distinct colors with replication.

    The pool tracks logical occupancy (which colors are cached), physical
    resource colors (for schedule emission), and insertion/eviction
    bookkeeping.  It is policy-free: eviction *choices* belong to the
    reconfiguration schemes.
    """

    def __init__(self, capacity: int, copies: int = 2) -> None:
        if capacity <= 0:
            raise ValueError("cache capacity must be positive")
        if copies <= 0:
            raise ValueError("replication factor must be positive")
        self.capacity = capacity
        self.copies = copies
        self._slots = [Slot(i, copies) for i in range(capacity)]
        self._slot_of: dict[int, Slot] = {}
        #: Paper-style accounting: every insertion counts, even when the
        #: physical resources already hold the color.
        self.logical_insertions = 0
        # occupied_slots() is called every mini-round of the engines'
        # execution phases; occupancy changes far less often, so the
        # scan is cached and invalidated on insert/evict.
        self._occupied_cache: list[Slot] | None = []

    # -- queries -----------------------------------------------------------

    @property
    def num_resources(self) -> int:
        return self.capacity * self.copies

    def __contains__(self, color: int) -> bool:
        return color in self._slot_of

    def cached_colors(self) -> frozenset[int]:
        return frozenset(self._slot_of)

    def slot_of(self, color: int) -> Slot:
        try:
            return self._slot_of[color]
        except KeyError:
            raise KeyError(f"color {color} is not cached") from None

    def free_slot_count(self) -> int:
        return self.capacity - len(self._slot_of)

    def is_full(self) -> bool:
        return len(self._slot_of) >= self.capacity

    def occupancy(self) -> int:
        return len(self._slot_of)

    # -- mutation ----------------------------------------------------------

    def insert(self, color: int) -> tuple[Slot, list[int], int]:
        """Cache ``color`` in a free slot.

        Returns ``(slot, reconfigured, old_physical)``: the slot used, the
        physical resources that were actually reconfigured (empty when a
        free slot still held the color physically), and the slot's previous
        physical color.  Raises if the color is already cached or no slot
        is free — callers must evict first.
        """
        if color == BLACK:
            raise ValueError("cannot cache BLACK")
        if color in self._slot_of:
            raise ValueError(f"color {color} is already cached")
        target: Slot | None = None
        for slot in self._slots:
            if not slot.free:
                continue
            if slot.physical == color:
                target = slot  # zero-cost physical reuse
                break
            if target is None:
                target = slot
        if target is None:
            raise ValueError("cache is full; evict before inserting")
        old_physical = target.physical
        reconfigured = list(target.resources()) if old_physical != color else []
        target.occupant = color
        target.physical = color
        self._slot_of[color] = target
        self.logical_insertions += 1
        self._occupied_cache = None
        return target, reconfigured, old_physical

    def evict(self, color: int) -> Slot:
        """Remove ``color`` from the cache; the slot's physical color persists."""
        slot = self.slot_of(color)
        slot.occupant = BLACK
        del self._slot_of[color]
        self._occupied_cache = None
        return slot

    # -- checkpoint/restore ------------------------------------------------

    def state_dict(self) -> dict:
        """JSON-ready snapshot: per-slot ``[occupant, physical]`` pairs.

        Physical colors persist across evictions and decide future
        reconfiguration costs (``insert`` prefers a free slot already
        holding the color), so both halves of every slot are part of the
        cost-relevant state.
        """
        return {
            "slots": [[slot.occupant, slot.physical] for slot in self._slots],
            "logical_insertions": self.logical_insertions,
        }

    def load_state(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot in slot order."""
        slots = state["slots"]
        if len(slots) != self.capacity:
            raise ValueError(
                f"checkpoint has {len(slots)} slots, pool has {self.capacity}"
            )
        self._slot_of = {}
        for slot, (occupant, physical) in zip(self._slots, slots):
            slot.occupant = occupant
            slot.physical = physical
            if occupant != BLACK:
                self._slot_of[occupant] = slot
        self.logical_insertions = state["logical_insertions"]
        self._occupied_cache = None

    # -- iteration ---------------------------------------------------------

    def occupied_slots(self) -> list[Slot]:
        """Slots currently caching a color, in slot order (cached)."""
        occupied = self._occupied_cache
        if occupied is None:
            occupied = [slot for slot in self._slots if not slot.free]
            self._occupied_cache = occupied
        return occupied
