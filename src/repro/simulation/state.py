"""Per-color runtime state for the Section 3.1 protocol.

Each color ℓ carries a counter ``cnt``, a deadline ``dd``, an eligibility
flag, a pending-job queue, and the history of its counter wrapping events
(from which the ΔLRU timestamp of Section 3.1.1 is derived on demand).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.core.job import Job
from repro.core.rounds import prev_multiple


@dataclass(slots=True)
class ColorState:
    """Runtime state of one color inside the batched engine.

    Attributes
    ----------
    color, delay_bound:
        Identity and ``D_ℓ``.
    cnt:
        The Section 3.1 counter; wraps modulo ``Δ`` on arrival.
    dd:
        Current deadline; set to ``k + D_ℓ`` at every integral multiple
        ``k`` of ``D_ℓ`` during the arrival phase.
    eligible:
        Eligibility flag; set on a counter wrapping event, cleared in the
        drop phase when the color is eligible but not cached.
    pending:
        FIFO of pending jobs.  In a batched instance every pending job of
        a color shares the current deadline, so FIFO order is also EDF
        order within the color.
    last_wrap / prev_wrap:
        Rounds of the two most recent counter wrapping events (wrapping
        rounds are integral multiples of ``D_ℓ``, so two suffice to answer
        any "latest wrap strictly before round k" query).
    last_timestamp:
        Cached value of the most recently emitted timestamp, used by the
        engine to detect timestamp *update events* (Section 3.4).
    """

    color: int
    delay_bound: int
    cnt: int = 0
    dd: int = 0
    eligible: bool = False
    pending: deque[Job] = field(default_factory=deque)
    last_wrap: int | None = None
    prev_wrap: int | None = None
    last_timestamp: int = 0

    @property
    def idle(self) -> bool:
        """A color is idle when it has no pending jobs (Section 3.1)."""
        return not self.pending

    def record_wrap(self, round_index: int) -> None:
        """Record a counter wrapping event at ``round_index``."""
        if self.last_wrap is not None and round_index < self.last_wrap:
            raise ValueError("wrapping events must be recorded in round order")
        if self.last_wrap != round_index:
            self.prev_wrap = self.last_wrap
            self.last_wrap = round_index

    def timestamp(self, now: int) -> int:
        """ΔLRU timestamp of this color as of round ``now`` (Section 3.1.1).

        Let ``k`` be the most recent integral multiple of ``D_ℓ`` at or
        before ``now``.  The timestamp is the latest round strictly before
        ``k`` carrying a counter wrapping event of this color, or 0 if no
        such round exists.
        """
        k = prev_multiple(now, self.delay_bound)
        if self.last_wrap is not None and self.last_wrap < k:
            return self.last_wrap
        if self.prev_wrap is not None and self.prev_wrap < k:
            return self.prev_wrap
        return 0

    def boundaries(self, horizon: int, start: int = 0) -> range:
        """Integral multiples of ``D_ℓ`` within ``[start, horizon)``.

        These are the only rounds the Section 3.1 protocol acts on this
        color — the sparse engine core's boundary calendar is exactly the
        union of these ranges over all colors.  ``start`` lets streaming
        segments build their calendar over a window instead of paying
        ``horizon / D_ℓ`` per segment from round 0.
        """
        d = self.delay_bound
        first = ((start + d - 1) // d) * d
        return range(first, horizon, d)

    def take_pending(self, count: int) -> list[Job]:
        """Remove and return up to ``count`` pending jobs (FIFO)."""
        taken: list[Job] = []
        while self.pending and len(taken) < count:
            taken.append(self.pending.popleft())
        return taken

    def clear_pending(self) -> list[Job]:
        """Remove and return all pending jobs (drop phase)."""
        dropped = list(self.pending)
        self.pending.clear()
        return dropped
