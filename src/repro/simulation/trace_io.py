"""Event-trace persistence: JSONL dump and reload.

Run traces power the analysis layer (epochs, credits, lemma checks);
persisting them lets long experiments be analyzed post-hoc without
re-simulating.  One JSON object per line, ``type`` field dispatching on
the event class — append-friendly and greppable.
"""

from __future__ import annotations

import json
from dataclasses import asdict, fields
from pathlib import Path
from typing import IO

from repro.core import events as ev

#: Event classes by serialized name.
EVENT_TYPES: dict[str, type] = {
    cls.__name__: cls
    for cls in (
        ev.ArrivalEvent,
        ev.DropEvent,
        ev.WrapEvent,
        ev.EligibleEvent,
        ev.IneligibleEvent,
        ev.ReconfigEvent,
        ev.ExecuteEvent,
        ev.CacheInEvent,
        ev.CacheOutEvent,
        ev.TimestampEvent,
    )
}


def trace_to_jsonl(trace: ev.Trace) -> str:
    """Serialize a trace, one event per line."""
    lines = []
    for event in trace:
        payload = {"type": type(event).__name__, **asdict(event)}
        lines.append(json.dumps(payload, separators=(",", ":")))
    return "\n".join(lines) + ("\n" if lines else "")


def trace_from_jsonl(text: str) -> ev.Trace:
    """Rebuild a trace from :func:`trace_to_jsonl` output."""
    trace = ev.Trace()
    for line_number, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        payload = json.loads(line)
        type_name = payload.pop("type", None)
        cls = EVENT_TYPES.get(type_name)
        if cls is None:
            raise ValueError(
                f"line {line_number}: unknown event type {type_name!r}"
            )
        expected = {f.name for f in fields(cls)}
        unexpected = set(payload) - expected
        if unexpected:
            raise ValueError(
                f"line {line_number}: unexpected fields {sorted(unexpected)}"
            )
        trace.append(cls(**payload))
    return trace


def save_trace(trace: ev.Trace, path: str | Path) -> None:
    Path(path).write_text(trace_to_jsonl(trace))


def load_trace(path: str | Path) -> ev.Trace:
    return trace_from_jsonl(Path(path).read_text())


# ---------------------------------------------------------------- schedules


def schedule_to_jsonl(schedule) -> str:
    """Serialize a schedule: a header line, then one event per line."""
    from repro.core.schedule import Schedule

    assert isinstance(schedule, Schedule)
    lines = [
        json.dumps(
            {
                "type": "ScheduleHeader",
                "num_resources": schedule.num_resources,
                "speed": schedule.speed,
            },
            separators=(",", ":"),
        )
    ]
    for event in schedule.reconfigurations:
        lines.append(
            json.dumps(
                {"type": "Reconfiguration", **asdict(event)},
                separators=(",", ":"),
            )
        )
    for event in schedule.executions:
        lines.append(
            json.dumps(
                {"type": "Execution", **asdict(event)}, separators=(",", ":")
            )
        )
    return "\n".join(lines) + "\n"


def schedule_from_jsonl(text: str):
    """Rebuild a schedule from :func:`schedule_to_jsonl` output."""
    from repro.core.schedule import Execution, Reconfiguration, Schedule

    lines = [line for line in text.splitlines() if line.strip()]
    if not lines:
        raise ValueError("empty schedule serialization")
    header = json.loads(lines[0])
    if header.get("type") != "ScheduleHeader":
        raise ValueError("missing ScheduleHeader line")
    schedule = Schedule(header["num_resources"], speed=header["speed"])
    for line in lines[1:]:
        payload = json.loads(line)
        kind = payload.pop("type")
        if kind == "Reconfiguration":
            schedule.add_reconfiguration(Reconfiguration(**payload))
        elif kind == "Execution":
            schedule.add_execution(Execution(**payload))
        else:
            raise ValueError(f"unknown schedule event type {kind!r}")
    return schedule


def save_run(result, directory: str | Path) -> dict[str, Path]:
    """Persist a full run: instance, schedule, trace, and cost summary.

    Everything needed to re-verify or re-analyze the run later without
    re-simulating.  Returns the written paths.
    """
    from repro.analysis.export import run_result_to_json
    from repro.workloads.traces import instance_to_json

    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    paths = {
        "summary": directory / "summary.json",
        "instance": directory / "instance.json",
        "schedule": directory / "schedule.jsonl",
        "trace": directory / "trace.jsonl",
    }
    paths["summary"].write_text(run_result_to_json(result, indent=2) + "\n")
    paths["instance"].write_text(instance_to_json(result.instance))
    paths["schedule"].write_text(schedule_to_jsonl(result.schedule))
    paths["trace"].write_text(trace_to_jsonl(result.trace))
    return paths


def load_run_schedule(directory: str | Path):
    """Reload the (instance, schedule) pair from :func:`save_run` output."""
    from repro.workloads.traces import instance_from_json

    directory = Path(directory)
    instance = instance_from_json((directory / "instance.json").read_text())
    schedule = schedule_from_jsonl((directory / "schedule.jsonl").read_text())
    return instance, schedule
