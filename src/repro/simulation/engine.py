"""The batched four-phase engine (Section 3.1 common protocol).

The three online algorithms of Section 3.1 "only differ in the way the
resources are reconfigured"; everything else — dropping at deadlines,
counter updates, wrapping events, eligibility transitions, replicated
execution — is the engine's job.  A
:class:`ReconfigurationScheme` receives the engine in the reconfiguration
phase of each (mini-)round and mutates the cache through
:meth:`BatchedEngine.cache_insert` / :meth:`BatchedEngine.cache_evict`,
which keep the schedule, cost breakdown, and trace consistent.

Double-speed algorithms (Section 3.3) repeat the reconfiguration and
execution phases twice per round; pass ``speed=2``.

Record modes (the engine fast path)
-----------------------------------
``record="full"`` (default) emits the explicit :class:`Schedule` and
:class:`Trace` the verifier and proof auditors consume.  ``record="costs"``
skips both — no per-job ``Execution``/event objects, no trace appends —
and produces only the :class:`CostBreakdown` plus optional metrics.  The
scheme-visible state (counters, deadlines, eligibility, pending queues,
wrapping history) is maintained identically in both modes, so costs agree
exactly; sweeps, adversary searches, and sensitivity grids that only read
costs run several times faster in ``"costs"`` mode.

The sparse core (boundary calendar + round skipping)
----------------------------------------------------
The Section 3.1 protocol only *acts* on a color at integral multiples of
its delay bound: drops, deadline resets, counter updates, and
eligibility transitions are all confined to those boundary rounds.  The
default ``sparse=True`` core exploits this three ways:

* **Boundary calendar** — a precomputed per-round schedule of delay-bound
  multiples, so the drop and arrival phases touch only the colors with a
  boundary this round instead of scanning every color every round.
* **Incremental orderings** — the eligible-color set is maintained as a
  sorted list across eligibility transitions (which only happen on
  boundary rounds), and the ΔLRU / EDF orderings are cached between the
  events that can change them (boundaries, and pending queues draining
  empty) instead of being re-sorted from scratch every mini-round.
* **Round skipping** — in ``record="costs"`` mode with no metrics
  collector, whole inactive stretches (no pending jobs anywhere, no
  boundary, no eligible-but-uncached color) are fast-forwarded in O(1):
  every phase of such a round is provably a no-op.  Which schemes
  qualify is a per-scheme contract,
  :meth:`ReconfigurationScheme.fixed_point_token`: stationary schemes
  skip immediately, schemes with verifiable decision state (RNG digests,
  credit vectors) skip after a one-round probe, and schemes returning
  ``None`` are never skipped.

``sparse=False`` keeps the PR-1 dense round loop; the two cores are
cost- and trace-exact against each other (property-tested), and the
dense core remains available as the before/after benchmark baseline.

Observability hooks
-------------------
Three optional, strictly observational attachments (``repro.obs``):

* ``tracer`` — a :class:`repro.obs.tracing.Tracer`; the engine opens a
  ``run`` span, a ``round`` span per simulated round, emits ``phase``
  markers (drop/arrival/reconfigure/execute) and leaf events (``drop``,
  ``arrival``, ``reconfig``, ``execute``, ``wrap``, ``eligible``,
  ``ineligible``, ``cache_in``/``cache_out``, ``fast_forward``,
  ``cache_hit``).  Disabled tracers (null sink) are normalized to
  ``None`` so the hot loop pays only ``is not None`` checks.
* ``registry`` — a :class:`repro.obs.metrics.MetricsRegistry`;
  ``engine.*`` counters and histograms (queue depth, backlog age,
  reconfig interarrival, order-cache hits) accumulate without retaining
  per-event records.
* ``profiler`` — a :class:`repro.obs.profiling.PhaseProfiler`;
  per-phase wall-clock attribution for the ``--profile`` flame table.

None of the three ever mutates simulation state: traced and untraced
runs produce bit-identical :class:`CostBreakdown`\\ s (property-tested).
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod
from bisect import insort
from collections import Counter, deque
from dataclasses import dataclass
from typing import Sequence

from repro.core.cost import CostBreakdown
from repro.core.events import (
    ArrivalEvent,
    CacheInEvent,
    CacheOutEvent,
    DropEvent,
    EligibleEvent,
    ExecuteEvent,
    IneligibleEvent,
    ReconfigEvent,
    TimestampEvent,
    Trace,
    WrapEvent,
)
from repro.core.instance import Instance
from repro.core.job import Job
from repro.core.schedule import Execution, Reconfiguration, Schedule
from repro.core.validation import ValidationReport, verify_schedule
from repro.simulation.metrics import MetricsCollector
from repro.simulation.resources import CachePool
from repro.simulation.state import ColorState


class EngineInstruments:
    """``engine.*`` instrument bundle over a metrics registry.

    Resolves every instrument once at construction so the round loop
    never pays registry lookups; shared by both engine cores (batched
    and general).  The registry is duck-typed (anything exposing
    ``counter``/``gauge``/``histogram`` works) so the simulation layer
    needs no import of :mod:`repro.obs`.

    Hot-path observations are *batched*: the round loop appends raw
    ``(color, age, count)`` / queue-depth samples to plain lists (a few
    nanoseconds each) and :meth:`flush` — called once, when the run
    loop ends — aggregates duplicates and folds them into the
    histograms with a single ``observe(value, n)`` per distinct value.
    Ages are bounded by the delay bounds and queue depths repeat
    heavily, so the aggregation collapses thousands of samples into a
    handful of observes.  Histograms are order-independent, so the
    flushed snapshot is identical to the eagerly-observed one; the only
    visible difference is that a snapshot taken *mid-run* misses the
    unflushed tail (engines flush before returning their RunResult).
    """

    __slots__ = (
        "registry",
        "drops",
        "executions",
        "reconfigs",
        "rounds_executed",
        "rounds_fast_forwarded",
        "fixed_point_skips",
        "order_cache_hits",
        "order_cache_misses",
        "queue_depth",
        "backlog_age",
        "reconfig_interarrival",
        "_age_by_color",
        "_last_reconfig_round",
        "_queue_samples",
        "_age_samples",
        "_exec_ages",
        "_order_hits",
        "_order_misses",
    )

    def __init__(self, registry) -> None:
        self.registry = registry
        self.drops = registry.counter("engine.drops")
        self.executions = registry.counter("engine.executions")
        self.reconfigs = registry.counter("engine.reconfigs")
        self.rounds_executed = registry.counter("engine.rounds_executed")
        self.rounds_fast_forwarded = registry.counter("engine.rounds_fast_forwarded")
        self.fixed_point_skips = registry.counter("engine.fixed_point_skips")
        self.order_cache_hits = registry.counter("engine.order_cache_hits")
        self.order_cache_misses = registry.counter("engine.order_cache_misses")
        self.queue_depth = registry.histogram("engine.queue_depth")
        self.backlog_age = registry.histogram("engine.backlog_age")
        self.reconfig_interarrival = registry.histogram("engine.reconfig_interarrival")
        self._age_by_color: dict[int, object] = {}
        self._last_reconfig_round: int | None = None
        #: Unflushed per-round queue-depth samples.
        self._queue_samples: list[int] = []
        #: Unflushed ``(color, age, count)`` drop-age samples (drops are
        #: rare enough that tuple records are fine).
        self._age_samples: list[tuple[int, int, int]] = []
        #: Unflushed execution ages, one flat int list per color: the
        #: per-job hot path pays one list append, no tuple allocation.
        #: ``executions`` is derived from these lengths at flush time.
        self._exec_ages: dict[int, list[int]] = {}
        #: Unflushed order-cache tallies: the rank/LRU cache probe sits
        #: on the reconfigure path, so it pays a plain ``+= 1`` here
        #: instead of a ``Counter.inc`` call per probe.
        self._order_hits = 0
        self._order_misses = 0

    def _color_age(self, color: int):
        histogram = self._age_by_color.get(color)
        if histogram is None:
            histogram = self.registry.histogram(f"engine.backlog_age.color.{color}")
            self._age_by_color[color] = histogram
        return histogram

    def record_drop(self, color: int, count: int, age: int) -> None:
        self.drops.value += count
        self._age_samples.append((color, age, count))

    def record_execution(self, color: int, age: int) -> None:
        ages = self._exec_ages.get(color)
        if ages is None:
            ages = self._exec_ages[color] = []
        ages.append(age)

    def sample_queue_depth(self, depth: int) -> None:
        self._queue_samples.append(depth)

    def record_reconfig(self, round_index: int, resources: int) -> None:
        self.reconfigs.inc(resources)
        if self._last_reconfig_round is not None:
            self.reconfig_interarrival.observe(
                round_index - self._last_reconfig_round
            )
        self._last_reconfig_round = round_index

    def flush(self) -> None:
        """Fold buffered samples into the counters/histograms (idempotent)."""
        if self._order_hits:
            self.order_cache_hits.value += self._order_hits
            self._order_hits = 0
        if self._order_misses:
            self.order_cache_misses.value += self._order_misses
            self._order_misses = 0
        samples = self._queue_samples
        if samples:
            observe = self.queue_depth.observe
            for depth, n in Counter(samples).items():
                observe(depth, n)
            samples.clear()
        drops = self._age_samples
        exec_ages = self._exec_ages
        if drops or exec_ages:
            # Aggregate per color: the execution buffers are already
            # grouped that way, so Counter() does the heavy lifting in C.
            by_color: dict[int, dict[int, int]] = {}
            for color, age, count in drops:
                ages = by_color.setdefault(color, {})
                ages[age] = ages.get(age, 0) + count
            executed = 0
            for color, age_list in exec_ages.items():
                executed += len(age_list)
                counted = Counter(age_list)
                ages = by_color.get(color)
                if ages is None:
                    by_color[color] = counted
                else:
                    for age, n in counted.items():
                        ages[age] = ages.get(age, 0) + n
            self.executions.value += executed
            backlog_observe = self.backlog_age.observe
            for color, ages in by_color.items():
                color_observe = self._color_age(color).observe
                for age, n in ages.items():
                    backlog_observe(age, n)
                    color_observe(age, n)
            drops.clear()
            exec_ages.clear()


def _active_tracer(tracer):
    """Normalize disabled tracers (null sink) to ``None``.

    The engines' zero-overhead contract: a tracer whose sink is null
    costs exactly the same as no tracer, because the round loop only
    ever checks ``is not None``.
    """
    if tracer is not None and getattr(tracer, "enabled", True):
        return tracer
    return None


def _noop_phase() -> None:
    """Placeholder for phases with no work this round (sparse core)."""


class _StationaryToken:
    """Singleton sentinel for :meth:`ReconfigurationScheme.fixed_point_token`."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "STATIONARY_TOKEN"


#: Returned by ``fixed_point_token()`` for stationary schemes: the engine
#: may fast-forward an inactive stretch immediately, without the one-round
#: probe that non-stationary tokens require (see ``fixed_point_token``).
STATIONARY_TOKEN = _StationaryToken()


class ReconfigurationScheme(ABC):
    """Strategy invoked in the reconfiguration phase of every mini-round."""

    #: Human-readable algorithm name used in reports.
    name: str = "abstract"

    #: Stationarity contract, opted into by schemes that qualify: the
    #: scheme's ``reconfigure`` is a deterministic function of the
    #: scheme-visible engine state (eligibility, timestamps, deadlines,
    #: idleness, cache contents), and whenever every pending queue is
    #: empty, no phase boundary intervenes, and every eligible color is
    #: cached, calling it again performs no cache mutations.  The sparse
    #: engine core fast-forwards inactive stretches immediately for
    #: stationary schemes; non-stationary schemes can still opt into
    #: probe-verified skipping via :meth:`fixed_point_token`.
    stationary: bool = False

    def setup(self, engine: "BatchedEngine") -> None:
        """Hook called once before round 0 (default: no-op)."""

    def reset(self, seed: int | None = None) -> None:
        """Re-initialize per-run mutable state (default: no-op).

        Called once at engine construction, before :meth:`setup`, so a
        scheme instance reused across sweep repeats or adversary-search
        restarts starts every run from the same state.  Randomized
        schemes re-derive their generator here (from ``seed`` when
        given, else from the seed they were constructed with) so
        back-to-back runs of the same cell are bit-identical instead of
        silently continuing one RNG stream.
        """

    def fixed_point_token(self) -> object | None:
        """Opaque digest of the scheme's inactive-round decision state.

        The sparse core consults this in ``record="costs"`` mode when an
        *inactive stretch* begins (no pending jobs anywhere, no eligible
        uncached color, no boundary until the next calendar round):

        * ``None`` — never skip; the engine executes every round.  This
          is the conservative default for non-stationary schemes.
        * :data:`STATIONARY_TOKEN` — skip immediately; the stationarity
          contract already proves inactive rounds are no-ops.
        * any other equality-comparable value — *probe protocol*: the
          engine executes one more inactive round and skips only if the
          token and the engine's order/cache epochs all came back
          unchanged, i.e. the executed round was observably an identity
          map on scheme and engine state.  Randomized schemes return an
          RNG-state digest (a skip is taken only when no randomness
          would have been consumed); credit schemes return their credit
          vector.

        Contract for non-``None``, non-sentinel tokens: ``reconfigure``
        must be a deterministic function of the token-covered internal
        state and the scheme-visible engine state, and must not depend
        on the raw round index within a boundary-free stretch.  The
        default derives the token from :attr:`stationary`, so existing
        schemes keep their exact behavior.
        """
        return STATIONARY_TOKEN if self.stationary else None

    def state_dict(self) -> dict:
        """JSON-ready snapshot of the scheme's mutable decision state.

        The streaming checkpoint layer persists this next to the engine
        state so a resumed run replays bit-identically.  Stateless
        schemes (the four paper kernels) return ``{}``; schemes holding
        decision state the engine cannot see — RNG streams, mark sets,
        credit vectors — must override both this and :meth:`load_state`
        to round-trip it exactly (same contract as
        :meth:`fixed_point_token`, which digests the same state).
        """
        return {}

    def load_state(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot (inverse operation).

        Called *after* :meth:`reset` (engine construction resets the
        scheme), overwriting the fresh state with the checkpointed one.
        The default accepts only the empty snapshot; a non-empty snapshot
        reaching a scheme without an override is a checkpoint/scheme
        mismatch and raises rather than silently dropping state.
        """
        if state:
            raise ValueError(
                f"scheme {self.name!r} has no load_state override but the "
                f"checkpoint carries state keys {sorted(state)}"
            )

    @abstractmethod
    def reconfigure(self, engine: "BatchedEngine") -> None:
        """Mutate ``engine``'s cache for the current mini-round."""


@dataclass
class RunResult:
    """Everything produced by one engine run.

    ``schedule`` and ``trace`` are ``None`` for ``record="costs"`` runs —
    the fast path never builds them.  ``wall_seconds`` is the wall-clock
    time of the round loop (instance construction excluded).
    ``rounds_executed`` counts the rounds the loop actually simulated;
    the sparse core may fast-forward the rest (``None`` when the engine
    predates the sparse core or did not track it).  ``rounds_total`` is
    the number of rounds this run *covered* — ``horizon`` for whole-
    instance runs, ``horizon - start_round`` for streaming segments,
    possibly 0 for an empty segment (``None`` falls back to the
    instance horizon for results built before the field existed).
    """

    instance: Instance
    algorithm: str
    num_resources: int
    speed: int
    schedule: Schedule | None
    cost: CostBreakdown
    trace: Trace | None
    metrics: MetricsCollector | None = None
    record: str = "full"
    wall_seconds: float = 0.0
    rounds_executed: int | None = None
    rounds_total: int | None = None

    @property
    def total_cost(self) -> int:
        return self.cost.total

    @property
    def _covered_rounds(self) -> int:
        return (
            self.rounds_total
            if self.rounds_total is not None
            else self.instance.horizon
        )

    @property
    def rounds_per_second(self) -> float:
        """Simulated mini-rounds per wall-clock second.

        Double-speed runs execute two reconfiguration+execution phases
        per round, so the round count is scaled by ``speed`` — throughput
        rows of ``speed=2`` runs are comparable to uni-speed rows.
        Untimed results and zero-round runs (an empty streaming segment,
        a fully pre-resolved result) report 0.0 consistently instead of
        claiming positive throughput for work that never happened.
        """
        covered = self._covered_rounds
        if self.wall_seconds <= 0 or covered <= 0:
            return 0.0
        return covered * self.speed / self.wall_seconds

    @property
    def active_round_fraction(self) -> float:
        """Fraction of covered rounds the loop simulated.

        1.0 when the engine did not track skips; 0.0 for a zero-round
        run (nothing was covered, so nothing was simulated — the
        convention matches :meth:`rounds_per_second` returning 0.0
        rather than dividing by zero).
        """
        covered = self._covered_rounds
        if covered <= 0:
            return 0.0
        if self.rounds_executed is None:
            return 1.0
        return self.rounds_executed / covered

    def verify(self, *, strict: bool = False) -> ValidationReport:
        """Re-check the emitted schedule against the instance."""
        if self.schedule is None:
            raise RuntimeError(
                "this run used record='costs' and has no schedule to "
                "verify; rerun with record='full'"
            )
        return verify_schedule(self.instance, self.schedule, strict=strict)


class BatchedEngine:
    """Drives a reconfiguration scheme over a batched instance.

    Parameters
    ----------
    instance:
        Must be declared ``BATCHED`` or ``RATE_LIMITED``.
    scheme:
        The reconfiguration strategy (ΔLRU, EDF, ΔLRU-EDF, Seq-EDF, ...).
    num_resources:
        ``n``; must be divisible by ``copies``.
    copies:
        Replication factor: each cached color occupies this many physical
        resources (2 for the Section 3.1 algorithms, 1 for Seq-EDF).
    speed:
        1 for uni-speed, 2 for double-speed (Section 3.3).
    record:
        ``"full"`` emits the schedule and trace; ``"costs"`` skips both
        (fast path) and only maintains the cost breakdown.
    sparse:
        ``True`` (default) runs the boundary-calendar core with cached
        orderings and (in ``"costs"`` mode, for stationary schemes)
        inactive-stretch skipping.  ``False`` runs the dense per-round
        all-colors loop; both produce identical costs, schedules, and
        traces.
    start_round:
        First round to simulate (default 0).  Streaming sessions run a
        long horizon as a chain of segment engines: each segment covers
        global rounds ``[start_round, horizon)`` with the predecessor's
        exported state loaded via :meth:`import_state`.  Round indices
        stay global, so deadlines, boundary calendars, and ΔLRU
        timestamps are identical to one uninterrupted run.
    """

    def __init__(
        self,
        instance: Instance,
        scheme: ReconfigurationScheme,
        num_resources: int,
        *,
        copies: int = 2,
        speed: int = 1,
        collect_metrics: bool = False,
        record: str = "full",
        sparse: bool = True,
        start_round: int = 0,
        tracer=None,
        registry=None,
        profiler=None,
        reconfig_observer=None,
    ) -> None:
        if not instance.spec.batch_mode.is_batched:
            raise ValueError(
                "BatchedEngine requires a batched instance; wrap general "
                "instances with the VarBatch reduction first"
            )
        if num_resources <= 0 or num_resources % copies != 0:
            raise ValueError(
                f"num_resources ({num_resources}) must be a positive "
                f"multiple of copies ({copies})"
            )
        if speed not in (1, 2):
            raise ValueError("speed must be 1 (uni) or 2 (double)")
        if record not in ("full", "costs"):
            raise ValueError("record must be 'full' or 'costs'")
        if not 0 <= start_round <= instance.horizon:
            raise ValueError(
                f"start_round {start_round} outside [0, {instance.horizon}]"
            )
        self.instance = instance
        self.scheme = scheme
        self.num_resources = num_resources
        self.copies = copies
        self.speed = speed
        self.record = record
        self.sparse = bool(sparse)
        #: Backend identifier surfaced in the run span and bench rows;
        #: subclasses (the vectorized backend) override it.
        self.engine_name = "sparse" if self.sparse else "dense"
        self.delta = instance.reconfig_cost

        self.cache = CachePool(num_resources // copies, copies)
        self.states: dict[int, ColorState] = {
            color: ColorState(color, bound)
            for color, bound in instance.spec.delay_bounds.items()
        }
        full = record == "full"
        self.schedule: Schedule | None = (
            Schedule(num_resources, speed=speed) if full else None
        )
        self.cost = CostBreakdown(instance.cost_model)
        self.trace: Trace | None = Trace() if full else None
        self.metrics = (
            MetricsCollector(instance.horizon) if collect_metrics else None
        )
        self.tracer = _active_tracer(tracer)
        self.profiler = profiler
        #: Sampling cooperation (repro.obs.sampling): a tracer exposing
        #: ``keep_round(k)`` lets the engine run the *plain* round body
        #: for sampled-out rounds, shedding the span/phase indirection —
        #: not just the sink writes.  A profiler wants every round timed,
        #: so it disables the shortcut (records are still suppressed at
        #: emission by the sampling tracer itself).
        self._round_filter = (
            getattr(self.tracer, "keep_round", None)
            if profiler is None
            else None
        )
        #: Optional ``(color, resources)`` callback fired on every cache
        #: insert that physically reconfigured resources, in event order.
        #: Lets reduction pipelines stream the outer-schedule reconfig
        #: accounting in ``record="costs"`` mode, where no Schedule object
        #: exists to map back (see reductions/distribute.py).
        self._reconfig_observer = reconfig_observer
        self.obs = EngineInstruments(registry) if registry is not None else None
        self.start_round = start_round
        self.round_index = start_round
        self.mini_round = 0
        self.rounds_executed = 0
        self._ran = False
        #: Set by :meth:`import_state`; suppresses ``scheme.setup`` for
        #: mid-run segments (setup belongs to round 0 of the global run).
        self._state_imported = False

        # Incremental bookkeeping for the sparse core.  All counters are
        # maintained in both cores (the updates are O(1)); the cached
        # orderings are only *consulted* in sparse mode so the dense core
        # remains the faithful PR-1 baseline.
        self._total_pending = 0
        self._eligible_sorted: list[int] = []
        self._num_eligible_uncached = 0
        self._rank_cache: list[int] | None = None
        self._lru_cache: list[int] | None = None
        #: Monotone counter of scheme-visible ordering changes
        #: (eligibility, timestamps, deadlines, idleness).  Bumped in both
        #: cores; stationary schemes use it to skip a reconfiguration pass
        #: entirely when nothing changed since their last completed pass.
        self.order_epoch = 0
        #: Epoch at which the scheme last completed a reconfiguration
        #: pass (see :meth:`at_fixed_point`); ``None`` until it does.
        self._scheme_pass_epoch: int | None = None
        #: Monotone counter of cache mutations (inserts and evictions).
        #: Together with ``order_epoch`` it lets the probe protocol prove
        #: an executed round was an identity map: equal epochs before and
        #: after mean the scheme touched nothing the engine can see.
        self._cache_epoch = 0
        #: Last ``(order_epoch, cache_epoch, token)`` observed at a skip
        #: checkpoint; a repeat observation proves the round in between
        #: was a no-op (see ReconfigurationScheme.fixed_point_token).
        self._probe_state: tuple | None = None
        scheme.reset()

    # ------------------------------------------------------------------ run

    def run(self) -> RunResult:
        """Simulate all rounds and return the result bundle."""
        if self._ran:
            raise RuntimeError("engine instances are single-use; build a new one")
        self._ran = True
        tracer = self.tracer
        if tracer is not None:
            tracer.begin(
                "run",
                algorithm=self.scheme.name,
                resources=self.num_resources,
                speed=self.speed,
                record=self.record,
                engine=self.engine_name,
                horizon=self.instance.horizon,
                delta=self.delta,
            )
        if self.start_round == 0:
            # Mid-run segments (start_round > 0) carry the scheme state of
            # their predecessor; setup belongs to round 0 of the global run.
            self.scheme.setup(self)
        start = time.perf_counter()
        if self.sparse:
            self._run_sparse()
        else:
            self._run_dense()
        elapsed = time.perf_counter() - start
        if self.metrics is not None:
            self.metrics.record_wall_clock(
                elapsed, self.instance.horizon * self.speed
            )
        if self.obs is not None:
            self.obs.rounds_executed.inc(self.rounds_executed)
            self.obs.flush()
        if tracer is not None:
            tracer.end(
                "run",
                total_cost=self.cost.total,
                reconfig_cost=self.cost.reconfig_cost,
                drop_cost=self.cost.drop_cost,
                rounds_executed=self.rounds_executed,
                wall_seconds=round(elapsed, 6),
            )
        return RunResult(
            instance=self.instance,
            algorithm=self.scheme.name,
            num_resources=self.num_resources,
            speed=self.speed,
            schedule=self.schedule,
            cost=self.cost,
            trace=self.trace,
            metrics=self.metrics,
            record=self.record,
            wall_seconds=elapsed,
            rounds_executed=self.rounds_executed,
            rounds_total=self.instance.horizon - self.start_round,
        )

    def _run_phase(self, name: str, k: int, fn, *args, mini: int | None = None) -> None:
        """Run one phase with trace marker + wall-clock attribution."""
        tracer, prof = self.tracer, self.profiler
        if tracer is not None:
            if mini is None:
                tracer.event("phase", k, phase=name)
            else:
                tracer.event("phase", k, phase=name, mini=mini)
        if prof is None:
            fn(*args)
        else:
            t0 = time.perf_counter()
            fn(*args)
            prof.add(name, time.perf_counter() - t0)

    def _round_instrumented(self, k: int, drop_fn, drop_args, arrival_fn, arrival_args) -> None:
        """One observed round: span + phase markers + queue-depth sample.

        Only entered when a tracer, profiler, or metrics registry is
        attached — the uninstrumented loops below stay byte-identical to
        the plain hot path.
        """
        round_filter = self._round_filter
        if round_filter is not None and not round_filter(k):
            # Sampled-out round: phases run bare (leaf events inside them
            # still fire and the sampling tracer keeps the monitor-
            # relevant ones), metrics stay exact, but the round span,
            # phase markers, and wall-clock attribution are shed.
            drop_fn(*drop_args)
            arrival_fn(*arrival_args)
            for mini in range(self.speed):
                self.mini_round = mini
                self.scheme.reconfigure(self)
                self._execution_phase(k, mini)
            if self.obs is not None:
                self.obs.sample_queue_depth(self._total_pending)
            if self.metrics is not None:
                self.metrics.end_round(k, self)
            return
        tracer = self.tracer
        if tracer is not None:
            tracer.begin("round", k)
        self._run_phase("drop", k, drop_fn, *drop_args)
        self._run_phase("arrival", k, arrival_fn, *arrival_args)
        for mini in range(self.speed):
            self.mini_round = mini
            self._run_phase("reconfigure", k, self.scheme.reconfigure, self, mini=mini)
            self._run_phase("execute", k, self._execution_phase, k, mini, mini=mini)
        if self.obs is not None:
            self.obs.sample_queue_depth(self._total_pending)
        if self.metrics is not None:
            self.metrics.end_round(k, self)
        if tracer is not None:
            tracer.end("round", k)

    @property
    def _instrumented(self) -> bool:
        return (
            self.tracer is not None
            or self.profiler is not None
            or self.obs is not None
        )

    def _run_dense(self) -> None:
        """The PR-1 round loop: every phase scans every color, no skips."""
        if self.tracer is not None or self.profiler is not None:
            for k in range(self.start_round, self.instance.horizon):
                self.round_index = k
                self._round_instrumented(
                    k, self._drop_phase, (k,), self._arrival_phase, (k,)
                )
            self.rounds_executed = self.instance.horizon - self.start_round
            return
        # Metrics-only runs (registry attached, no tracer/profiler) share
        # the plain loop: the only additions are buffered sample appends,
        # so the round path skips the span/phase indirection entirely.
        obs = self.obs
        queue_append = obs._queue_samples.append if obs is not None else None
        for k in range(self.start_round, self.instance.horizon):
            self.round_index = k
            self._drop_phase(k)
            self._arrival_phase(k)
            for mini in range(self.speed):
                self.mini_round = mini
                self.scheme.reconfigure(self)
                self._execution_phase(k, mini)
            if queue_append is not None:
                queue_append(self._total_pending)
            if self.metrics is not None:
                self.metrics.end_round(k, self)
        self.rounds_executed = self.instance.horizon - self.start_round

    def _run_sparse(self) -> None:
        """Boundary-calendar loop with inactive-stretch fast-forwarding."""
        horizon = self.instance.horizon
        calendar, boundary_rounds = self._build_calendar(horizon)
        # Skipping is only sound when nothing observes the skipped rounds
        # (no trace/schedule, no per-round metrics) and the scheme vouches
        # for its inactive-round behavior through fixed_point_token().
        # Observability attachments (tracer/registry/profiler) do NOT
        # disable skipping: skipped rounds are provable global no-ops, so
        # the trace records a single ``fast_forward`` event instead of
        # empty rounds.
        can_skip = self.record == "costs" and self.metrics is None
        token_fn = self.scheme.fixed_point_token
        tr, obs = self.tracer, self.obs
        queue_append = obs._queue_samples.append if obs is not None else None
        # Metrics-only runs take the plain branch below; the span/phase
        # indirection is only worth paying when a tracer or profiler
        # actually consumes the markers.
        instrumented = tr is not None or self.profiler is not None
        num_boundaries = len(boundary_rounds)
        bi = 0  # index of the first boundary round >= current k
        k = self.start_round
        while k < horizon:
            self.round_index = k
            boundary_colors = calendar.get(k)
            if instrumented:
                if boundary_colors is not None:
                    # dd, timestamps, and eligibility may all change here.
                    self._touch_orders()
                    drop = (
                        (self._drop_phase_sparse, (k, boundary_colors))
                        if k > 0
                        else (_noop_phase, ())
                    )
                    arrival = (self._arrival_phase_sparse, (k, boundary_colors))
                else:
                    drop = (_noop_phase, ())
                    arrival = (_noop_phase, ())
                self._round_instrumented(k, drop[0], drop[1], arrival[0], arrival[1])
            else:
                if boundary_colors is not None:
                    # dd, timestamps, and eligibility may all change here.
                    self._touch_orders()
                    if k > 0:
                        self._drop_phase_sparse(k, boundary_colors)
                    self._arrival_phase_sparse(k, boundary_colors)
                for mini in range(self.speed):
                    self.mini_round = mini
                    self.scheme.reconfigure(self)
                    self._execution_phase(k, mini)
                if queue_append is not None:
                    queue_append(self._total_pending)
                if self.metrics is not None:
                    self.metrics.end_round(k, self)
            self.rounds_executed += 1
            k += 1
            if (
                can_skip
                and self._total_pending == 0
                and self._num_eligible_uncached == 0
            ):
                token = token_fn()
                if token is None:
                    self._probe_state = None
                    continue
                skip = token is STATIONARY_TOKEN
                if not skip:
                    state = (self.order_epoch, self._cache_epoch, token)
                    # Probe protocol: skip only after one fully executed
                    # inactive round left the token and both engine
                    # epochs unchanged — that round was observably an
                    # identity map, and nothing differs for the rounds
                    # up to the next boundary.
                    skip = state == self._probe_state
                    self._probe_state = state
                if not skip:
                    continue
                while bi < num_boundaries and boundary_rounds[bi] < k:
                    bi += 1
                next_boundary = (
                    boundary_rounds[bi] if bi < num_boundaries else horizon
                )
                # Every round in [k, next_boundary) is a global no-op:
                # no drops or arrivals (no boundary), no executions (no
                # pending work), and the token contract proves the
                # reconfiguration phases perform no mutations.  The clamp
                # keeps a fast-forward from overshooting the horizon; no
                # end-of-horizon drop can be lost to it because instances
                # place every deadline before ``horizon``, making each
                # drop round a calendar round the skip lands on, never
                # jumps over — pinned by the horizon-edge boundary tests.
                target = min(next_boundary, horizon)
                if target > k:
                    if tr is not None:
                        tr.event(
                            "fast_forward", k, to_round=target, rounds=target - k
                        )
                    if obs is not None:
                        obs.rounds_fast_forwarded.inc(target - k)
                k = target
            else:
                self._probe_state = None

    def _build_calendar(
        self, horizon: int
    ) -> tuple[dict[int, list[int]], list[int]]:
        """Per-round lists of colors with a delay-bound multiple.

        Building cost is ``Σ_ℓ (horizon - start) / D_ℓ`` — proportional
        to the boundary events inside the simulated window, not
        ``horizon × colors`` (segment engines pay only for their own
        window).  Each round's list preserves the consistent iteration
        order of ``self.states`` so sparse traces replay the dense ones
        exactly.
        """
        calendar: dict[int, list[int]] = {}
        for color, st in self.states.items():
            for k in st.boundaries(horizon, self.start_round):
                bucket = calendar.get(k)
                if bucket is None:
                    calendar[k] = [color]
                else:
                    bucket.append(color)
        return calendar, sorted(calendar)

    # --------------------------------------------------------------- phases

    def _drop_phase(self, k: int) -> None:
        trace = self.trace
        touched = False
        for color, st in self.states.items():
            if k == 0 or k % st.delay_bound != 0:
                # Round 0 is a multiple of every bound but nothing can be
                # pending yet and eligibility is vacuously false.
                continue
            if not touched:
                touched = True
                self._touch_orders()
            self._drop_one(k, color, st, trace)

    def _drop_phase_sparse(self, k: int, colors: list[int]) -> None:
        trace = self.trace
        states = self.states
        for color in colors:
            self._drop_one(k, color, states[color], trace)

    def _drop_one(self, k: int, color: int, st: ColorState, trace) -> None:
        dropped = len(st.pending)
        if dropped:
            st.pending.clear()
            self._total_pending -= dropped
            if trace is not None:
                trace.append(DropEvent(k, color, dropped, eligible=st.eligible))
            self.cost.record_drop(color, dropped, eligible=st.eligible)
            if self.tracer is not None:
                self.tracer.event(
                    "drop", k, color=color, count=dropped, eligible=st.eligible
                )
            if self.obs is not None:
                # Dropped jobs arrived at the previous boundary of this
                # color, so every one ages out at exactly its bound.
                self.obs.record_drop(color, dropped, st.delay_bound)
        if st.eligible and color not in self.cache:
            st.eligible = False
            st.cnt = 0
            self._eligible_remove(color)
            if trace is not None:
                trace.append(IneligibleEvent(k, color))
            if self.tracer is not None:
                self.tracer.event("ineligible", k, color=color)

    def _arrival_phase(self, k: int) -> None:
        trace = self.trace
        arrivals: dict[int, list] = {}
        for job in self.instance.sequence.arrivals(k):
            arrivals.setdefault(job.color, []).append(job)
        touched = False
        for color, st in self.states.items():
            if k % st.delay_bound != 0:
                continue
            if not touched:
                touched = True
                self._touch_orders()
            self._arrive_one(k, color, st, arrivals.get(color, []), trace)

    def _arrival_phase_sparse(self, k: int, colors: list[int]) -> None:
        trace = self.trace
        arrivals: dict[int, list] = {}
        for job in self.instance.sequence.arrivals(k):
            arrivals.setdefault(job.color, []).append(job)
        states = self.states
        for color in colors:
            self._arrive_one(k, color, states[color], arrivals.get(color, []), trace)

    def _arrive_one(
        self, k: int, color: int, st: ColorState, batch: list, trace
    ) -> None:
        st.dd = k + st.delay_bound
        st.cnt += len(batch)
        tracer = self.tracer
        if batch:
            if trace is not None:
                trace.append(ArrivalEvent(k, color, len(batch)))
            if tracer is not None:
                tracer.event("arrival", k, color=color, count=len(batch))
        if st.cnt >= self.delta:
            # One batch can advance the counter past several multiples
            # of Δ (a rate-limited batch of size D_ℓ ≥ 2Δ already
            # does); each crossed multiple is its own wrapping event —
            # the credit auditors count wraps, not arrival rounds.
            wraps, st.cnt = divmod(st.cnt, self.delta)
            st.record_wrap(k)
            if trace is not None:
                for _ in range(wraps):
                    trace.append(WrapEvent(k, color))
            if tracer is not None:
                tracer.event("wrap", k, color=color, count=wraps)
            if not st.eligible:
                st.eligible = True
                self._eligible_add(color)
                if trace is not None:
                    trace.append(EligibleEvent(k, color))
                if tracer is not None:
                    tracer.event("eligible", k, color=color)
        st.pending.extend(batch)
        self._total_pending += len(batch)
        if trace is not None or tracer is not None:
            # Timestamp updates drive the super-epoch machinery (§3.4);
            # mirror them onto the bus so live monitors can close
            # super-epochs without a full-mode Trace.
            ts = st.timestamp(k)
            if ts != st.last_timestamp:
                st.last_timestamp = ts
                if trace is not None:
                    trace.append(TimestampEvent(k, color, ts))
                if tracer is not None:
                    tracer.event("timestamp", k, color=color, timestamp=ts)

    def _execution_phase(self, k: int, mini: int) -> None:
        schedule, trace = self.schedule, self.trace
        tracer, obs = self.tracer, self.obs
        if schedule is None:
            if self._total_pending == 0:
                return
            if tracer is None and obs is None:
                # Fast path: within a batched color every pending job is
                # interchangeable for cost purposes, so count executions
                # in bulk instead of materializing Execution/event
                # objects.
                for slot in self.cache.occupied_slots():
                    st = self.states[slot.occupant]
                    taken = min(self.copies, len(st.pending))
                    if taken:
                        for _ in range(taken):
                            st.pending.popleft()
                        self._total_pending -= taken
                        if not st.pending:
                            # Idle flips reorder the EDF ranking (idleness
                            # is its leading sort key); recency is
                            # unaffected.
                            self.order_epoch += 1
                            self._rank_cache = None
                        self.cost.record_execution(slot.occupant, taken)
                return
            exec_ages = obs._exec_ages if obs is not None else None
            for slot in self.cache.occupied_slots():
                st = self.states[slot.occupant]
                taken = min(self.copies, len(st.pending))
                if taken:
                    color = slot.occupant
                    if exec_ages is None:
                        for _ in range(taken):
                            st.pending.popleft()
                    else:
                        ages = exec_ages.get(color)
                        if ages is None:
                            ages = exec_ages[color] = []
                        age_append = ages.append
                        for _ in range(taken):
                            job = st.pending.popleft()
                            age_append(k - job.arrival)
                    self._total_pending -= taken
                    if not st.pending:
                        self.order_epoch += 1
                        self._rank_cache = None
                    self.cost.record_execution(color, taken)
                    if tracer is not None:
                        tracer.event(
                            "execute", k, color=color, count=taken, mini=mini
                        )
            return
        for slot in self.cache.occupied_slots():
            st = self.states[slot.occupant]
            taken = st.take_pending(self.copies)
            if taken:
                self._total_pending -= len(taken)
                if not st.pending:
                    self.order_epoch += 1
                    self._rank_cache = None
            for resource, job in zip(slot.resources(), taken):
                schedule.add_execution(
                    Execution(k, mini, resource, job.jid, job.color)
                )
                trace.append(ExecuteEvent(k, mini, resource, job.color, job.jid))
                self.cost.record_execution(job.color)
                if obs is not None:
                    obs.record_execution(job.color, k - job.arrival)
            if taken and tracer is not None:
                tracer.event(
                    "execute", k, color=slot.occupant, count=len(taken), mini=mini
                )

    # ----------------------------------------- incremental eligible tracking

    def _touch_orders(self) -> None:
        """Note an ordering-relevant state change (boundary processing)."""
        self.order_epoch += 1
        self._rank_cache = None
        self._lru_cache = None

    def at_fixed_point(self) -> bool:
        """True when the scheme already completed a pass at this epoch.

        Stationary schemes call this at the top of ``reconfigure`` and
        return immediately on True: nothing they look at (eligibility,
        timestamps, deadlines, idleness, cache contents) has changed
        since their last completed pass, and a completed pass of a
        stationary scheme is idempotent.  Only honored by the sparse
        core so dense runs keep the unoptimized baseline behavior.
        """
        if self.sparse and self._scheme_pass_epoch == self.order_epoch:
            if self.tracer is not None:
                self.tracer.event(
                    "cache_hit",
                    self.round_index,
                    target="fixed_point",
                    mini=self.mini_round,
                )
            if self.obs is not None:
                self.obs.fixed_point_skips.inc()
            return True
        return False

    def mark_fixed_point(self) -> None:
        """Record that the scheme completed a full pass at this epoch."""
        self._scheme_pass_epoch = self.order_epoch

    # ------------------------------------------------- checkpoint/restore

    def export_state(self) -> dict:
        """JSON-ready snapshot of all cost-relevant engine state.

        Captures the canonical state only — per-color counters,
        deadlines, eligibility, wrap history, pending queues, the cache
        pool (occupant *and* physical color per slot), and the
        accumulated :class:`CostBreakdown`.  Derived bookkeeping (the
        eligible ordering, order/cache epochs, probe state) is
        recomputed by :meth:`import_state`: it only accelerates the
        sparse core and never changes costs, so leaving it out keeps
        the snapshot minimal and the restore trivially consistent.

        Scheme state is *not* included — schemes serialize themselves
        through :meth:`ReconfigurationScheme.state_dict`; the streaming
        checkpoint layer persists both side by side.
        """
        colors = {}
        for color, st in self.states.items():
            colors[str(color)] = {
                "cnt": st.cnt,
                "dd": st.dd,
                "eligible": st.eligible,
                "last_wrap": st.last_wrap,
                "prev_wrap": st.prev_wrap,
                "last_timestamp": st.last_timestamp,
                # Color and delay bound are implied by the key; pending
                # jobs serialize as (arrival, jid) pairs.
                "pending": [[job.arrival, job.jid] for job in st.pending],
            }
        return {
            "colors": colors,
            "cache": self.cache.state_dict(),
            "cost": self.cost.to_dict(),
        }

    def import_state(self, state: dict) -> None:
        """Load an :meth:`export_state` snapshot into a fresh engine.

        Must be called before :meth:`run`.  The snapshot's color set
        must match the instance spec; the cost model must match the
        instance's.  After the load, a run over ``[start_round,
        horizon)`` continues the checkpointed run exactly: the restored
        state plus global round indexing make every phase decision
        identical to the uninterrupted engine's.
        """
        if self._ran:
            raise RuntimeError("cannot import state into an engine that ran")
        colors = state["colors"]
        if set(colors) != {str(c) for c in self.states}:
            raise ValueError(
                "checkpoint colors do not match the instance spec"
            )
        for color, st in self.states.items():
            data = colors[str(color)]
            st.cnt = data["cnt"]
            st.dd = data["dd"]
            st.eligible = data["eligible"]
            st.last_wrap = data["last_wrap"]
            st.prev_wrap = data["prev_wrap"]
            st.last_timestamp = data["last_timestamp"]
            st.pending = deque(
                Job(arrival, color, st.delay_bound, jid)
                for arrival, jid in data["pending"]
            )
        self.cache.load_state(state["cache"])
        cost = CostBreakdown.from_dict(state["cost"])
        if cost.model != self.instance.cost_model:
            raise ValueError(
                "checkpoint cost model does not match the instance"
            )
        self.cost = cost
        # Rebuild the derived sparse-core bookkeeping from the canonical
        # state; caches and probe state start cold (cost-neutral).
        self._total_pending = sum(
            len(st.pending) for st in self.states.values()
        )
        self._eligible_sorted = sorted(
            c for c, st in self.states.items() if st.eligible
        )
        self._num_eligible_uncached = sum(
            1 for c in self._eligible_sorted if c not in self.cache
        )
        self._rank_cache = None
        self._lru_cache = None
        self._probe_state = None
        self._scheme_pass_epoch = None
        self._state_imported = True

    def _eligible_add(self, color: int) -> None:
        insort(self._eligible_sorted, color)
        if color not in self.cache:
            self._num_eligible_uncached += 1

    def _eligible_remove(self, color: int) -> None:
        # Only ever called from the drop phase, where the color is
        # uncached by definition (cached colors keep their eligibility).
        self._eligible_sorted.remove(color)
        self._num_eligible_uncached -= 1

    # ------------------------------------------------- scheme-facing helpers

    def state(self, color: int) -> ColorState:
        return self.states[color]

    def eligible_colors(self) -> list[int]:
        """Eligible colors in the consistent (ascending color) order."""
        if self.sparse:
            return list(self._eligible_sorted)
        return [c for c in sorted(self.states) if self.states[c].eligible]

    def timestamp(self, color: int) -> int:
        """ΔLRU timestamp of ``color`` as of the current round."""
        return self.states[color].timestamp(self.round_index)

    def rank_eligible(self, colors: Sequence[int] | None = None) -> list[int]:
        """EDF ranking (Section 3.1.2 / 3.3), best rank first.

        Nonidle colors come first; then ascending deadline, breaking ties
        by increasing delay bound, then the consistent order of colors.
        Calls over the full eligible pool are cached between the events
        that can reorder them (phase boundaries, idle flips).
        """
        if colors is None and self.sparse:
            if self._rank_cache is None:
                if self.obs is not None:
                    self.obs._order_misses += 1
                self._rank_cache = sorted(
                    self._eligible_sorted, key=self._rank_key
                )
            elif self.obs is not None:
                self.obs._order_hits += 1
            return list(self._rank_cache)
        pool = self.eligible_colors() if colors is None else list(colors)
        return sorted(pool, key=self._rank_key)

    def _rank_key(self, color: int):
        st = self.states[color]
        return (st.idle, st.dd, st.delay_bound, color)

    def lru_order(self, colors: Sequence[int] | None = None) -> list[int]:
        """Eligible colors by timestamp recency (most recent first).

        Ties broken by the consistent order of colors for determinism.
        Full-pool calls are cached between phase boundaries (timestamps
        only move at delay-bound multiples).
        """
        if colors is None and self.sparse:
            if self._lru_cache is None:
                if self.obs is not None:
                    self.obs._order_misses += 1
                now = self.round_index
                self._lru_cache = sorted(
                    self._eligible_sorted,
                    key=lambda c: (-self.states[c].timestamp(now), c),
                )
            elif self.obs is not None:
                self.obs._order_hits += 1
            return list(self._lru_cache)
        pool = self.eligible_colors() if colors is None else list(colors)
        now = self.round_index
        return sorted(pool, key=lambda c: (-self.states[c].timestamp(now), c))

    def cache_insert(self, color: int, *, section: str = "main") -> None:
        """Bring ``color`` into the cache, recording costs and events."""
        slot, reconfigured, old_physical = self.cache.insert(color)
        self._cache_epoch += 1
        if self._reconfig_observer is not None and reconfigured:
            self._reconfig_observer(color, reconfigured)
        st = self.states.get(color)
        if st is not None and st.eligible:
            self._num_eligible_uncached -= 1
        tracer = self.tracer
        if tracer is not None:
            if reconfigured:
                tracer.event(
                    "reconfig",
                    self.round_index,
                    color=color,
                    resources=len(reconfigured),
                    mini=self.mini_round,
                )
            tracer.event(
                "cache_in",
                self.round_index,
                color=color,
                section=section,
                mini=self.mini_round,
            )
        if self.obs is not None and reconfigured:
            self.obs.record_reconfig(self.round_index, len(reconfigured))
        if self.trace is None:
            self.cost.record_reconfig(color, len(reconfigured))
            return
        for resource in reconfigured:
            self.schedule.add_reconfiguration(
                Reconfiguration(self.round_index, self.mini_round, resource, color)
            )
            self.trace.append(
                ReconfigEvent(
                    self.round_index, self.mini_round, resource, old_physical, color
                )
            )
            self.cost.record_reconfig(color)
        self.trace.append(
            CacheInEvent(self.round_index, self.mini_round, color, section)
        )

    def cache_evict(self, color: int) -> None:
        """Drop ``color`` from the cache (free of charge; slots persist)."""
        self.cache.evict(color)
        self._cache_epoch += 1
        st = self.states.get(color)
        if st is not None and st.eligible:
            self._num_eligible_uncached += 1
        if self.trace is not None:
            self.trace.append(CacheOutEvent(self.round_index, self.mini_round, color))
        if self.tracer is not None:
            self.tracer.event(
                "cache_out", self.round_index, color=color, mini=self.mini_round
            )


#: Engine backends accepted by :func:`simulate`'s ``engine`` selector.
ENGINE_NAMES = ("sparse", "dense", "vectorized")


def simulate(
    instance: Instance,
    scheme: ReconfigurationScheme,
    num_resources: int,
    *,
    copies: int = 2,
    speed: int = 1,
    collect_metrics: bool = False,
    record: str = "full",
    sparse: bool = True,
    engine: str | None = None,
    tracer=None,
    registry=None,
    profiler=None,
    reconfig_observer=None,
) -> RunResult:
    """Build an engine, run it, and return the result.

    ``engine`` selects the backend by name (``"sparse"``, ``"dense"``,
    or ``"vectorized"``) and takes precedence over the legacy ``sparse``
    flag; ``"vectorized"`` requires the optional numpy extra
    (``repro[vec]``) and raises a clear error without it.
    """
    kwargs = dict(
        copies=copies,
        speed=speed,
        collect_metrics=collect_metrics,
        record=record,
        tracer=tracer,
        registry=registry,
        profiler=profiler,
        reconfig_observer=reconfig_observer,
    )
    if engine is not None and engine not in ENGINE_NAMES:
        raise ValueError(
            f"unknown engine {engine!r}; expected one of {ENGINE_NAMES}"
        )
    if engine == "vectorized":
        from repro.simulation.vectorized import VectorizedEngine

        return VectorizedEngine(instance, scheme, num_resources, **kwargs).run()
    if engine is not None:
        sparse = engine == "sparse"
    return BatchedEngine(
        instance, scheme, num_resources, sparse=sparse, **kwargs
    ).run()
