"""The batched four-phase engine (Section 3.1 common protocol).

The three online algorithms of Section 3.1 "only differ in the way the
resources are reconfigured"; everything else — dropping at deadlines,
counter updates, wrapping events, eligibility transitions, replicated
execution — is the engine's job.  A
:class:`ReconfigurationScheme` receives the engine in the reconfiguration
phase of each (mini-)round and mutates the cache through
:meth:`BatchedEngine.cache_insert` / :meth:`BatchedEngine.cache_evict`,
which keep the schedule, cost breakdown, and trace consistent.

Double-speed algorithms (Section 3.3) repeat the reconfiguration and
execution phases twice per round; pass ``speed=2``.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Sequence

from repro.core.cost import CostBreakdown
from repro.core.events import (
    ArrivalEvent,
    CacheInEvent,
    CacheOutEvent,
    DropEvent,
    EligibleEvent,
    ExecuteEvent,
    IneligibleEvent,
    ReconfigEvent,
    TimestampEvent,
    Trace,
    WrapEvent,
)
from repro.core.instance import Instance
from repro.core.schedule import Execution, Reconfiguration, Schedule
from repro.core.validation import ValidationReport, verify_schedule
from repro.simulation.metrics import MetricsCollector
from repro.simulation.resources import CachePool
from repro.simulation.state import ColorState


class ReconfigurationScheme(ABC):
    """Strategy invoked in the reconfiguration phase of every mini-round."""

    #: Human-readable algorithm name used in reports.
    name: str = "abstract"

    def setup(self, engine: "BatchedEngine") -> None:
        """Hook called once before round 0 (default: no-op)."""

    @abstractmethod
    def reconfigure(self, engine: "BatchedEngine") -> None:
        """Mutate ``engine``'s cache for the current mini-round."""


@dataclass
class RunResult:
    """Everything produced by one engine run."""

    instance: Instance
    algorithm: str
    num_resources: int
    speed: int
    schedule: Schedule
    cost: CostBreakdown
    trace: Trace
    metrics: MetricsCollector | None = None

    @property
    def total_cost(self) -> int:
        return self.cost.total

    def verify(self, *, strict: bool = False) -> ValidationReport:
        """Re-check the emitted schedule against the instance."""
        return verify_schedule(self.instance, self.schedule, strict=strict)


class BatchedEngine:
    """Drives a reconfiguration scheme over a batched instance.

    Parameters
    ----------
    instance:
        Must be declared ``BATCHED`` or ``RATE_LIMITED``.
    scheme:
        The reconfiguration strategy (ΔLRU, EDF, ΔLRU-EDF, Seq-EDF, ...).
    num_resources:
        ``n``; must be divisible by ``copies``.
    copies:
        Replication factor: each cached color occupies this many physical
        resources (2 for the Section 3.1 algorithms, 1 for Seq-EDF).
    speed:
        1 for uni-speed, 2 for double-speed (Section 3.3).
    """

    def __init__(
        self,
        instance: Instance,
        scheme: ReconfigurationScheme,
        num_resources: int,
        *,
        copies: int = 2,
        speed: int = 1,
        collect_metrics: bool = False,
    ) -> None:
        if not instance.spec.batch_mode.is_batched:
            raise ValueError(
                "BatchedEngine requires a batched instance; wrap general "
                "instances with the VarBatch reduction first"
            )
        if num_resources <= 0 or num_resources % copies != 0:
            raise ValueError(
                f"num_resources ({num_resources}) must be a positive "
                f"multiple of copies ({copies})"
            )
        if speed not in (1, 2):
            raise ValueError("speed must be 1 (uni) or 2 (double)")
        self.instance = instance
        self.scheme = scheme
        self.num_resources = num_resources
        self.copies = copies
        self.speed = speed
        self.delta = instance.reconfig_cost

        self.cache = CachePool(num_resources // copies, copies)
        self.states: dict[int, ColorState] = {
            color: ColorState(color, bound)
            for color, bound in instance.spec.delay_bounds.items()
        }
        self.schedule = Schedule(num_resources, speed=speed)
        self.cost = CostBreakdown(instance.cost_model)
        self.trace = Trace()
        self.metrics = (
            MetricsCollector(instance.horizon) if collect_metrics else None
        )
        self.round_index = 0
        self.mini_round = 0
        self._ran = False

    # ------------------------------------------------------------------ run

    def run(self) -> RunResult:
        """Simulate all rounds and return the result bundle."""
        if self._ran:
            raise RuntimeError("engine instances are single-use; build a new one")
        self._ran = True
        self.scheme.setup(self)
        for k in range(self.instance.horizon):
            self.round_index = k
            self._drop_phase(k)
            self._arrival_phase(k)
            for mini in range(self.speed):
                self.mini_round = mini
                self.scheme.reconfigure(self)
                self._execution_phase(k, mini)
            if self.metrics is not None:
                self.metrics.end_round(k, self)
        return RunResult(
            instance=self.instance,
            algorithm=self.scheme.name,
            num_resources=self.num_resources,
            speed=self.speed,
            schedule=self.schedule,
            cost=self.cost,
            trace=self.trace,
            metrics=self.metrics,
        )

    # --------------------------------------------------------------- phases

    def _drop_phase(self, k: int) -> None:
        for color, st in self.states.items():
            if k == 0 or k % st.delay_bound != 0:
                # Round 0 is a multiple of every bound but nothing can be
                # pending yet and eligibility is vacuously false.
                continue
            dropped = st.clear_pending()
            if dropped:
                self.trace.append(
                    DropEvent(k, color, len(dropped), eligible=st.eligible)
                )
                self.cost.record_drop(color, len(dropped), eligible=st.eligible)
            if st.eligible and color not in self.cache:
                st.eligible = False
                st.cnt = 0
                self.trace.append(IneligibleEvent(k, color))

    def _arrival_phase(self, k: int) -> None:
        arrivals: dict[int, list] = {}
        for job in self.instance.sequence.arrivals(k):
            arrivals.setdefault(job.color, []).append(job)
        for color, st in self.states.items():
            if k % st.delay_bound != 0:
                continue
            batch = arrivals.get(color, [])
            st.dd = k + st.delay_bound
            st.cnt += len(batch)
            if batch:
                self.trace.append(ArrivalEvent(k, color, len(batch)))
            if st.cnt >= self.delta:
                st.cnt %= self.delta
                st.record_wrap(k)
                self.trace.append(WrapEvent(k, color))
                if not st.eligible:
                    st.eligible = True
                    self.trace.append(EligibleEvent(k, color))
            st.pending.extend(batch)
            ts = st.timestamp(k)
            if ts != st.last_timestamp:
                st.last_timestamp = ts
                self.trace.append(TimestampEvent(k, color, ts))

    def _execution_phase(self, k: int, mini: int) -> None:
        for slot in self.cache.occupied_slots():
            st = self.states[slot.occupant]
            for resource, job in zip(slot.resources(), st.take_pending(self.copies)):
                self.schedule.add_execution(
                    Execution(k, mini, resource, job.jid, job.color)
                )
                self.trace.append(ExecuteEvent(k, mini, resource, job.color, job.jid))
                self.cost.record_execution(job.color)

    # ------------------------------------------------- scheme-facing helpers

    def state(self, color: int) -> ColorState:
        return self.states[color]

    def eligible_colors(self) -> list[int]:
        """Eligible colors in the consistent (ascending color) order."""
        return [c for c in sorted(self.states) if self.states[c].eligible]

    def timestamp(self, color: int) -> int:
        """ΔLRU timestamp of ``color`` as of the current round."""
        return self.states[color].timestamp(self.round_index)

    def rank_eligible(self, colors: Sequence[int] | None = None) -> list[int]:
        """EDF ranking (Section 3.1.2 / 3.3), best rank first.

        Nonidle colors come first; then ascending deadline, breaking ties
        by increasing delay bound, then the consistent order of colors.
        """
        pool = self.eligible_colors() if colors is None else list(colors)
        return sorted(
            pool,
            key=lambda c: (
                self.states[c].idle,
                self.states[c].dd,
                self.states[c].delay_bound,
                c,
            ),
        )

    def lru_order(self, colors: Sequence[int] | None = None) -> list[int]:
        """Eligible colors by timestamp recency (most recent first).

        Ties broken by the consistent order of colors for determinism.
        """
        pool = self.eligible_colors() if colors is None else list(colors)
        now = self.round_index
        return sorted(pool, key=lambda c: (-self.states[c].timestamp(now), c))

    def cache_insert(self, color: int, *, section: str = "main") -> None:
        """Bring ``color`` into the cache, recording costs and events."""
        slot, reconfigured, old_physical = self.cache.insert(color)
        for resource in reconfigured:
            self.schedule.add_reconfiguration(
                Reconfiguration(self.round_index, self.mini_round, resource, color)
            )
            self.trace.append(
                ReconfigEvent(
                    self.round_index, self.mini_round, resource, old_physical, color
                )
            )
            self.cost.record_reconfig(color)
        self.trace.append(
            CacheInEvent(self.round_index, self.mini_round, color, section)
        )

    def cache_evict(self, color: int) -> None:
        """Drop ``color`` from the cache (free of charge; slots persist)."""
        self.cache.evict(color)
        self.trace.append(CacheOutEvent(self.round_index, self.mini_round, color))


def simulate(
    instance: Instance,
    scheme: ReconfigurationScheme,
    num_resources: int,
    *,
    copies: int = 2,
    speed: int = 1,
    collect_metrics: bool = False,
) -> RunResult:
    """Build a :class:`BatchedEngine`, run it, and return the result."""
    return BatchedEngine(
        instance,
        scheme,
        num_resources,
        copies=copies,
        speed=speed,
        collect_metrics=collect_metrics,
    ).run()
