"""The batched four-phase engine (Section 3.1 common protocol).

The three online algorithms of Section 3.1 "only differ in the way the
resources are reconfigured"; everything else — dropping at deadlines,
counter updates, wrapping events, eligibility transitions, replicated
execution — is the engine's job.  A
:class:`ReconfigurationScheme` receives the engine in the reconfiguration
phase of each (mini-)round and mutates the cache through
:meth:`BatchedEngine.cache_insert` / :meth:`BatchedEngine.cache_evict`,
which keep the schedule, cost breakdown, and trace consistent.

Double-speed algorithms (Section 3.3) repeat the reconfiguration and
execution phases twice per round; pass ``speed=2``.

Record modes (the engine fast path)
-----------------------------------
``record="full"`` (default) emits the explicit :class:`Schedule` and
:class:`Trace` the verifier and proof auditors consume.  ``record="costs"``
skips both — no per-job ``Execution``/event objects, no trace appends —
and produces only the :class:`CostBreakdown` plus optional metrics.  The
scheme-visible state (counters, deadlines, eligibility, pending queues,
wrapping history) is maintained identically in both modes, so costs agree
exactly; sweeps, adversary searches, and sensitivity grids that only read
costs run several times faster in ``"costs"`` mode.
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Sequence

from repro.core.cost import CostBreakdown
from repro.core.events import (
    ArrivalEvent,
    CacheInEvent,
    CacheOutEvent,
    DropEvent,
    EligibleEvent,
    ExecuteEvent,
    IneligibleEvent,
    ReconfigEvent,
    TimestampEvent,
    Trace,
    WrapEvent,
)
from repro.core.instance import Instance
from repro.core.schedule import Execution, Reconfiguration, Schedule
from repro.core.validation import ValidationReport, verify_schedule
from repro.simulation.metrics import MetricsCollector
from repro.simulation.resources import CachePool
from repro.simulation.state import ColorState


class ReconfigurationScheme(ABC):
    """Strategy invoked in the reconfiguration phase of every mini-round."""

    #: Human-readable algorithm name used in reports.
    name: str = "abstract"

    def setup(self, engine: "BatchedEngine") -> None:
        """Hook called once before round 0 (default: no-op)."""

    @abstractmethod
    def reconfigure(self, engine: "BatchedEngine") -> None:
        """Mutate ``engine``'s cache for the current mini-round."""


@dataclass
class RunResult:
    """Everything produced by one engine run.

    ``schedule`` and ``trace`` are ``None`` for ``record="costs"`` runs —
    the fast path never builds them.  ``wall_seconds`` is the wall-clock
    time of the round loop (instance construction excluded).
    """

    instance: Instance
    algorithm: str
    num_resources: int
    speed: int
    schedule: Schedule | None
    cost: CostBreakdown
    trace: Trace | None
    metrics: MetricsCollector | None = None
    record: str = "full"
    wall_seconds: float = 0.0

    @property
    def total_cost(self) -> int:
        return self.cost.total

    @property
    def rounds_per_second(self) -> float:
        """Simulated rounds per wall-clock second (0 when untimed)."""
        if self.wall_seconds <= 0:
            return 0.0
        return self.instance.horizon / self.wall_seconds

    def verify(self, *, strict: bool = False) -> ValidationReport:
        """Re-check the emitted schedule against the instance."""
        if self.schedule is None:
            raise RuntimeError(
                "this run used record='costs' and has no schedule to "
                "verify; rerun with record='full'"
            )
        return verify_schedule(self.instance, self.schedule, strict=strict)


class BatchedEngine:
    """Drives a reconfiguration scheme over a batched instance.

    Parameters
    ----------
    instance:
        Must be declared ``BATCHED`` or ``RATE_LIMITED``.
    scheme:
        The reconfiguration strategy (ΔLRU, EDF, ΔLRU-EDF, Seq-EDF, ...).
    num_resources:
        ``n``; must be divisible by ``copies``.
    copies:
        Replication factor: each cached color occupies this many physical
        resources (2 for the Section 3.1 algorithms, 1 for Seq-EDF).
    speed:
        1 for uni-speed, 2 for double-speed (Section 3.3).
    record:
        ``"full"`` emits the schedule and trace; ``"costs"`` skips both
        (fast path) and only maintains the cost breakdown.
    """

    def __init__(
        self,
        instance: Instance,
        scheme: ReconfigurationScheme,
        num_resources: int,
        *,
        copies: int = 2,
        speed: int = 1,
        collect_metrics: bool = False,
        record: str = "full",
    ) -> None:
        if not instance.spec.batch_mode.is_batched:
            raise ValueError(
                "BatchedEngine requires a batched instance; wrap general "
                "instances with the VarBatch reduction first"
            )
        if num_resources <= 0 or num_resources % copies != 0:
            raise ValueError(
                f"num_resources ({num_resources}) must be a positive "
                f"multiple of copies ({copies})"
            )
        if speed not in (1, 2):
            raise ValueError("speed must be 1 (uni) or 2 (double)")
        if record not in ("full", "costs"):
            raise ValueError("record must be 'full' or 'costs'")
        self.instance = instance
        self.scheme = scheme
        self.num_resources = num_resources
        self.copies = copies
        self.speed = speed
        self.record = record
        self.delta = instance.reconfig_cost

        self.cache = CachePool(num_resources // copies, copies)
        self.states: dict[int, ColorState] = {
            color: ColorState(color, bound)
            for color, bound in instance.spec.delay_bounds.items()
        }
        full = record == "full"
        self.schedule: Schedule | None = (
            Schedule(num_resources, speed=speed) if full else None
        )
        self.cost = CostBreakdown(instance.cost_model)
        self.trace: Trace | None = Trace() if full else None
        self.metrics = (
            MetricsCollector(instance.horizon) if collect_metrics else None
        )
        self.round_index = 0
        self.mini_round = 0
        self._ran = False

    # ------------------------------------------------------------------ run

    def run(self) -> RunResult:
        """Simulate all rounds and return the result bundle."""
        if self._ran:
            raise RuntimeError("engine instances are single-use; build a new one")
        self._ran = True
        self.scheme.setup(self)
        start = time.perf_counter()
        for k in range(self.instance.horizon):
            self.round_index = k
            self._drop_phase(k)
            self._arrival_phase(k)
            for mini in range(self.speed):
                self.mini_round = mini
                self.scheme.reconfigure(self)
                self._execution_phase(k, mini)
            if self.metrics is not None:
                self.metrics.end_round(k, self)
        elapsed = time.perf_counter() - start
        if self.metrics is not None:
            self.metrics.record_wall_clock(elapsed, self.instance.horizon)
        return RunResult(
            instance=self.instance,
            algorithm=self.scheme.name,
            num_resources=self.num_resources,
            speed=self.speed,
            schedule=self.schedule,
            cost=self.cost,
            trace=self.trace,
            metrics=self.metrics,
            record=self.record,
            wall_seconds=elapsed,
        )

    # --------------------------------------------------------------- phases

    def _drop_phase(self, k: int) -> None:
        trace = self.trace
        for color, st in self.states.items():
            if k == 0 or k % st.delay_bound != 0:
                # Round 0 is a multiple of every bound but nothing can be
                # pending yet and eligibility is vacuously false.
                continue
            dropped = len(st.pending)
            if dropped:
                st.pending.clear()
                if trace is not None:
                    trace.append(DropEvent(k, color, dropped, eligible=st.eligible))
                self.cost.record_drop(color, dropped, eligible=st.eligible)
            if st.eligible and color not in self.cache:
                st.eligible = False
                st.cnt = 0
                if trace is not None:
                    trace.append(IneligibleEvent(k, color))

    def _arrival_phase(self, k: int) -> None:
        trace = self.trace
        arrivals: dict[int, list] = {}
        for job in self.instance.sequence.arrivals(k):
            arrivals.setdefault(job.color, []).append(job)
        for color, st in self.states.items():
            if k % st.delay_bound != 0:
                continue
            batch = arrivals.get(color, [])
            st.dd = k + st.delay_bound
            st.cnt += len(batch)
            if batch and trace is not None:
                trace.append(ArrivalEvent(k, color, len(batch)))
            if st.cnt >= self.delta:
                # One batch can advance the counter past several multiples
                # of Δ (a rate-limited batch of size D_ℓ ≥ 2Δ already
                # does); each crossed multiple is its own wrapping event —
                # the credit auditors count wraps, not arrival rounds.
                wraps, st.cnt = divmod(st.cnt, self.delta)
                st.record_wrap(k)
                if trace is not None:
                    for _ in range(wraps):
                        trace.append(WrapEvent(k, color))
                if not st.eligible:
                    st.eligible = True
                    if trace is not None:
                        trace.append(EligibleEvent(k, color))
            st.pending.extend(batch)
            if trace is not None:
                ts = st.timestamp(k)
                if ts != st.last_timestamp:
                    st.last_timestamp = ts
                    trace.append(TimestampEvent(k, color, ts))

    def _execution_phase(self, k: int, mini: int) -> None:
        schedule, trace = self.schedule, self.trace
        if schedule is None:
            # Fast path: within a batched color every pending job is
            # interchangeable for cost purposes, so count executions in
            # bulk instead of materializing Execution/event objects.
            for slot in self.cache.occupied_slots():
                st = self.states[slot.occupant]
                taken = min(self.copies, len(st.pending))
                if taken:
                    for _ in range(taken):
                        st.pending.popleft()
                    self.cost.record_execution(slot.occupant, taken)
            return
        for slot in self.cache.occupied_slots():
            st = self.states[slot.occupant]
            for resource, job in zip(slot.resources(), st.take_pending(self.copies)):
                schedule.add_execution(
                    Execution(k, mini, resource, job.jid, job.color)
                )
                trace.append(ExecuteEvent(k, mini, resource, job.color, job.jid))
                self.cost.record_execution(job.color)

    # ------------------------------------------------- scheme-facing helpers

    def state(self, color: int) -> ColorState:
        return self.states[color]

    def eligible_colors(self) -> list[int]:
        """Eligible colors in the consistent (ascending color) order."""
        return [c for c in sorted(self.states) if self.states[c].eligible]

    def timestamp(self, color: int) -> int:
        """ΔLRU timestamp of ``color`` as of the current round."""
        return self.states[color].timestamp(self.round_index)

    def rank_eligible(self, colors: Sequence[int] | None = None) -> list[int]:
        """EDF ranking (Section 3.1.2 / 3.3), best rank first.

        Nonidle colors come first; then ascending deadline, breaking ties
        by increasing delay bound, then the consistent order of colors.
        """
        pool = self.eligible_colors() if colors is None else list(colors)
        return sorted(
            pool,
            key=lambda c: (
                self.states[c].idle,
                self.states[c].dd,
                self.states[c].delay_bound,
                c,
            ),
        )

    def lru_order(self, colors: Sequence[int] | None = None) -> list[int]:
        """Eligible colors by timestamp recency (most recent first).

        Ties broken by the consistent order of colors for determinism.
        """
        pool = self.eligible_colors() if colors is None else list(colors)
        now = self.round_index
        return sorted(pool, key=lambda c: (-self.states[c].timestamp(now), c))

    def cache_insert(self, color: int, *, section: str = "main") -> None:
        """Bring ``color`` into the cache, recording costs and events."""
        slot, reconfigured, old_physical = self.cache.insert(color)
        if self.trace is None:
            self.cost.record_reconfig(color, len(reconfigured))
            return
        for resource in reconfigured:
            self.schedule.add_reconfiguration(
                Reconfiguration(self.round_index, self.mini_round, resource, color)
            )
            self.trace.append(
                ReconfigEvent(
                    self.round_index, self.mini_round, resource, old_physical, color
                )
            )
            self.cost.record_reconfig(color)
        self.trace.append(
            CacheInEvent(self.round_index, self.mini_round, color, section)
        )

    def cache_evict(self, color: int) -> None:
        """Drop ``color`` from the cache (free of charge; slots persist)."""
        self.cache.evict(color)
        if self.trace is not None:
            self.trace.append(CacheOutEvent(self.round_index, self.mini_round, color))


def simulate(
    instance: Instance,
    scheme: ReconfigurationScheme,
    num_resources: int,
    *,
    copies: int = 2,
    speed: int = 1,
    collect_metrics: bool = False,
    record: str = "full",
) -> RunResult:
    """Build a :class:`BatchedEngine`, run it, and return the result."""
    return BatchedEngine(
        instance,
        scheme,
        num_resources,
        copies=copies,
        speed=speed,
        collect_metrics=collect_metrics,
        record=record,
    ).run()
