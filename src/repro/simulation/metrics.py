"""Per-round metrics collection.

Collectors preallocate numpy arrays over the horizon (no per-round Python
object churn) and compute derived series — utilization, cumulative cost,
occupancy — as vectorized operations, per the HPC guide idioms.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

try:
    import numpy as np
except ImportError:  # pragma: no cover - exercised in no-numpy installs
    # Metrics collection preallocates numpy arrays; the engines
    # themselves never touch numpy, so the module must import without
    # it (collect_metrics=True then raises below).
    np = None

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.simulation.engine import BatchedEngine


@dataclass(frozen=True)
class RoundMetrics:
    """Immutable snapshot of the per-round series after a run."""

    executions: np.ndarray
    drops: np.ndarray
    reconfigs: np.ndarray
    occupancy: np.ndarray
    pending: np.ndarray

    @property
    def horizon(self) -> int:
        return int(self.executions.shape[0])

    def utilization(self, num_resources: int, speed: int = 1) -> np.ndarray:
        """Fraction of execution slots used each round."""
        capacity = float(num_resources * speed)
        return self.executions / capacity

    def cumulative_cost(self, reconfig_cost: int, drop_cost: int = 1) -> np.ndarray:
        """Running total cost after each round."""
        per_round = self.reconfigs * reconfig_cost + self.drops * drop_cost
        return np.cumsum(per_round)


class MetricsCollector:
    """Accumulates per-round counters during an engine run.

    Besides the per-round series, the collector carries the run's perf
    telemetry: the engines report the round loop's wall-clock time via
    :meth:`record_wall_clock`, exposed as :attr:`wall_seconds` and
    :attr:`rounds_per_second` so throughput trajectories (EXP-S,
    ``BENCH_engine.json``) read it from one place.
    """

    def __init__(self, horizon: int) -> None:
        if np is None:
            raise RuntimeError(
                "per-round metrics collection requires numpy; install it "
                "with `pip install repro[vec]` or run with "
                "collect_metrics=False"
            )
        if horizon <= 0:
            raise ValueError("horizon must be positive")
        self.horizon = horizon
        self._executions = np.zeros(horizon, dtype=np.int64)
        self._drops = np.zeros(horizon, dtype=np.int64)
        self._reconfigs = np.zeros(horizon, dtype=np.int64)
        self._occupancy = np.zeros(horizon, dtype=np.int64)
        self._pending = np.zeros(horizon, dtype=np.int64)
        self._prev_exec = 0
        self._prev_drops = 0
        self._prev_reconfigs = 0
        self.wall_seconds: float | None = None
        self._timed_rounds = 0

    def record_wall_clock(self, seconds: float, rounds: int) -> None:
        """Record the wall-clock duration of ``rounds`` simulated rounds."""
        if seconds < 0:
            raise ValueError("wall-clock seconds must be nonnegative")
        self.wall_seconds = seconds
        self._timed_rounds = rounds

    @property
    def rounds_per_second(self) -> float:
        """Simulated-round throughput (0 until a run has been timed)."""
        if not self.wall_seconds or self._timed_rounds <= 0:
            return 0.0
        return self._timed_rounds / self.wall_seconds

    def end_round(self, k: int, engine: "BatchedEngine") -> None:
        """Record deltas for round ``k`` from the engine's accumulators."""
        cost = engine.cost
        self._executions[k] = cost.executions - self._prev_exec
        self._drops[k] = cost.num_drops - self._prev_drops
        self._reconfigs[k] = cost.num_reconfigs - self._prev_reconfigs
        self._prev_exec = cost.executions
        self._prev_drops = cost.num_drops
        self._prev_reconfigs = cost.num_reconfigs
        self._occupancy[k] = engine.cache.occupancy()
        self._pending[k] = sum(
            len(st.pending) for st in engine.states.values()
        )

    def snapshot(self) -> RoundMetrics:
        """Freeze the collected series."""
        return RoundMetrics(
            executions=self._executions.copy(),
            drops=self._drops.copy(),
            reconfigs=self._reconfigs.copy(),
            occupancy=self._occupancy.copy(),
            pending=self._pending.copy(),
        )
